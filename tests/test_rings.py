"""Tests and property-based checks for the (semi)ring toolbox."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rings import (
    CountingSemiring,
    CovariancePayload,
    CovarianceRing,
    GroupByRing,
    IntegerRing,
    MaxPlusSemiring,
    ProductRing,
    RealRing,
    RelationalSemiring,
    check_ring_axioms,
    check_semiring_axioms,
)

small_ints = st.integers(min_value=-20, max_value=20)
small_floats = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)


# -- numeric rings -------------------------------------------------------------------------------


@given(st.lists(small_ints, min_size=3, max_size=3))
def test_integer_ring_axioms(elements):
    assert check_ring_axioms(IntegerRing(), elements) == []


@given(st.lists(st.integers(min_value=0, max_value=20), min_size=3, max_size=3))
def test_counting_semiring_axioms(elements):
    assert check_semiring_axioms(CountingSemiring(), elements) == []


@given(st.lists(small_floats, min_size=3, max_size=3))
def test_max_plus_semiring_axioms(elements):
    assert check_semiring_axioms(MaxPlusSemiring(), elements) == []


def test_real_ring_subtract_and_scale():
    ring = RealRing()
    assert ring.subtract(5.0, 3.0) == 2.0
    assert ring.scale(2.5, 3) == 7.5
    assert ring.scale(2.5, -2) == -5.0


def test_semiring_sum_and_product_helpers():
    ring = IntegerRing()
    assert ring.sum([1, 2, 3]) == 6
    assert ring.product([2, 3, 4]) == 24
    assert ring.sum([]) == 0
    assert ring.product([]) == 1


# -- covariance ring -------------------------------------------------------------------------------


def _payload_strategy(dimension=2):
    return st.builds(
        lambda count, sums, moments: CovariancePayload(
            float(count),
            np.array(sums, dtype=float),
            np.array(moments, dtype=float).reshape(dimension, dimension),
        ),
        small_ints,
        st.lists(small_floats, min_size=dimension, max_size=dimension),
        st.lists(small_floats, min_size=dimension * dimension, max_size=dimension * dimension),
    )


@settings(max_examples=25, deadline=None)
@given(st.lists(_payload_strategy(), min_size=3, max_size=3))
def test_covariance_ring_axioms(elements):
    ring = CovarianceRing(2)
    assert check_ring_axioms(ring, elements) == []


def test_covariance_ring_from_rows_matches_numpy():
    ring = CovarianceRing(3)
    rows = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [0.5, -1.0, 2.0]]
    payload = ring.from_rows(rows)
    matrix = np.array(rows)
    assert payload.count == 3
    assert np.allclose(payload.sums, matrix.sum(axis=0))
    assert np.allclose(payload.moments, matrix.T @ matrix)


def test_covariance_ring_lift_and_product_is_one_tuple():
    ring = CovarianceRing(2)
    combined = ring.multiply(ring.lift(0, 3.0), ring.lift(1, 4.0))
    assert combined.count == 1
    assert np.allclose(combined.sums, [3.0, 4.0])
    assert np.allclose(combined.moments, [[9.0, 12.0], [12.0, 16.0]])


def test_covariance_ring_lift_bounds():
    ring = CovarianceRing(2)
    with pytest.raises(IndexError):
        ring.lift(2, 1.0)
    with pytest.raises(ValueError):
        CovarianceRing(-1)
    with pytest.raises(ValueError):
        ring.from_rows([[1.0]])


# -- group-by ring -----------------------------------------------------------------------------------


def _grouped_strategy():
    key = st.sampled_from(["a", "b", "c"])
    value = st.sampled_from(["x", "y"])
    entry = st.tuples(key, value)
    return st.dictionaries(
        st.builds(lambda pair: frozenset({pair}), entry), small_floats, max_size=3
    )


@settings(max_examples=25, deadline=None)
@given(st.lists(_grouped_strategy(), min_size=3, max_size=3))
def test_groupby_ring_axioms(elements):
    ring = GroupByRing(RealRing())
    assert check_ring_axioms(ring, elements) == []


def test_groupby_ring_models_group_by_sum():
    ring = GroupByRing(RealRing())
    # Two tuples of group 'a' with values 2 and 3, one tuple of group 'b' with value 5.
    tuples = [
        ring.multiply(ring.lift_group("g", "a"), ring.lift_value(2.0)),
        ring.multiply(ring.lift_group("g", "a"), ring.lift_value(3.0)),
        ring.multiply(ring.lift_group("g", "b"), ring.lift_value(5.0)),
    ]
    total = ring.sum(tuples)
    assert total[frozenset({("g", "a")})] == 5.0
    assert total[frozenset({("g", "b")})] == 5.0


def test_groupby_ring_product_combines_disjoint_attributes():
    ring = GroupByRing(RealRing())
    left = ring.lift_group("g", "a")
    right = ring.lift_group("h", "x")
    product = ring.multiply(left, right)
    assert product == {frozenset({("g", "a"), ("h", "x")}): 1.0}


# -- relational semiring ------------------------------------------------------------------------------


def test_relational_semiring_zero_one_behaviour():
    semiring = RelationalSemiring()
    singleton = RelationalSemiring.singleton("a", 1)
    assert semiring.equal(semiring.add(semiring.zero(), singleton), singleton)
    assert semiring.equal(semiring.multiply(semiring.one(), singleton), singleton)
    assert len(semiring.multiply(semiring.zero(), singleton)) == 0


def test_relational_semiring_distributivity_example():
    semiring = RelationalSemiring()
    r1 = RelationalSemiring.singleton("a", 1)
    r2 = RelationalSemiring.singleton("a", 2)
    s = RelationalSemiring.singleton("b", 9)
    left = semiring.multiply(semiring.add(r1, r2), s)
    right = semiring.add(semiring.multiply(r1, s), semiring.multiply(r2, s))
    assert semiring.equal(left, right)
    assert len(left) == 2


# -- product ring --------------------------------------------------------------------------------------


@given(st.lists(st.tuples(small_ints, small_floats), min_size=3, max_size=3))
def test_product_ring_axioms(elements):
    ring = ProductRing([IntegerRing(), RealRing()])
    assert check_ring_axioms(ring, elements) == []


def test_product_ring_requires_factor_rings_for_negation():
    ring = ProductRing([CountingSemiring()])
    with pytest.raises(TypeError):
        ring.negate((1,))
    with pytest.raises(ValueError):
        ProductRing([])
