"""Subprocess driver for the fault matrix (see ``test_fault_matrix.py``).

Runs a durable :class:`~repro.serving.QueryServer` over a deterministic
cancel-heavy update stream with a kill fault installed at one labeled
trigger point; the parent test asserts the process died by SIGKILL and that
checkpoint + journal recovery lands bit-identically on a committed prefix
of the same stream.  The stream/database constants live here so the parent
and the child derive the *same* batches without any channel between them.
"""

import sys

from repro.datasets import retailer_database, retailer_query
from repro.durability import (
    DurabilityOptions,
    FaultPlan,
    FaultSpec,
    install_fault_plan,
)
from repro.ivm import FIVM
from repro.serving import QueryServer
from streams import random_update_stream

FEATURES = ["inventoryunits", "prize", "maxtemp"]
DB_KWARGS = dict(inventory_rows=80, stores=4, items=8, dates=6, seed=21)
STREAM_SEED = 97
STREAM_LENGTH = 1000
CANCEL_FRACTION = 0.35
BATCH = 50
CHECKPOINT_INTERVAL = 4


def build_database():
    return retailer_database(**DB_KWARGS)


def build_maintainer(database=None):
    if database is None:
        database = build_database()
    return FIVM(database, retailer_query(), FEATURES)


def batches(database):
    stream = random_update_stream(
        database,
        seed=STREAM_SEED,
        length=STREAM_LENGTH,
        cancel_fraction=CANCEL_FRACTION,
    )
    return [stream[start : start + BATCH] for start in range(0, len(stream), BATCH)]


def main() -> None:
    directory, sync, point, at_call = sys.argv[1:5]
    options = DurabilityOptions(
        directory, sync=sync, checkpoint_interval=CHECKPOINT_INTERVAL
    )
    database = build_database()
    install_fault_plan(
        FaultPlan([FaultSpec(point, at_call=int(at_call), action="kill")])
    )
    server = QueryServer(build_maintainer(database), durability=options, readers=1)
    for batch in batches(database):
        server.apply_batch(batch)
    # Only reached when the fault never fired — the parent treats that as a
    # miscalibrated at_call and fails loudly.
    print("COMPLETED", server.prefix, flush=True)
    server.close()


if __name__ == "__main__":
    main()
