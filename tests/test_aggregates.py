"""Tests for aggregate specifications, batch synthesis and the sigma matrix."""

import numpy as np
import pytest

from repro.aggregates import (
    Aggregate,
    AggregateBatch,
    Filter,
    FilterOp,
    InequalityCondition,
    batch_catalogue,
    covariance_batch,
    decision_tree_node_batch,
    kmeans_batch,
    mutual_information_batch,
)
from repro.aggregates.sparse_tensor import FeatureIndex, sigma_from_batch_results
from repro.engine import LMFAOEngine
from repro.ml.statistics import sigma_from_data_matrix


# -- specs ---------------------------------------------------------------------------------------


def test_filter_operators():
    assert Filter("x", FilterOp.GE, 3).test(3)
    assert not Filter("x", FilterOp.GT, 3).test(3)
    assert Filter("x", FilterOp.LT, 3).test(2)
    assert Filter("x", FilterOp.LE, 3).test(3)
    assert Filter("x", FilterOp.EQ, "a").test("a")
    assert Filter("x", FilterOp.NE, "a").test("b")
    assert Filter("x", FilterOp.IN, ("a", "b")).test("a")
    assert not Filter("x", FilterOp.IN, ("a", "b")).test("c")


def test_inequality_condition():
    condition = InequalityCondition.of({"x": 2.0, "y": -1.0}, 3.0)
    assert condition.test({"x": 3.0, "y": 1.0})       # 6 - 1 = 5 > 3
    assert not condition.test({"x": 1.0, "y": 0.0})   # 2 > 3 fails
    assert set(condition.attributes) == {"x", "y"}
    assert "2*x" in str(condition)
    non_strict = InequalityCondition.of({"x": 1.0}, 1.0, strict=False)
    assert non_strict.test({"x": 1.0})


def test_aggregate_constructors_and_accessors():
    count = Aggregate.count(group_by=["g"])
    assert count.degree == 0 and count.is_grouped
    sum_xy = Aggregate.sum_of(["x", "y"], filters=[Filter("z", FilterOp.GE, 1)])
    assert sum_xy.degree == 2
    assert set(sum_xy.attributes()) == {"x", "y", "z"}
    squares = Aggregate.sum_of(["x", "x"])
    assert squares.product_multiplicities() == {"x": 2}
    assert sum_xy.filters_on("z")[0].op is FilterOp.GE


def test_aggregate_to_sql_rendering():
    aggregate = Aggregate.sum_of(["x", "y"], group_by=["g"], filters=[Filter("z", FilterOp.GE, 1)])
    sql = aggregate.to_sql("Q")
    assert "SUM(x*y)" in sql
    assert "GROUP BY g" in sql
    assert "z >= 1" in sql
    assert "SUM(1)" in Aggregate.count().to_sql()


def test_batch_summary_and_accessors():
    batch = AggregateBatch("demo")
    batch.add(Aggregate.count())
    batch.add(Aggregate.sum_of(["x"], group_by=["g"]))
    assert len(batch) == 2
    assert batch.attributes() == ("x", "g")
    summary = batch.summary()
    assert summary["grouped"] == 1 and summary["scalar"] == 1


# -- batch synthesis (Figure 5 shapes) --------------------------------------------------------------


def test_covariance_batch_size_formula():
    continuous = ["a", "b", "c"]
    categorical = ["g", "h"]
    batch = covariance_batch(continuous, categorical)
    features = len(continuous) + len(categorical)
    expected = 1 + features + features * (features + 1) // 2
    assert len(batch) == expected


def test_covariance_batch_contains_expected_aggregate_kinds():
    batch = covariance_batch(["a", "b"], ["g"])
    names = {aggregate.name for aggregate in batch}
    assert "count" in names
    assert "sum:a*b" in names
    assert "sum:a@g" in names
    assert "count@g,g" in names or "count@g" in names


def test_decision_tree_node_batch_counts_and_filters():
    batch = decision_tree_node_batch(
        "y", ["a", "b"], ["g"],
        thresholds={"a": [1.0, 2.0], "b": [5.0]},
        categories={"g": ["u", "v"]},
    )
    # 3 node aggregates + 3 per condition: (2 + 1) thresholds + 2 categories = 5 conditions.
    assert len(batch) == 3 + 3 * 5
    filtered = [aggregate for aggregate in batch if aggregate.filters]
    assert len(filtered) == 15


def test_decision_tree_node_batch_grouped_fallback_without_categories():
    batch = decision_tree_node_batch("y", ["a"], ["g"], thresholds={"a": [1.0]})
    grouped = [aggregate for aggregate in batch if aggregate.group_by == ("g",)]
    assert len(grouped) == 3


def test_mutual_information_batch_size():
    batch = mutual_information_batch(["a", "b", "c"])
    # 1 count + 3 marginals + 3 pairs.
    assert len(batch) == 7


def test_kmeans_batch_size():
    batch = kmeans_batch(["a", "b"], ["g"])
    # 1 count + 2 per continuous + 1 per categorical.
    assert len(batch) == 1 + 4 + 1


def test_batch_catalogue_produces_all_four_workloads():
    catalogue = batch_catalogue("y", ["y", "a", "b"], ["g"])
    assert set(catalogue) == {"covariance", "decision_node", "mutual_information", "kmeans"}
    assert len(catalogue["decision_node"]) > len(catalogue["kmeans"])


# -- sigma matrix assembly ------------------------------------------------------------------------------


def test_feature_index_layout():
    index = FeatureIndex(["a", "b"], {"g": ["u", "v"]})
    assert index.size == 5
    assert index.intercept_position() == 0
    assert index.position("a") == 1
    assert index.position("g", "v") == 4
    assert index.positions_of_feature("g") == [3, 4]
    assert index.labels()[3] == "g=u"
    assert index.has("g", "u") and not index.has("g", "w")
    with pytest.raises(KeyError):
        index.position("g", "w")


def test_sigma_from_batch_results_matches_data_matrix(small_retailer, small_retailer_query):
    continuous = ["inventoryunits", "prize", "maxtemp"]
    categorical = ["category", "snow"]
    engine = LMFAOEngine(small_retailer, small_retailer_query)
    result = engine.evaluate(covariance_batch(continuous, categorical))
    sigma = sigma_from_batch_results(result.as_mapping(), continuous, categorical)

    joined = small_retailer_query.evaluate(small_retailer)
    rows = [dict(zip(joined.schema.names, row)) for row in joined.expanded_rows()]
    reference = sigma_from_data_matrix(rows, continuous, categorical)

    assert sigma.is_symmetric()
    assert sigma.dimension == reference.dimension
    assert np.allclose(sigma.matrix, reference.matrix)
    assert sigma.count() == pytest.approx(len(rows))


def test_sigma_entry_accessors(small_retailer, small_retailer_query):
    continuous = ["inventoryunits", "prize"]
    engine = LMFAOEngine(small_retailer, small_retailer_query)
    result = engine.evaluate(covariance_batch(continuous, []))
    sigma = sigma_from_batch_results(result.as_mapping(), continuous, [])
    assert sigma.entry("prize", "prize") > 0
    assert sigma.entry("inventoryunits", "prize") == sigma.entry("prize", "inventoryunits")
    submatrix = sigma.submatrix([0, 1])
    assert submatrix.shape == (2, 2)


def test_sigma_from_batch_results_requires_grouped_counts():
    with pytest.raises(KeyError):
        sigma_from_batch_results({"count": 3.0}, ["a"], ["g"])
