"""Documentation must not drift: links resolve and fenced snippets run.

Delegates to :mod:`tools.check_docs` so the test suite and the CI workflow
enforce exactly the same rules.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
assert _spec.loader is not None
_spec.loader.exec_module(check_docs)


def test_readme_exists_with_quickstart():
    readme = REPO_ROOT / "README.md"
    assert readme.exists()
    text = readme.read_text()
    assert "Quickstart" in text
    assert "PYTHONPATH=src python -m pytest" in text


def test_all_relative_links_resolve():
    assert check_docs.check_links() == []


def test_fenced_snippets_carry_doctests():
    """The README quickstart must stay executable (non-empty doctest set)."""
    blocks = check_docs.doctest_blocks(REPO_ROOT / "README.md")
    assert blocks, "README.md lost its doctest-able quickstart snippets"


def test_fenced_doctests_pass():
    assert check_docs.check_doctests() == []


def test_anchor_extraction_follows_github_slugs():
    assert check_docs.heading_anchor("Architecture notes") == "architecture-notes"
    assert (
        check_docs.heading_anchor("The `BENCH_PR<n>.json` convention")
        == "the-bench_prnjson-convention"
    )
    assert check_docs.heading_anchor("## is not stripped twice") != ""


def test_broken_anchor_is_reported(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("# Real section\n\nSee [gone](#renamed-away) and "
                    "[ok](#real-section).\n")
    other = tmp_path / "other.md"
    other.write_text("Link [there](page.md#real-section) and "
                     "[broken](page.md#no-such-heading).\n")
    problems = check_docs.check_links([page, other])
    assert len(problems) == 2
    assert any("renamed-away" in problem for problem in problems)
    assert any("no-such-heading" in problem for problem in problems)


def test_duplicate_headings_get_suffix_anchors(tmp_path):
    page = tmp_path / "dup.md"
    page.write_text("# Setup\n\n# Setup\n\n[first](#setup) [second](#setup-1)\n")
    assert check_docs.check_links([page]) == []
