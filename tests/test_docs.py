"""Documentation must not drift: links resolve and fenced snippets run.

Delegates to :mod:`tools.check_docs` so the test suite and the CI workflow
enforce exactly the same rules.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
assert _spec.loader is not None
_spec.loader.exec_module(check_docs)


def test_readme_exists_with_quickstart():
    readme = REPO_ROOT / "README.md"
    assert readme.exists()
    text = readme.read_text()
    assert "Quickstart" in text
    assert "PYTHONPATH=src python -m pytest" in text


def test_all_relative_links_resolve():
    assert check_docs.check_links() == []


def test_fenced_snippets_carry_doctests():
    """The README quickstart must stay executable (non-empty doctest set)."""
    blocks = check_docs.doctest_blocks(REPO_ROOT / "README.md")
    assert blocks, "README.md lost its doctest-able quickstart snippets"


def test_fenced_doctests_pass():
    assert check_docs.check_doctests() == []
