"""Tests for hypergraphs, acyclicity, join trees, variable orders and widths."""

import math

import pytest

from repro.query import (
    ConjunctiveQuery,
    Hypergraph,
    JoinTree,
    build_join_tree,
    build_variable_order,
    factorization_width,
    fractional_edge_cover_number,
    fractional_hypertree_width,
    gyo_reduction,
    integral_edge_cover_number,
    is_acyclic,
)
from repro.query.conjunctive import QueryError
from repro.query.decompositions import best_decomposition, materialize_bags
from repro.query.join_tree import JoinTreeError
from repro.query.variable_order import VariableOrderError, order_from_nested
from repro.query.widths import agm_bound, variable_order_width


TRIANGLE = Hypergraph({"R": {"a", "b"}, "S": {"b", "c"}, "T": {"a", "c"}})
PATH = Hypergraph({"R": {"a", "b"}, "S": {"b", "c"}, "T": {"c", "d"}})
STAR = Hypergraph({"F": {"k1", "k2", "m"}, "D1": {"k1", "x"}, "D2": {"k2", "y"}})


# -- hypergraph / acyclicity ------------------------------------------------------------------


def test_path_query_is_acyclic():
    assert is_acyclic(PATH)


def test_star_query_is_acyclic():
    assert is_acyclic(STAR)


def test_triangle_query_is_cyclic():
    assert not is_acyclic(TRIANGLE)


def test_gyo_reduction_eliminates_all_but_one_edge_for_acyclic():
    residual, order = gyo_reduction(PATH)
    assert len(residual) == 1
    assert len(order) == 2


def test_hypergraph_accessors():
    assert TRIANGLE.vertices == frozenset({"a", "b", "c"})
    assert set(TRIANGLE.edges_containing("a")) == {"R", "T"}
    restricted = TRIANGLE.restrict_to_vertices({"a", "b"})
    assert restricted.edge("R") == frozenset({"a", "b"})
    assert len(restricted) == 3  # T keeps its 'a' vertex


# -- join trees --------------------------------------------------------------------------------


def test_join_tree_for_star_query_rooted_at_fact():
    tree = build_join_tree(STAR, root="F")
    assert tree.root.relation_name == "F"
    assert {child.relation_name for child in tree.root.children} == {"D1", "D2"}
    assert tree.satisfies_running_intersection()


def test_join_tree_rerooting_preserves_nodes():
    tree = build_join_tree(STAR, root="F")
    rerooted = tree.rerooted("D1")
    assert rerooted.root.relation_name == "D1"
    assert set(rerooted.relation_names) == set(tree.relation_names)
    assert rerooted.satisfies_running_intersection()


def test_join_tree_refuses_cyclic_queries():
    with pytest.raises(JoinTreeError):
        build_join_tree(TRIANGLE)


def test_join_tree_connection_attributes():
    tree = build_join_tree(STAR, root="F")
    d1 = tree.node("D1")
    assert d1.connection_attributes() == frozenset({"k1"})
    assert tree.root.connection_attributes() == frozenset()


def test_join_tree_post_order_children_first():
    tree = build_join_tree(STAR, root="F")
    order = [node.relation_name for node in tree.post_order()]
    assert order[-1] == "F"
    assert set(order[:-1]) == {"D1", "D2"}


def test_join_tree_on_datasets(small_retailer, small_retailer_query):
    hypergraph = small_retailer_query.hypergraph(small_retailer)
    assert is_acyclic(hypergraph)
    tree = build_join_tree(hypergraph, root="Inventory")
    assert tree.satisfies_running_intersection()
    assert set(tree.relation_names) == set(small_retailer_query.relation_names)


# -- variable orders --------------------------------------------------------------------------------


def test_variable_order_is_valid_for_toy_query(toy_database, toy_query):
    order = build_variable_order(toy_query, toy_database)
    hypergraph = toy_query.hypergraph(toy_database)
    order.validate(hypergraph)  # does not raise
    assert set(order.variables()) == set(hypergraph.vertices)


def test_variable_order_keys_are_subsets_of_ancestors(toy_database, toy_query):
    order = build_variable_order(toy_query, toy_database)
    for node in order.nodes():
        assert node.key <= frozenset(node.ancestors())


def test_paper_variable_order_from_nested_spec(toy_database, toy_query):
    hypergraph = toy_query.hypergraph(toy_database)
    order = order_from_nested({"dish": {"day": {"customer": {}}, "item": {"price": {}}}}, hypergraph)
    price = order.find("price")
    assert price.key == frozenset({"item"})
    customer = order.find("customer")
    assert customer.key == frozenset({"dish", "day"})


def test_invalid_variable_order_is_rejected(toy_database, toy_query):
    hypergraph = toy_query.hypergraph(toy_database)
    # customer and day both under dish but price not under item: Items' attributes
    # {item, price} would not lie on a single path.
    with pytest.raises(VariableOrderError):
        order_from_nested(
            {"dish": {"day": {"customer": {}}, "item": {}, "price": {}}}, hypergraph
        )


# -- width measures -----------------------------------------------------------------------------------


def test_fractional_edge_cover_of_triangle_is_three_halves():
    assert math.isclose(fractional_edge_cover_number(TRIANGLE), 1.5, rel_tol=1e-6)


def test_integral_edge_cover_of_triangle_is_two():
    assert integral_edge_cover_number(TRIANGLE) == 2


def test_fractional_edge_cover_of_acyclic_path():
    assert math.isclose(fractional_edge_cover_number(PATH), 2.0, rel_tol=1e-6)


def test_fractional_edge_cover_uncoverable_vertex_is_infinite():
    assert fractional_edge_cover_number(PATH, ["z"]) == float("inf")


def test_fractional_hypertree_width_acyclic_is_one():
    assert math.isclose(fractional_hypertree_width(STAR), 1.0, rel_tol=1e-6)


def test_fractional_hypertree_width_triangle_is_three_halves():
    assert math.isclose(fractional_hypertree_width(TRIANGLE), 1.5, rel_tol=1e-6)


def test_agm_bound_triangle():
    sizes = {"R": 100, "S": 100, "T": 100}
    assert math.isclose(agm_bound(TRIANGLE, sizes), 1000.0, rel_tol=1e-6)


def test_factorization_width_of_acyclic_query_is_one(toy_database, toy_query):
    hypergraph = toy_query.hypergraph(toy_database)
    orders = [
        build_variable_order(toy_query, toy_database, root_relation=name)
        for name in toy_query.relation_names
    ]
    assert math.isclose(factorization_width(hypergraph, orders), 1.0, rel_tol=1e-6)
    for order in orders:
        assert variable_order_width(order, hypergraph) >= 1.0


# -- decompositions -------------------------------------------------------------------------------------


def test_best_decomposition_of_triangle_has_width_two():
    decomposition = best_decomposition(TRIANGLE)
    assert decomposition.width == 2
    assert decomposition.fractional_width(TRIANGLE) >= 1.0


def test_materialize_bags_turns_triangle_acyclic():
    from repro.data import Database
    from repro.data.relation import relation_from_rows

    r = relation_from_rows("R", ["a", "b"], [(1, 1), (1, 2), (2, 1)])
    s = relation_from_rows("S", ["b", "c"], [(1, 5), (2, 6)])
    t = relation_from_rows("T", ["a", "c"], [(1, 5), (2, 6), (1, 6)])
    database = Database([r, s, t])
    decomposition = best_decomposition(TRIANGLE)
    bag_database, bag_hypergraph = materialize_bags(database, TRIANGLE, decomposition)
    assert is_acyclic(bag_hypergraph)
    # The join over the bags equals the join over the original relations.
    original = database.natural_join()
    bags_joined = bag_database.natural_join()
    projected = {tuple(sorted(zip(bags_joined.schema.names, row))) for row in bags_joined}
    expected = {tuple(sorted(zip(original.schema.names, row))) for row in original}
    assert projected == expected


# -- conjunctive queries -----------------------------------------------------------------------------------


def test_query_evaluation_and_output_variables(toy_database, toy_query):
    joined = toy_query.evaluate(toy_database)
    assert len(joined) == 12
    restricted = ConjunctiveQuery(["Orders", "Dish"], free_variables=["customer", "item"])
    projected = restricted.evaluate(toy_database)
    assert set(projected.schema.names) == {"customer", "item"}


def test_query_unknown_free_variable_raises(toy_database):
    query = ConjunctiveQuery(["Orders"], free_variables=["nope"])
    with pytest.raises(QueryError):
        query.evaluate(toy_database)


def test_query_requires_relations():
    with pytest.raises(QueryError):
        ConjunctiveQuery([])


def test_query_join_attributes(toy_database, toy_query):
    membership = toy_query.join_attributes(toy_database)
    assert membership["dish"] == {"Orders", "Dish"}
    assert membership["item"] == {"Dish", "Items"}
