"""Equivalence of the three executor paths on randomized acyclic queries.

The engine has three code paths — interpreted (per-row dictionaries),
tuple-specialized (position-resolved scan) and columnar (vectorised over the
dictionary-encoded column store).  They must be *indistinguishable* on any
query the planner accepts: same views, same group keys (including groups
whose contributions cancel to exactly 0.0), same values.

The random databases use signed multiplicities, so cancellation, empty join
branches, grouped multi-entry child views and filtered children all occur.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.aggregates import Aggregate, AggregateBatch, Filter, FilterOp
from repro.data import Database, Relation, Schema
from repro.engine import EngineOptions, LMFAOEngine, MaterializedJoinEngine
from repro.engine.executor import (
    STAT_COLUMNAR,
    STAT_INTERPRETED,
    STAT_TUPLE_FALLBACK,
    STAT_TUPLE_SPECIALIZED,
)

PATHS = {
    "interpreted": EngineOptions(specialize=False, share=True),
    "tuple": EngineOptions(specialize=True, columnar=False, share=True),
    "columnar": EngineOptions(specialize=True, columnar=True, share=True),
}

#: Since PR 8 the interpreted and tuple paths are correctness oracles only:
#: they define the semantics the columnar path must reproduce, and every
#: database this suite feeds them stays under this row cap (large-scale
#: sweeps exclude them — see ``benchmarks/bench_figure6_ablation.py`` and
#: the demotion note in ``docs/architecture.md``).
ORACLE_ROW_CAP = 256


def _check_oracle_cap(database) -> None:
    total = sum(len(relation) for relation in database)
    assert total <= ORACLE_ROW_CAP, (
        f"oracle-path test database has {total} rows (cap {ORACLE_ROW_CAP}); "
        "the interpreted/tuple paths are correctness oracles, not engines — "
        "keep their inputs small"
    )


def _random_database(rng: random.Random) -> Database:
    """A star-plus-chain schema: F(a,b,m) - D1(a,x,c) - E(c,z), F - D2(b,y)."""

    def rows(count, maker):
        out = {}
        for _ in range(count):
            row = maker()
            out[row] = out.get(row, 0) + rng.choice([-2, -1, 1, 1, 2, 3])
        return {row: mult for row, mult in out.items() if mult != 0}

    key = lambda: rng.randint(0, 3)               # noqa: E731
    val = lambda: rng.randint(-4, 4)              # noqa: E731
    fact = rows(rng.randint(0, 14), lambda: (key(), key(), val()))
    dim1 = rows(rng.randint(0, 8), lambda: (key(), val(), key()))
    dim2 = rows(rng.randint(0, 6), lambda: (key(), val()))
    leaf = rows(rng.randint(0, 6), lambda: (key(), val()))
    return Database(
        [
            Relation("F", Schema.from_names(["a", "b", "m"], ["a", "b"]),
                     multiplicities=fact),
            Relation("D1", Schema.from_names(["a", "x", "c"], ["a", "c"]),
                     multiplicities=dim1),
            Relation("D2", Schema.from_names(["b", "y"], ["b"]),
                     multiplicities=dim2),
            Relation("E", Schema.from_names(["c", "z"], ["c"]),
                     multiplicities=leaf),
        ]
    )


def _batch() -> AggregateBatch:
    return AggregateBatch(
        "equivalence",
        [
            Aggregate.count(name="count"),
            Aggregate.sum_of(["m"], name="sum_m"),
            Aggregate.sum_of(["m", "x"], name="sum_mx"),
            Aggregate.sum_of(["x", "z"], name="sum_xz"),
            Aggregate.sum_of(["y", "z"], name="sum_yz"),
            Aggregate.count(group_by=["a"], name="count_a"),
            # group-by on a child attribute: the child view is grouped and
            # multi-entry, which the pre-columnar fast path could not join.
            Aggregate.sum_of(["m"], group_by=["x"], name="sum_m_by_x"),
            Aggregate.sum_of(["z"], group_by=["x", "b"], name="sum_z_by_xb"),
            Aggregate.sum_of(["m"], filters=[Filter("x", FilterOp.GE, 0)], name="sum_m_xpos"),
            Aggregate.count(
                group_by=["y"], filters=[Filter("z", FilterOp.LE, 2)], name="count_y_zsmall"
            ),
            Aggregate.sum_of(["m", "y"], group_by=["c"], name="sum_my_by_c"),
        ],
    )


def _exact_equal(left, right):
    if isinstance(left, dict) or isinstance(right, dict):
        assert isinstance(left, dict) and isinstance(right, dict)
        assert set(left) == set(right)
        return all(
            math.isclose(left[key], right[key], rel_tol=1e-9, abs_tol=1e-9) for key in left
        )
    return math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-9)


def _tolerant_equal(left, right):
    """Union-keyed comparison (the naive engine may drop exact-zero groups)."""
    if isinstance(left, dict) or isinstance(right, dict):
        left = left if isinstance(left, dict) else {}
        right = right if isinstance(right, dict) else {}
        return all(
            math.isclose(left.get(key, 0.0), right.get(key, 0.0), rel_tol=1e-9, abs_tol=1e-9)
            for key in set(left) | set(right)
        )
    return math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-9)


@pytest.mark.parametrize("seed", range(20))
def test_all_executor_paths_identical_on_random_queries(seed):
    from repro.query import ConjunctiveQuery

    rng = random.Random(seed)
    database = _random_database(rng)
    _check_oracle_cap(database)
    query = ConjunctiveQuery(["F", "D1", "D2", "E"])
    batch = _batch()

    results = {}
    stats = {}
    for name, options in PATHS.items():
        outcome = LMFAOEngine(database, query, options).evaluate(batch)
        results[name] = outcome.values
        stats[name] = outcome.executor_stats

    # The three paths agree exactly: same keys (zero-sum groups included).
    for name in ("tuple", "columnar"):
        for aggregate_name, value in results["interpreted"].items():
            assert _exact_equal(value, results[name][aggregate_name]), (
                seed, name, aggregate_name,
            )

    # Each path actually ran, and nothing fell off the columnar fast path.
    assert stats["interpreted"].get(STAT_INTERPRETED, 0) > 0
    assert stats["tuple"].get(STAT_TUPLE_SPECIALIZED, 0) > 0
    assert stats["columnar"].get(STAT_COLUMNAR, 0) > 0
    assert stats["columnar"].get(STAT_TUPLE_FALLBACK, 0) == 0

    # And all of them agree with the materialised-join baseline.
    naive = MaterializedJoinEngine(database, query).evaluate(batch)
    for aggregate_name, value in results["columnar"].items():
        assert _tolerant_equal(value, naive.values[aggregate_name]), (seed, aggregate_name)


def test_cancelling_multiplicities_keep_zero_groups_on_every_path():
    """Groups whose contributions cancel to exactly 0.0 stay in the result.

    Regression test: the pre-columnar vectorised path dropped groups whose
    sum was exactly zero while the tuple scan kept them, so the two paths
    returned different group-key sets.
    """
    from repro.query import ConjunctiveQuery

    database = Database(
        [
            Relation(
                "F",
                Schema.from_names(["k", "m"], ["k"]),
                multiplicities={(1, 2): 1, (1, 3): -1, (2, 5): 2},
            ),
            Relation(
                "D",
                Schema.from_names(["k", "x"], ["k"]),
                multiplicities={(1, 7): 1, (2, 9): 1},
            ),
        ]
    )
    query = ConjunctiveQuery(["F", "D"])
    batch = AggregateBatch(
        "zeros",
        [
            Aggregate.count(group_by=["k"], name="count_k"),
            Aggregate.sum_of(["m"], group_by=["k"], name="sum_m_k"),
        ],
    )
    for name, options in PATHS.items():
        result = LMFAOEngine(database, query, options).evaluate(batch)
        count_k = result.grouped("count_k")
        # Group k=1 has multiplicities +1 and -1: the count cancels to 0.0
        # but the group must remain visible on every path.
        assert count_k[(1,)] == pytest.approx(0.0), name
        assert count_k[(2,)] == pytest.approx(2.0), name
        sum_m_k = result.grouped("sum_m_k")
        assert sum_m_k[(1,)] == pytest.approx(2.0 - 3.0), name
        # F carries (2, 5) with multiplicity 2 and D matches once: 5 * 2.
        assert sum_m_k[(2,)] == pytest.approx(10.0), name


def test_columnar_handles_grouped_multi_child_views_without_fallback():
    """Grouped multi-entry child views stay on the vectorised path."""
    from repro.query import ConjunctiveQuery

    rng = random.Random(7)
    database = _random_database(rng)
    query = ConjunctiveQuery(["F", "D1", "D2", "E"])
    batch = AggregateBatch(
        "grouped-children",
        [
            Aggregate.sum_of(["m"], group_by=["x"], name="sum_m_by_x"),
            Aggregate.sum_of(["m"], group_by=["x", "y", "z"], name="sum_m_by_xyz"),
        ],
    )
    outcome = LMFAOEngine(database, query).evaluate(batch)
    assert outcome.executor_stats.get(STAT_TUPLE_FALLBACK, 0) == 0
    assert outcome.executor_stats.get(STAT_COLUMNAR, 0) > 0
    naive = MaterializedJoinEngine(database, query).evaluate(batch)
    for name, value in outcome.values.items():
        assert _tolerant_equal(value, naive.values[name]), name


def test_big_integer_join_keys_stay_exact():
    """Join keys beyond 2**53 must not collapse in the vectorised matcher.

    Regression test: decoding integer dictionaries to float64 for the
    searchsorted key matching equated 2**53 with 2**53 + 1, joining rows
    that do not match.
    """
    from repro.query import ConjunctiveQuery

    big = 2 ** 53
    database = Database(
        [
            Relation(
                "F",
                Schema.from_names(["k", "m"], ["k"]),
                multiplicities={(big, 10): 1, (big + 1, 200): 1},
            ),
            Relation(
                "D",
                Schema.from_names(["k", "x"], ["k"]),
                multiplicities={(big, 2): 1},
            ),
        ]
    )
    query = ConjunctiveQuery(["F", "D"])
    batch = AggregateBatch(
        "big-keys",
        [
            Aggregate.sum_of(["m"], name="sum_m"),
            Aggregate.sum_of(["m"], filters=[Filter("k", FilterOp.EQ, big + 1)], name="sum_m_k1"),
        ],
    )
    for name, options in PATHS.items():
        result = LMFAOEngine(database, query, options).evaluate(batch)
        # Only the (big, 10) row joins; the (big + 1, 200) row has no match.
        assert result.scalar("sum_m") == pytest.approx(10.0), name
        assert result.scalar("sum_m_k1") == pytest.approx(0.0), name


def test_cross_map_cache_does_not_grow_across_child_mutations():
    """One cross-store key mapping per (attrs, child), replaced on mutation."""
    from repro.query import ConjunctiveQuery

    database = Database(
        [
            Relation("F", Schema.from_names(["k", "m"], ["k"]), rows=[(1, 2), (2, 3)]),
            Relation("D", Schema.from_names(["k", "x"], ["k"]), rows=[(1, 7), (2, 9)]),
        ]
    )
    query = ConjunctiveQuery(["F", "D"])
    batch = AggregateBatch("m", [Aggregate.sum_of(["m", "x"], group_by=["x"], name="mx")])
    engine = LMFAOEngine(database, query)
    engine.evaluate(batch)
    sizes = set()
    for step in range(4):
        database["D"].add((1, 100 + step))
        engine.evaluate(batch)
        sizes.update(
            len(context._cross_maps) for context in engine._context_cache.values()
        )
    assert max(sizes) <= 1, sizes


def test_int_float_key_domains_do_not_collapse_big_integers():
    """Integer keys joined against a float dictionary keep Python equality.

    Regression test: mixing an int64 and a float64 key dictionary into one
    float64 searchsorted domain equated 2**53 + 1 with 2.0**53, joining a
    row that Python equality keeps apart.
    """
    from repro.query import ConjunctiveQuery

    big = 2 ** 53
    database = Database(
        [
            Relation(
                "F",
                Schema.from_names(["k", "m"], ["k"]),
                multiplicities={(big, 1): 1, (big + 1, 1): 1},
            ),
            Relation(
                "D",
                Schema.from_names(["k", "x"], ["k"]),
                multiplicities={(float(big), 2.0): 1},   # float-typed key column
            ),
        ]
    )
    query = ConjunctiveQuery(["F", "D"])
    batch = AggregateBatch("mixed-kinds", [Aggregate.count(name="count")])
    for name, options in PATHS.items():
        result = LMFAOEngine(database, query, options).evaluate(batch)
        # Only big == float(big) joins; big + 1 != 2.0**53 under Python equality.
        assert result.scalar("count") == pytest.approx(1.0), name


def test_columnar_views_compare_equal_before_materialisation():
    """View equality must not read a lazy view's raw backing storage."""
    from repro.engine.plan import decompose_aggregate, designate_attributes
    from repro.engine.executor import ColumnarView, compute_node_views
    from repro.query import ConjunctiveQuery, build_join_tree

    database = Database(
        [
            Relation("F", Schema.from_names(["k", "m"], ["k"]), rows=[(1, 2), (2, 3)]),
            Relation("D", Schema.from_names(["k", "x"], ["k"]), rows=[(1, 7), (2, 9)]),
        ]
    )
    query = ConjunctiveQuery(["F", "D"])
    tree = build_join_tree(query.hypergraph(database), root="F")
    designation = designate_attributes(tree)
    aggregate = Aggregate.sum_of(["x"], group_by=["k"], name="x_by_k")
    decomposition = decompose_aggregate(aggregate, tree, designation)
    leaf = tree.node("D")
    signature = decomposition.signature_at("D")

    def fresh_view():
        return compute_node_views(
            leaf, database["D"], [signature], designation, {}, specialize=True
        )[signature]

    left, right = fresh_view(), fresh_view()
    assert isinstance(left, ColumnarView) and isinstance(right, ColumnarView)
    assert left == right                      # neither side materialised yet
    assert not (fresh_view() != fresh_view())


def test_filtered_out_nonfinite_rows_do_not_poison_sums():
    """A filtered-out inf row must not turn the signature's sums into NaN."""
    from repro.query import ConjunctiveQuery

    database = Database(
        [
            Relation(
                "F",
                Schema.from_names(["k", "m"], ["k"]),
                multiplicities={(1, 2.0): 1, (1, float("inf")): 1},
            ),
            Relation("D", Schema.from_names(["k", "x"], ["k"]), rows=[(1, 7)]),
        ]
    )
    query = ConjunctiveQuery(["F", "D"])
    batch = AggregateBatch(
        "inf",
        [Aggregate.sum_of(["m"], filters=[Filter("m", FilterOp.LE, 100)], name="sum_small")],
    )
    for name, options in PATHS.items():
        result = LMFAOEngine(database, query, options).evaluate(batch)
        assert result.scalar("sum_small") == pytest.approx(2.0), name


def test_mixed_int_float_column_keeps_huge_ints_distinct():
    """A column mixing floats with ints beyond 2**53 must not merge codes."""
    from repro.query import ConjunctiveQuery

    big = 2 ** 53
    database = Database(
        [
            Relation(
                "F",
                Schema.from_names(["k", "m"], ["k"]),
                multiplicities={(big + 1, 1): 1, (float(big), 1): 1},
            ),
            Relation(
                "D",
                Schema.from_names(["k", "x"], ["k"]),
                multiplicities={(big + 1, 2): 1},
            ),
        ]
    )
    query = ConjunctiveQuery(["F", "D"])
    batch = AggregateBatch("mixed-col", [Aggregate.count(name="count")])
    for name, options in PATHS.items():
        result = LMFAOEngine(database, query, options).evaluate(batch)
        # Only the int key big + 1 matches D; float(big) is a different value.
        assert result.scalar("count") == pytest.approx(1.0), name


def test_extraction_is_stable_after_view_materialisation():
    """Reading a root view as a mapping must not change extracted groups.

    Regression test: the positional extraction fast path used the raw
    concatenation-order attribute sequence even after the view's dict shape
    (whose keys are attribute-sorted) had been materialised, returning the
    wrong attribute's values.
    """
    from repro.engine import LMFAOEngine

    rng = random.Random(3)
    database = _random_database(rng)
    from repro.query import ConjunctiveQuery

    query = ConjunctiveQuery(["F", "D1", "D2", "E"])
    batch = AggregateBatch(
        "stable", [Aggregate.sum_of(["m"], group_by=["b", "x"], name="m_by_bx")]
    )
    fresh = LMFAOEngine(database, query).evaluate(batch).grouped("m_by_bx")

    engine = LMFAOEngine(database, query)
    plan = engine.plan(batch)
    views = engine._evaluate_views(plan, {})
    root_name = engine.join_tree.root.relation_name
    root_view = views[(root_name, plan.decompositions[0].root_signature)]
    len(root_view)                                  # materialise the dict shape
    again = engine._extract(batch[0], root_view)
    assert again == fresh
