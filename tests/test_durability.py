"""The durability subsystem in-process: journal, checkpoints, quarantine, pins.

The crash half of the story (kill -9 at every labeled fault point) lives in
``test_fault_matrix.py``; this module covers everything provable without
leaving the process: journal framing round-trips (hypothesis), torn-tail
truncation, abort records, checkpoint atomicity and corruption tolerance,
the ``apply_batch ≡ net_updates + apply_groups`` bit-identity the journal
relies on, recovery equivalence, the all-or-nothing batch contract, the
exception-safe writer gate, poison-batch quarantine through the server, and
reader pin/error isolation.
"""

import os
import pickle
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import retailer_database, retailer_query
from repro.durability import (
    BatchJournal,
    CheckpointStore,
    DurabilityOptions,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    JournalError,
    clear_fault_plan,
    decode_record,
    encode_record,
    install_fault_plan,
    recover,
)
from repro.durability.journal import FILE_MAGIC, KIND_ABORT, KIND_BATCH
from repro.ivm import FIVM, FirstOrderIVM, Update
from repro.serving import PoisonBatchError, QueryServer
from streams import random_update_stream

FEATURES = ["inventoryunits", "prize", "maxtemp"]


@pytest.fixture(scope="module")
def source():
    database = retailer_database(inventory_rows=120, stores=4, items=8, dates=6, seed=21)
    return database, retailer_query()


@pytest.fixture(autouse=True)
def _no_fault_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


def _payloads_equal(left, right):
    return (
        left.count == right.count
        and np.array_equal(left.sums, right.sums)
        and np.array_equal(left.moments, right.moments)
    )


def _groups(*entries):
    return [(name, list(rows), list(mults)) for name, rows, mults in entries]


# -- journal framing -------------------------------------------------------------------


def test_journal_append_and_replay(tmp_path):
    path = tmp_path / "journal.wal"
    groups = _groups(("R", [(1, 2), (3, 4)], [1, -1]), ("S", [("a",)], [2]))
    with BatchJournal(path, sync="fsync") as journal:
        assert journal.last_seq == -1
        assert journal.append(groups) == 0
        assert journal.append(groups) == 1
        assert journal.last_seq == 1
    with BatchJournal(path, sync="none") as journal:
        records = list(journal.replay())
        assert [record.seq for record in records] == [0, 1]
        assert records[0].groups == groups
        assert journal.last_seq == 1
        assert journal.next_seq == 2


def test_journal_replay_after_seq_and_aborts(tmp_path):
    path = tmp_path / "journal.wal"
    with BatchJournal(path) as journal:
        for value in range(4):
            journal.append(_groups(("R", [(value,)], [1])))
        journal.abort(2)
        assert journal.last_seq == 3
        assert [record.seq for record in journal.replay()] == [0, 1, 3]
        assert [record.seq for record in journal.replay(after_seq=1)] == [3]
    # Abort records survive reopen.
    with BatchJournal(path) as journal:
        assert [record.seq for record in journal.replay()] == [0, 1, 3]


def test_journal_abort_of_latest_batch_rolls_last_seq_back(tmp_path):
    with BatchJournal(tmp_path / "journal.wal") as journal:
        journal.append(_groups(("R", [(1,)], [1])))
        seq = journal.append(_groups(("R", [(2,)], [1])))
        journal.abort(seq)
        assert journal.last_seq == 0


@pytest.mark.parametrize("cut", [1, 5, 12, 16, 17])
def test_journal_torn_tail_truncates(tmp_path, cut):
    path = tmp_path / "journal.wal"
    with BatchJournal(path, sync="fsync") as journal:
        journal.append(_groups(("R", [(1, "x")], [1])))
        journal.append(_groups(("R", [(2, "y")], [-1])))
    raw = path.read_bytes()
    path.write_bytes(raw[:-cut])
    journal = BatchJournal(path)
    try:
        assert journal.truncated_bytes > 0
        assert journal.last_seq == 0
        assert [record.seq for record in journal.replay()] == [0]
        # The journal is append-ready again at the truncation point.
        journal.append(_groups(("S", [(3,)], [1])))
        assert [record.seq for record in journal.replay()] == [0, 1]
    finally:
        journal.close()


def test_journal_corrupt_middle_record_drops_the_rest(tmp_path):
    path = tmp_path / "journal.wal"
    with BatchJournal(path, sync="fsync") as journal:
        first = journal.append(_groups(("R", [(1,)], [1])))
        journal.append(_groups(("R", [(2,)], [1])))
    raw = bytearray(path.read_bytes())
    # Flip one payload byte of the second record (the tail byte).
    raw[-1] ^= 0xFF
    path.write_bytes(bytes(raw))
    with BatchJournal(path) as journal:
        assert journal.last_seq == first
        assert [record.seq for record in journal.replay()] == [first]


def test_journal_rejects_foreign_file_and_bad_sync(tmp_path):
    path = tmp_path / "not-a-journal"
    path.write_bytes(b"BOGUS!!!" + b"\x00" * 32)
    with pytest.raises(JournalError, match="magic"):
        BatchJournal(path)
    with pytest.raises(JournalError, match="sync"):
        BatchJournal(tmp_path / "journal.wal", sync="sometimes")


@settings(max_examples=50, deadline=None)
@given(
    seq=st.integers(min_value=0, max_value=2**63 - 1),
    groups=st.lists(
        st.tuples(
            st.text(min_size=1, max_size=8),
            st.lists(
                st.tuples(
                    st.integers(min_value=-(2**31), max_value=2**31),
                    st.text(max_size=6),
                ),
                min_size=1,
                max_size=5,
            ),
        ),
        max_size=4,
    ),
)
def test_journal_record_roundtrip(seq, groups):
    """encode_record/decode_record invert each other for any batch payload."""
    batch = [
        (name, rows, [1] * len(rows)) for name, rows in groups
    ]
    payload = pickle.dumps(batch, protocol=4)
    framed = encode_record(seq, KIND_BATCH, payload)
    decoded = decode_record(framed, 0)
    assert decoded is not None
    record, offset = decoded
    assert offset == len(framed)
    assert record.seq == seq
    assert record.kind == KIND_BATCH
    assert record.groups == batch
    # Any strict prefix is a torn tail, never a parse error.
    for cut in (1, len(framed) // 2, len(framed) - 1):
        assert decode_record(framed[:cut], 0) is None


def test_decode_record_rejects_unknown_kind_and_bad_abort_length():
    framed = encode_record(0, 7, b"payload")
    assert decode_record(framed, 0) is None
    framed = encode_record(0, KIND_ABORT, b"short")
    assert decode_record(framed, 0) is None
    framed = encode_record(3, KIND_ABORT, struct.pack("<Q", 2))
    record, _offset = decode_record(framed, 0)
    assert record.aborts == 2 and not record.is_batch


# -- checkpoints -----------------------------------------------------------------------


def test_checkpoint_write_load_and_prune(tmp_path, source):
    database, query = source
    maintainer = FIVM(database, query, FEATURES)
    maintainer.apply_batch(random_update_stream(database, seed=3, length=60))
    store = CheckpointStore(tmp_path, keep=2)
    for step, seq in enumerate([0, 5, 9]):
        store.write(maintainer, seq, prefix=step + 1)
    assert len(store.checkpoints()) == 2  # pruned to keep=2
    loaded = store.latest()
    assert loaded is not None
    assert loaded.seq == 9 and loaded.prefix == 3
    assert _payloads_equal(loaded.maintainer.statistics(), maintainer.statistics())
    # The restored maintainer is immediately writable (fresh writer gate).
    loaded.maintainer.apply(Update("Inventory", next(iter(database.relation("Inventory"))), 1))


def test_checkpoint_latest_skips_corrupt_files(tmp_path, source):
    database, query = source
    maintainer = FIVM(database, query, FEATURES)
    store = CheckpointStore(tmp_path, keep=4)
    store.write(maintainer, 1, prefix=1)
    maintainer.apply_batch(random_update_stream(database, seed=4, length=40))
    good = maintainer.statistics()
    newest = store.write(maintainer, 7, prefix=2)
    # Corrupt the newest file: latest() must fall back to the previous one.
    raw = bytearray(newest.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    newest.write_bytes(bytes(raw))
    loaded = store.latest()
    assert loaded is not None and loaded.seq == 1
    assert not _payloads_equal(loaded.maintainer.statistics(), good)
    # A stray .tmp from a crashed write is invisible to loaders.
    (tmp_path / "checkpoint-000000000099.tmp").write_bytes(b"garbage")
    assert store.latest().seq == 1


def test_checkpoint_pickle_sheds_process_local_state(source):
    database, query = source
    maintainer = FIVM(database, query, FEATURES)
    maintainer.apply_batch(random_update_stream(database, seed=8, length=50))
    relation = maintainer.database.relation("Inventory")
    relation.pin()  # a reader holds a snapshot while we checkpoint
    try:
        relation.column_store()  # populate the zero-copy cache
        clone = pickle.loads(pickle.dumps(maintainer, protocol=4))
    finally:
        relation.unpin()
    restored = clone.database.relation("Inventory")
    assert restored._store.pins == 0
    assert restored.cached_column_store() is None
    assert _payloads_equal(clone.statistics(), maintainer.statistics())


# -- the grouped apply path ------------------------------------------------------------


@pytest.mark.parametrize("strategy", [FIVM, FirstOrderIVM])
def test_apply_groups_bit_identical_to_apply_batch(source, strategy):
    """The journal's replay contract: netting + grouped apply retraces
    apply_batch exactly, float for float."""
    database, query = source
    stream = random_update_stream(database, seed=97, length=200, cancel_fraction=0.4)
    direct = strategy(database, query, FEATURES)
    replayed = strategy(database, query, FEATURES)
    for start in range(0, len(stream), 30):
        batch = stream[start : start + 30]
        direct.apply_batch(batch)
        replayed.apply_groups(replayed.net_updates(batch))
    assert _payloads_equal(direct.statistics(), replayed.statistics())
    assert direct.database.relation("Inventory") == replayed.database.relation("Inventory")


def test_recover_matches_uninterrupted_run(tmp_path, source):
    database, query = source
    stream = random_update_stream(database, seed=41, length=240, cancel_fraction=0.3)
    batches = [stream[start : start + 20] for start in range(0, len(stream), 20)]
    opts = DurabilityOptions(tmp_path, sync="fsync", checkpoint_interval=4)
    journal = BatchJournal(opts.journal_path, sync="fsync")
    store = CheckpointStore(tmp_path)
    maintainer = FIVM(database, query, FEATURES)
    store.write(maintainer, -1, prefix=0)
    for position, batch in enumerate(batches):
        groups = maintainer.net_updates(batch)
        seq = journal.append(groups)
        maintainer.apply_groups(groups)
        if (position + 1) % 4 == 0:
            store.write(maintainer, seq, prefix=position + 1)
    journal.close()
    result = recover(opts)
    assert result.prefix == len(batches)
    assert result.quarantined == []
    assert _payloads_equal(result.maintainer.statistics(), maintainer.statistics())


def test_recover_without_checkpoint_needs_factory(tmp_path, source):
    database, query = source
    opts = DurabilityOptions(tmp_path)
    maintainer = FIVM(database, query, FEATURES)
    batch = random_update_stream(database, seed=6, length=30)
    with BatchJournal(opts.journal_path) as journal:
        groups = maintainer.net_updates(batch)
        journal.append(groups)
        maintainer.apply_groups(groups)
    with pytest.raises(JournalError, match="maintainer_factory"):
        recover(opts)
    result = recover(opts, maintainer_factory=lambda: FIVM(database, query, FEATURES))
    assert result.checkpoint_seq == -1 and result.replayed_batches == 1
    assert _payloads_equal(result.maintainer.statistics(), maintainer.statistics())


def test_recover_quarantines_poison_journal_record(tmp_path, source):
    """A journaled batch whose replay raises (no abort record survived) is
    excluded and the replay restarted — later batches still land."""
    database, query = source
    opts = DurabilityOptions(tmp_path)
    maintainer = FIVM(database, query, FEATURES)
    store = CheckpointStore(tmp_path)
    store.write(maintainer, -1, prefix=0)
    good = random_update_stream(database, seed=12, length=40)
    row = next(iter(database.relation("Inventory")))
    poison_row = row[:-1] + ("poison",)
    with BatchJournal(opts.journal_path) as journal:
        groups = maintainer.net_updates(good[:20])
        journal.append(groups)
        maintainer.apply_groups(groups)
        journal.append([("Inventory", [poison_row, row], [1, 1])])
        groups = maintainer.net_updates(good[20:])
        journal.append(groups)
        maintainer.apply_groups(groups)
    result = recover(opts)
    assert result.quarantined == [1]
    assert result.replayed_batches == 2
    assert _payloads_equal(result.maintainer.statistics(), maintainer.statistics())


# -- the fault harness -----------------------------------------------------------------


def test_fault_plan_fires_on_nth_call():
    plan = FaultPlan([FaultSpec("journal.append", at_call=3)])
    install_fault_plan(plan)
    from repro.durability.faults import fault_point

    fault_point("journal.append")
    fault_point("journal.append")
    fault_point("checkpoint.write")  # other labels count independently
    with pytest.raises(FaultInjected) as excinfo:
        fault_point("journal.append")
    assert excinfo.value.point == "journal.append" and excinfo.value.call == 3
    # Fires exactly once.
    fault_point("journal.append")
    assert plan.calls == {"journal.append": 4, "checkpoint.write": 1}
    assert plan.fired == [("journal.append", 3)]


def test_fault_spec_validation():
    with pytest.raises(ValueError, match="action"):
        FaultSpec("journal.append", action="explode")
    with pytest.raises(ValueError, match="at_call"):
        FaultSpec("journal.append", at_call=0)


def test_injected_journal_fault_leaves_no_record(tmp_path):
    install_fault_plan(FaultPlan([FaultSpec("journal.append", at_call=2)]))
    with BatchJournal(tmp_path / "journal.wal", sync="fsync") as journal:
        journal.append(_groups(("R", [(1,)], [1])))
        with pytest.raises(FaultInjected):
            journal.append(_groups(("R", [(2,)], [1])))
        assert journal.last_seq == 0
    clear_fault_plan()
    with BatchJournal(tmp_path / "journal.wal") as journal:
        assert [record.seq for record in journal.replay()] == [0]


# -- all-or-nothing batches & the writer gate (satellites 1 + 2) -----------------------


@pytest.mark.parametrize("force_per_tuple", [False, True])
def test_poisoned_batch_leaves_maintainer_untouched(source, force_per_tuple):
    """Validation failure anywhere in a batch must be all-or-nothing, on the
    batched path and on the per-tuple fallback alike."""
    database, query = source
    maintainer = FIVM(database, query, FEATURES)
    if force_per_tuple:
        maintainer.supports_batch_deltas = False
        maintainer.supports_fused_deltas = False
    maintainer.apply_batch(random_update_stream(database, seed=7, length=60))
    before = maintainer.statistics()
    inventory_before = maintainer.database.relation("Inventory").copy()
    good = random_update_stream(database, seed=8, length=20)
    poisoned = good[:10] + [Update("Inventory", (1, 2), 1)] + good[10:]
    with pytest.raises(ValueError, match="arity"):
        maintainer.apply_batch(poisoned)
    # Bit-identical pre-batch state: nothing was applied.
    assert _payloads_equal(maintainer.statistics(), before)
    assert maintainer.database.relation("Inventory") == inventory_before
    # ...and still queryable/writable: the gate was not wedged.
    maintainer.apply_batch(good)
    assert _payloads_equal(maintainer.statistics(), maintainer.recompute_statistics())


def test_raising_batch_does_not_wedge_the_writer_gate(source):
    """A propagation-level raise (not just validation) releases the gate."""
    database, query = source
    maintainer = FIVM(database, query, FEATURES)
    maintainer.apply_batch(random_update_stream(database, seed=9, length=40))
    row = next(iter(database.relation("Inventory")))
    poison_row = row[:-1] + ("poison",)  # passes arity, fails float lift
    with pytest.raises(Exception):
        maintainer.apply_batch([Update("Inventory", poison_row, 1), Update("Inventory", row, 1)])
    # The gate must be free again — a wedged gate raises "single-writer".
    maintainer.apply_batch(random_update_stream(database, seed=10, length=20))


# -- the server: quarantine, read errors, pin leaks ------------------------------------


def _server_source():
    database = retailer_database(inventory_rows=120, stores=4, items=8, dates=6, seed=21)
    return database, retailer_query()


def test_server_quarantines_poison_batch_with_durability(tmp_path):
    database, query = _server_source()
    stream = random_update_stream(database, seed=31, length=150)
    batches = [stream[start : start + 25] for start in range(0, len(stream), 25)]
    opts = DurabilityOptions(tmp_path, sync="batch", checkpoint_interval=2)
    with QueryServer(FIVM(database, query, FEATURES), durability=opts, readers=2) as server:
        for batch in batches[:3]:
            server.apply_batch(batch)
        before = server.statistics().value
        generations_before = server.manager.published_generations
        row = next(iter(database.relation("Inventory")))
        poison = batches[3][:5] + [Update("Inventory", row[:-1] + ("poison",), 1)]
        with pytest.raises(PoisonBatchError) as excinfo:
            server.apply_batch(poison)
        assert excinfo.value.seq == 3
        # Rolled back bit-identically; snapshot stream untouched.
        assert _payloads_equal(server.statistics().value, before)
        assert server.manager.published_generations == generations_before
        assert server.serving_stats()["quarantined_batches"] == 1
        # The writer is not wedged and later batches land on the recovered state.
        for batch in batches[3:]:
            server.apply_batch(batch)
        final = server.statistics().value
        reference = FIVM(database, query, FEATURES)
        for batch in batches:
            reference.apply_batch(batch)
        assert _payloads_equal(final, reference.statistics())


def test_server_quarantines_invalid_batch_without_durability():
    database, query = _server_source()
    with QueryServer(FIVM(database, query, FEATURES), readers=2) as server:
        server.apply_batch(random_update_stream(database, seed=33, length=40))
        before = server.statistics().value
        with pytest.raises(PoisonBatchError) as excinfo:
            server.apply_batch([Update("Inventory", (1,), 1)])
        assert excinfo.value.seq == -1
        assert _payloads_equal(server.statistics().value, before)
        stats = server.serving_stats()
        assert stats["quarantined_batches"] == 1
        assert stats["durability_enabled"] is False
        server.apply_batch(random_update_stream(database, seed=34, length=20))


def test_reader_exception_releases_pin_and_counts(tmp_path):
    """Satellite 3: a raising read must not leak its generation pin."""
    database, query = _server_source()
    from repro.aggregates import covariance_batch

    with QueryServer(FIVM(database, query, FEATURES), readers=2) as server:
        server.apply_batch(random_update_stream(database, seed=35, length=40))
        batch = covariance_batch(FEATURES, [])
        server.query(batch)  # warm: one healthy read
        baseline_active = server.manager.active_generations
        install_fault_plan(FaultPlan([FaultSpec("reader.query", at_call=1)]))
        with pytest.raises(FaultInjected):
            server.query(batch)
        clear_fault_plan()
        stats = server.serving_stats()
        assert stats["read_errors"] == 1
        # The pin was released in the finally: active generations unchanged,
        # and the writer can retire the generation by superseding it.
        assert server.manager.active_generations == baseline_active
        server.apply_batch(random_update_stream(database, seed=36, length=30))
        server.query(batch)
        assert server.manager.active_generations == 1
        assert server.serving_stats()["reads"] == 2


def test_server_recover_resumes_serving(tmp_path):
    database, query = _server_source()
    stream = random_update_stream(database, seed=39, length=120)
    opts = DurabilityOptions(tmp_path, sync="fsync", checkpoint_interval=3)
    with QueryServer(FIVM(database, query, FEATURES), durability=opts) as server:
        for start in range(0, len(stream), 20):
            server.apply_batch(stream[start : start + 20])
        expected = server.statistics().value
        prefix = server.prefix
    with QueryServer.recover(opts, readers=2) as revived:
        assert revived.prefix == prefix
        assert _payloads_equal(revived.statistics().value, expected)
        assert revived.serving_stats()["durability_enabled"] is True
        # And it keeps accepting writes.
        revived.apply_batch(random_update_stream(database, seed=40, length=20))
        assert revived.prefix == prefix + 1
