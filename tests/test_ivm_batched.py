"""Batched IVM maintenance and the delta-aware view cache (PR 3).

Covers the columnar delta path end-to-end: randomized insert/delete streams
(including multiplicities that cancel inside one batch and batches spanning
several relations) checked against full recomputation for all three
strategies and several batch sizes, the vectorised ring-block algebra, the
append-only delta column store, and the engine's delta-aware view cache
against full eviction.
"""

import random

import numpy as np
import pytest

from repro.aggregates import covariance_batch
from repro.aggregates.spec import Aggregate, AggregateBatch
from repro.data import Database, Relation, Schema
from repro.data.colstore import DeltaColumnStore
from repro.datasets import load_dataset, retailer_database, retailer_query
from repro.engine import EngineOptions, LMFAOEngine
from repro.ivm import FIVM, FirstOrderIVM, HigherOrderIVM, Update
from repro.rings.covariance import CovarianceBlock, CovarianceRing
from streams import random_update_stream

FEATURES = ["inventoryunits", "prize", "maxtemp"]
STRATEGIES = [FirstOrderIVM, HigherOrderIVM, FIVM]


@pytest.fixture(scope="module")
def ivm_source():
    database = retailer_database(inventory_rows=160, stores=4, items=8, dates=6, seed=21)
    return database, retailer_query()


def _payloads_match(left, right):
    return (
        np.isclose(left.count, right.count)
        and np.allclose(left.sums, right.sums)
        and np.allclose(left.moments, right.moments)
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("batch_size", [1, 7, 1000])
def test_batched_stream_matches_recomputation(ivm_source, strategy, batch_size):
    database, query = ivm_source
    stream = random_update_stream(database, seed=5, length=300)
    maintainer = strategy(database, query, FEATURES)
    for start in range(0, len(stream), batch_size):
        maintainer.apply_batch(stream[start : start + batch_size])
    assert _payloads_match(maintainer.statistics(), maintainer.recompute_statistics())


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_batched_equals_per_tuple(ivm_source, strategy):
    """The batched path lands on exactly the per-tuple result."""
    database, query = ivm_source
    stream = random_update_stream(database, seed=9, length=250)
    per_tuple = strategy(database, query, FEATURES)
    for update in stream:
        per_tuple.apply(update)
    batched = strategy(database, query, FEATURES)
    batched.apply_batch(stream)
    assert _payloads_match(per_tuple.statistics(), batched.statistics())
    assert per_tuple.database.relation("Inventory") == batched.database.relation("Inventory")


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_interleaved_batched_and_per_tuple(ivm_source, strategy):
    """Switching between apply() and apply_batch() maintains one shared state."""
    database, query = ivm_source
    stream = random_update_stream(database, seed=13, length=240)
    maintainer = strategy(database, query, FEATURES)
    cursor = 0
    rng = random.Random(3)
    while cursor < len(stream):
        if rng.random() < 0.5:
            maintainer.apply(stream[cursor])
            cursor += 1
        else:
            step = rng.choice([5, 17, 40])
            maintainer.apply_batch(stream[cursor : cursor + step])
            cursor += step
    assert _payloads_match(maintainer.statistics(), maintainer.recompute_statistics())


def test_cancelling_batch_is_a_noop(ivm_source):
    database, query = ivm_source
    maintainer = FIVM(database, query, FEATURES)
    warmup = random_update_stream(database, seed=2, length=80, delete_fraction=0.0,
                            cancel_fraction=0.0)
    maintainer.apply_batch(warmup)
    before = maintainer.statistics()
    row = next(iter(database.relation("Inventory")))
    maintainer.apply_batch(
        [Update("Inventory", row, 1), Update("Inventory", row, -1)] * 3
    )
    assert _payloads_match(maintainer.statistics(), before)
    assert _payloads_match(maintainer.statistics(), maintainer.recompute_statistics())


def test_update_arity_is_validated(ivm_source):
    database, query = ivm_source
    maintainer = FIVM(database, query, FEATURES)
    bad = Update("Inventory", (1, 2), 1)
    with pytest.raises(ValueError, match="arity"):
        maintainer.apply(bad)
    with pytest.raises(ValueError, match="Inventory"):
        maintainer.apply_batch([bad, bad])


def test_join_index_builds_from_column_store(ivm_source):
    from repro.ivm.base import JoinIndex

    database, query = ivm_source
    relation = database.relation("Inventory").copy()
    index = JoinIndex(relation, ["locn", "dateid"])
    assert not index.is_built
    # Lazily built from the cached column store, matching the relation.
    total = sum(
        multiplicity
        for bucket in index.buckets.values()
        for multiplicity in bucket.values()
    )
    assert index.is_built
    assert total == relation.total_multiplicity()
    sample = next(iter(relation))
    key = index.key_of(sample)
    assert sample in index.lookup(key)
    # Incremental adds keep it in sync; mark_stale rebuilds from the store.
    relation.add(sample, 1)
    index.add(sample, 1)
    assert index.lookup(key)[sample] == relation.multiplicity(sample)
    index.mark_stale()
    assert index.lookup(key)[sample] == relation.multiplicity(sample)


# -- ring blocks -----------------------------------------------------------------------


def test_covariance_block_matches_scalar_ring():
    rng = np.random.default_rng(7)
    ring = CovarianceRing(3)
    size = 13
    left = CovarianceBlock(
        rng.normal(size=size), rng.normal(size=(size, 3)), rng.normal(size=(size, 3, 3))
    )
    right = CovarianceBlock(
        rng.normal(size=size), rng.normal(size=(size, 3)), rng.normal(size=(size, 3, 3))
    )
    product = left.multiply(right)
    total = product.add(left).scale(rng.normal(size=size))
    for position in range(size):
        expected = ring.multiply(left.payload_at(position), right.payload_at(position))
        assert _payloads_match(product.payload_at(position), expected)
    codes = rng.integers(0, 4, size=size)
    summed = total.segment_sum(codes, 4)
    for code in range(4):
        expected = ring.zero()
        for position in np.nonzero(codes == code)[0]:
            expected = ring.add(expected, total.payload_at(int(position)))
        assert _payloads_match(summed.payload_at(code), expected)


def test_covariance_block_multiply_lifted_matches_general():
    rng = np.random.default_rng(11)
    size, dimension = 9, 4
    block = CovarianceBlock(
        rng.normal(size=size),
        rng.normal(size=(size, dimension)),
        rng.normal(size=(size, dimension, dimension)),
    )
    positions = [1, 3]
    features = np.zeros((size, dimension))
    for position in positions:
        features[:, position] = rng.normal(size=size)
    multiplicities = rng.integers(-2, 3, size=size).astype(float)
    fused = block.multiply_lifted(features, multiplicities, positions)
    general = block.multiply(CovarianceBlock.lift(features, multiplicities))
    assert np.allclose(fused.counts, general.counts)
    assert np.allclose(fused.sums, general.sums)
    assert np.allclose(fused.moments, general.moments)


# -- the delta column store ------------------------------------------------------------


def test_delta_column_store_appends_and_buckets():
    schema = Schema.from_names(["k", "x"], categorical_names=["k"])
    store = DeltaColumnStore("R", schema)
    store.register_float("x")
    store.register_key(("k",))
    store.append_rows([("a", 1.0), ("b", 2.0), ("a", 3.0)], [1, 1, 2])
    store.append_rows([("b", 4.0)], [-1])
    assert len(store) == 4
    assert np.allclose(store.float_column("x"), [1.0, 2.0, 3.0, 4.0])
    assert np.allclose(store.multiplicities, [1.0, 1.0, 2.0, -1.0])
    codes, keys = store.key_codes(("k",))
    assert keys == [("a",), ("b",)]
    assert codes.tolist() == [0, 1, 0, 1]
    offsets, positions = store.buckets_for(("k",), [("b",), ("missing",), ("a",)])
    assert offsets.tolist() == [0, 2, 2, 4]
    assert positions.tolist() == [1, 3, 0, 2]


def test_delta_column_store_requires_registration_before_append():
    schema = Schema.from_names(["k", "x"], categorical_names=["k"])
    store = DeltaColumnStore("R", schema)
    store.register_key(("k",))
    store.append_rows([("a", 1.0)], [1])
    with pytest.raises(ValueError, match="before the first append"):
        store.register_float("x")
    with pytest.raises(ValueError, match="before the first append"):
        store.register_key(("x",))
    # Re-registering an existing key is a no-op, not an error.
    store.register_key(("k",))


# -- change log ------------------------------------------------------------------------


def test_relation_change_log_reconstructs_small_deltas():
    relation = Relation("R", Schema.from_names(["a"], categorical_names=["a"]))
    start = relation.version
    relation.add(("x",), 1)
    relation.add(("y",), 2)
    relation.remove(("x",), 1)
    assert relation.changes_since(start) == [(("x",), 1), (("y",), 2), (("x",), -1)]
    assert relation.changes_since(relation.version) == []
    # Overflowing the bounded log drops coverage of old versions.
    for index in range(500):
        relation.add((f"v{index}",), 1)
    assert relation.changes_since(start) is None
    recent = relation.version
    relation.add(("z",), 1)
    assert relation.changes_since(recent) == [(("z",), 1)]
    relation.clear()
    assert relation.changes_since(recent) is None
    assert relation.changes_since(relation.version) == []


# -- the delta-aware view cache --------------------------------------------------------


def _values_match(left, right):
    # Relative tolerance: covariance sums reach ~1e12, where equivalent
    # computations that merely reorder float additions (root patching vs a
    # full recompute) differ by far more than any absolute epsilon.
    assert set(left) == set(right)
    for name in left:
        a, b = left[name], right[name]
        if isinstance(a, dict):
            keys = set(a) | set(b)
            assert all(
                np.isclose(a.get(k, 0.0), b.get(k, 0.0), rtol=1e-9, atol=1e-6)
                for k in keys
            ), name
        else:
            assert np.isclose(a, b, rtol=1e-9, atol=1e-6), name


@pytest.mark.parametrize("dataset", ["retailer", "yelp"])
def test_delta_refresh_matches_full_eviction(dataset):
    scales = {
        "retailer": dict(inventory_rows=400, stores=6, items=20, dates=10),
        "yelp": dict(review_rows=400, businesses=30, users=40),
    }
    database, query, spec = load_dataset(dataset, **scales[dataset])
    batch = covariance_batch(spec.continuous_features, spec.categorical_features)
    refresh = LMFAOEngine(database, query, EngineOptions(delta_refresh=True))
    evict = LMFAOEngine(database, query, EngineOptions(delta_refresh=False))
    refresh.evaluate(batch)
    evict.evaluate(batch)

    rng = random.Random(17)
    relations = list(query.relation_names)
    refreshed_total = 0
    for _step in range(12):
        name = rng.choice(relations)
        relation = database.relation(name)
        row = rng.choice(list(relation))
        sign = -1 if (rng.random() < 0.3 and relation.multiplicity(row) > 0) else 1
        relation.add(row, sign)
        left = refresh.evaluate(batch)
        right = evict.evaluate(batch)
        _values_match(left.values, right.values)
        refreshed_total += left.executor_stats.get("views_delta_refreshed", 0)
    # The refresh path must actually have engaged somewhere in the loop.
    assert refreshed_total > 0


def test_delta_refresh_counts_and_limit():
    database, query, spec = load_dataset(
        "retailer", inventory_rows=400, stores=6, items=20, dates=10
    )
    batch = covariance_batch(spec.continuous_features, spec.categorical_features)
    engine = LMFAOEngine(database, query, EngineOptions(delta_refresh=True))
    engine.evaluate(batch)
    fact = max(query.relation_names, key=lambda name: len(database.relation(name)))
    row = next(iter(database.relation(fact)))
    database.relation(fact).add(row, 1)
    result = engine.evaluate(batch)
    assert result.executor_stats.get("views_delta_refreshed", 0) > 0
    # A tiny limit disables the refresh path but stays correct.
    small = LMFAOEngine(
        database, query, EngineOptions(delta_refresh=True, delta_refresh_limit=0)
    )
    small.evaluate(batch)
    database.relation(fact).add(row, 1)
    limited = small.evaluate(batch)
    assert limited.executor_stats.get("views_delta_refreshed", 0) == 0
    _values_match(limited.values, engine.evaluate(batch).values)
    database.relation(fact).add(row, -2)


# -- batch-aware rooting ---------------------------------------------------------------


def test_cost_batch_rooting_matches_static_results():
    database, query, spec = load_dataset(
        "retailer", inventory_rows=400, stores=6, items=20, dates=10
    )
    narrow = AggregateBatch(
        "narrow",
        [
            Aggregate.count(),
            Aggregate.sum_of([spec.continuous_features[0]]),
            Aggregate.sum_of([spec.continuous_features[0]] * 2),
        ],
    )
    static = LMFAOEngine(database, query, EngineOptions(root_strategy="cost"))
    dynamic = LMFAOEngine(database, query, EngineOptions(root_strategy="cost-batch"))
    _values_match(static.evaluate(narrow).values, dynamic.evaluate(narrow).values)
    assert dynamic.root_choice is not None
    assert dynamic.root_choice.strategy == "cost-batch"
    assert dynamic.root_choice.costs  # per-candidate evidence is recorded

    full = covariance_batch(spec.continuous_features, spec.categorical_features)
    _values_match(static.evaluate(full).values, dynamic.evaluate(full).values)


def test_cost_batch_rerooting_differs_on_narrow_batches():
    database, query, spec = load_dataset(
        "retailer", inventory_rows=400, stores=6, items=20, dates=10
    )
    narrow = AggregateBatch(
        "narrow",
        [Aggregate.count(), Aggregate.sum_of([spec.continuous_features[0]])],
    )
    static = LMFAOEngine(database, query, EngineOptions(root_strategy="cost"))
    dynamic = LMFAOEngine(database, query, EngineOptions(root_strategy="cost-batch"))
    static.evaluate(narrow)
    dynamic.evaluate(narrow)
    assert dynamic.join_tree.root.relation_name != static.join_tree.root.relation_name

    full = covariance_batch(spec.continuous_features, spec.categorical_features)
    dynamic.evaluate(full)
    # Repeating a batch reuses the memoised rooting decision.
    before = dynamic.join_tree.root.relation_name
    dynamic.evaluate(full)
    assert dynamic.join_tree.root.relation_name == before


def test_invalid_root_strategy_is_rejected():
    database, query, _spec = load_dataset(
        "retailer", inventory_rows=50, stores=3, items=5, dates=4
    )
    with pytest.raises(ValueError, match="root_strategy"):
        LMFAOEngine(database, query, EngineOptions(root_strategy="bogus"))
    with pytest.raises(ValueError, match="root_strategy"):
        FIVM(database, query, FEATURES, root_strategy="bogus")
