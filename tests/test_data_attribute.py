"""Tests for schemas and attributes."""

import pytest

from repro.data.attribute import (
    Attribute,
    AttributeType,
    Schema,
    SchemaError,
    categorical,
    continuous,
)


def test_attribute_type_predicates():
    assert continuous("price").is_continuous
    assert not continuous("price").is_categorical
    assert categorical("city").is_categorical
    assert not categorical("city").is_continuous


def test_attribute_default_type_is_continuous():
    assert Attribute("x").attribute_type is AttributeType.CONTINUOUS


def test_schema_from_names_marks_categoricals():
    schema = Schema.from_names(["a", "b", "c"], categorical_names=["b"])
    assert schema.is_continuous("a")
    assert schema.is_categorical("b")
    assert schema.is_continuous("c")


def test_schema_from_names_rejects_unknown_categorical():
    with pytest.raises(SchemaError):
        Schema.from_names(["a", "b"], categorical_names=["z"])


def test_schema_rejects_duplicate_names():
    with pytest.raises(SchemaError):
        Schema.of(continuous("a"), categorical("a"))


def test_schema_lookup_and_indexing():
    schema = Schema.from_names(["a", "b", "c"])
    assert schema.index_of("b") == 1
    assert schema.indices_of(["c", "a"]) == (2, 0)
    assert schema.attribute("c").name == "c"
    assert "b" in schema
    assert "z" not in schema
    with pytest.raises(SchemaError):
        schema.index_of("z")


def test_schema_project_preserves_order_and_types():
    schema = Schema.from_names(["a", "b", "c"], categorical_names=["c"])
    projected = schema.project(["c", "a"])
    assert projected.names == ("c", "a")
    assert projected.is_categorical("c")


def test_schema_rename():
    schema = Schema.from_names(["a", "b"], categorical_names=["b"])
    renamed = schema.rename({"a": "x"})
    assert renamed.names == ("x", "b")
    assert renamed.is_categorical("b")


def test_schema_union_merges_shared_names_once():
    left = Schema.from_names(["a", "b"])
    right = Schema.from_names(["b", "c"])
    merged = left.union(right)
    assert merged.names == ("a", "b", "c")


def test_schema_union_rejects_conflicting_types():
    left = Schema.from_names(["a", "b"], categorical_names=["b"])
    right = Schema.from_names(["b", "c"])
    with pytest.raises(SchemaError):
        left.union(right)


def test_schema_common_names_in_left_order():
    left = Schema.from_names(["a", "b", "c"])
    right = Schema.from_names(["c", "a"])
    assert left.common_names(right) == ("a", "c")


def test_schema_iteration_and_len():
    schema = Schema.from_names(["a", "b", "c"])
    assert len(schema) == 3
    assert [attribute.name for attribute in schema] == ["a", "b", "c"]
