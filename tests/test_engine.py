"""Tests for the LMFAO-style engine: planning, sharing, correctness vs baseline."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import (
    Aggregate,
    AggregateBatch,
    Filter,
    FilterOp,
    InequalityCondition,
    covariance_batch,
)
from repro.data import Database, Relation, Schema
from repro.engine import EngineOptions, LMFAOEngine, MaterializedJoinEngine, plan_batch
from repro.engine.plan import designate_attributes
from repro.query import ConjunctiveQuery, build_join_tree


def _values_close(left, right, tolerance=1e-6):
    if isinstance(left, dict) or isinstance(right, dict):
        left = left if isinstance(left, dict) else {}
        right = right if isinstance(right, dict) else {}
        keys = set(left) | set(right)
        return all(
            math.isclose(left.get(key, 0.0), right.get(key, 0.0), rel_tol=1e-9, abs_tol=tolerance)
            for key in keys
        )
    return math.isclose(left, right, rel_tol=1e-9, abs_tol=tolerance)


def _assert_engines_agree(database, query, batch, options=None):
    lmfao = LMFAOEngine(database, query, options).evaluate(batch)
    naive = MaterializedJoinEngine(database, query).evaluate(batch)
    for name, value in lmfao.values.items():
        assert _values_close(value, naive.values[name]), f"aggregate {name} differs"
    return lmfao, naive


# -- planning -------------------------------------------------------------------------------------------


def test_designation_assigns_each_attribute_once(toy_database, toy_query):
    tree = build_join_tree(toy_query.hypergraph(toy_database), root="Orders")
    designation = designate_attributes(tree)
    assert set(designation) == set(toy_query.variables(toy_database))
    assert all(owner in toy_query.relation_names for owner in designation.values())


def test_plan_shares_views_across_aggregates(small_retailer, small_retailer_query):
    batch = covariance_batch(["inventoryunits", "prize", "maxtemp"], ["category"])
    tree = build_join_tree(
        small_retailer_query.hypergraph(small_retailer), root="Inventory"
    )
    shared = plan_batch(batch, tree, share_views=True)
    unshared = plan_batch(batch, tree, share_views=False)
    assert shared.total_views < unshared.total_views
    assert shared.sharing_factor() > 1.0
    assert shared.summary()["aggregates"] == len(batch)


def test_plan_rejects_unknown_attributes(toy_database, toy_query):
    tree = build_join_tree(toy_query.hypergraph(toy_database), root="Orders")
    batch = AggregateBatch("bad", [Aggregate.sum_of(["nonexistent"])])
    with pytest.raises(ValueError):
        plan_batch(batch, tree)


def test_plan_marks_inequality_aggregates_unsupported(toy_database, toy_query):
    tree = build_join_tree(toy_query.hypergraph(toy_database), root="Orders")
    aggregate = Aggregate(
        product=(), group_by=(), filters=(),
        inequality=InequalityCondition.of({"price": 1.0}, 3.0), name="violators",
    )
    plan = plan_batch(AggregateBatch("ineq", [aggregate]), tree)
    assert plan.unsupported == [aggregate]


# -- correctness against the materialised baseline ------------------------------------------------------------


def test_count_and_sums_match_naive(toy_database, toy_query):
    batch = AggregateBatch(
        "basic",
        [
            Aggregate.count(name="count"),
            Aggregate.sum_of(["price"], name="sum_price"),
            Aggregate.sum_of(["price", "price"], name="sum_price_sq"),
            Aggregate.count(group_by=["dish"], name="count_by_dish"),
            Aggregate.sum_of(["price"], group_by=["customer", "dish"], name="price_by_cust_dish"),
        ],
    )
    lmfao, _naive = _assert_engines_agree(toy_database, toy_query, batch)
    assert lmfao.scalar("count") == pytest.approx(12.0)
    assert lmfao.grouped("count_by_dish")[("burger",)] == pytest.approx(6.0)


def test_filters_match_naive(toy_database, toy_query):
    batch = AggregateBatch(
        "filtered",
        [
            Aggregate.sum_of(["price"], filters=[Filter("price", FilterOp.GE, 3)], name="expensive"),
            Aggregate.count(filters=[Filter("dish", FilterOp.EQ, "burger")], name="burgers"),
            Aggregate.count(
                filters=[Filter("day", FilterOp.NE, "Friday"), Filter("price", FilterOp.LT, 5)],
                name="cheap_not_friday",
            ),
        ],
    )
    _assert_engines_agree(toy_database, toy_query, batch)


def test_covariance_batch_matches_naive_on_retailer(small_retailer, small_retailer_query):
    batch = covariance_batch(
        ["inventoryunits", "prize", "maxtemp", "rain", "population"], ["category", "snow"]
    )
    lmfao, naive = _assert_engines_agree(small_retailer, small_retailer_query, batch)
    assert lmfao.views_computed > 0
    assert lmfao.plan_summary["sharing_factor"] > 1.0


def test_inequality_fallback_matches_naive(toy_database, toy_query):
    aggregate = Aggregate(
        product=("price",),
        group_by=("dish",),
        filters=(),
        inequality=InequalityCondition.of({"price": 1.0}, 2.0),
        name="pricey_by_dish",
    )
    batch = AggregateBatch("ineq", [aggregate])
    _assert_engines_agree(toy_database, toy_query, batch)


@pytest.mark.parametrize(
    "options",
    [
        EngineOptions(specialize=True, share=True, parallel=False),
        EngineOptions(specialize=True, share=False, parallel=False),
        EngineOptions(specialize=False, share=True, parallel=False),
        EngineOptions(specialize=False, share=False, parallel=False),
        EngineOptions(specialize=True, share=True, parallel=True, workers=2),
    ],
    ids=["fast", "no-share", "interpreted", "baseline", "parallel"],
)
def test_all_option_combinations_agree(toy_database, toy_query, options):
    batch = covariance_batch(["price"], ["dish", "day"])
    _assert_engines_agree(toy_database, toy_query, batch, options)


def test_engine_root_selection_defaults_to_widest_relation(small_retailer, small_retailer_query):
    engine = LMFAOEngine(small_retailer, small_retailer_query)
    assert engine.join_tree.root.relation_name in small_retailer_query.relation_names
    # Forcing the fact table as root must give the same results.
    forced = LMFAOEngine(
        small_retailer, small_retailer_query, EngineOptions(root_relation="Inventory")
    )
    batch = covariance_batch(["inventoryunits", "prize"], [])
    default_result = engine.evaluate(batch)
    forced_result = forced.evaluate(batch)
    for name in default_result.values:
        assert _values_close(default_result.values[name], forced_result.values[name])


def test_duplicate_aggregate_names_are_disambiguated(toy_database, toy_query):
    batch = AggregateBatch(
        "dups", [Aggregate.count(name="agg"), Aggregate.sum_of(["price"], name="agg")]
    )
    result = LMFAOEngine(toy_database, toy_query).evaluate(batch)
    assert "agg" in result.values and "agg#2" in result.values


def test_batch_result_accessors(toy_database, toy_query):
    batch = AggregateBatch(
        "accessors", [Aggregate.count(name="count"), Aggregate.count(group_by=["dish"], name="by_dish")]
    )
    result = LMFAOEngine(toy_database, toy_query).evaluate(batch)
    assert "count" in result
    with pytest.raises(TypeError):
        result.grouped("count")
    with pytest.raises(TypeError):
        result.scalar("by_dish")
    assert result.value_of(batch[0]) == result["count"]


def test_empty_relation_gives_zero_aggregates(toy_database, toy_query):
    empty = toy_database.copy()
    empty["Orders"].clear()
    batch = AggregateBatch(
        "empty", [Aggregate.count(name="count"), Aggregate.count(group_by=["dish"], name="by_dish")]
    )
    result = LMFAOEngine(empty, toy_query).evaluate(batch)
    assert result.scalar("count") == 0.0
    assert result.grouped("by_dish") == {}


def test_naive_engine_reports_join_statistics(toy_database, toy_query):
    engine = MaterializedJoinEngine(toy_database, toy_query)
    result = engine.evaluate(AggregateBatch("count", [Aggregate.count(name="count")]))
    assert result.join_rows == 12
    assert result.elapsed_seconds >= 0
    engine.invalidate()
    assert engine.materialize() is not None


# -- property-based: random batches over random data -----------------------------------------------------------


@st.composite
def random_star_database(draw):
    domain = st.integers(min_value=0, max_value=3)
    value = st.integers(min_value=-5, max_value=5)
    fact_rows = draw(
        st.lists(st.tuples(domain, domain, value), min_size=0, max_size=12)
    )
    dim1_rows = draw(st.lists(st.tuples(domain, value), min_size=0, max_size=5))
    dim2_rows = draw(st.lists(st.tuples(domain, value), min_size=0, max_size=5))
    database = Database(
        [
            Relation(
                "F",
                Schema.from_names(["k1", "k2", "m"], categorical_names=["k1", "k2"]),
                rows=fact_rows,
            ),
            Relation("D1", Schema.from_names(["k1", "x"], categorical_names=["k1"]), rows=dim1_rows),
            Relation("D2", Schema.from_names(["k2", "y"], categorical_names=["k2"]), rows=dim2_rows),
        ]
    )
    return database


@settings(max_examples=30, deadline=None)
@given(random_star_database())
def test_engine_matches_naive_on_random_star_queries(database):
    query = ConjunctiveQuery(["F", "D1", "D2"])
    batch = AggregateBatch(
        "random",
        [
            Aggregate.count(name="count"),
            Aggregate.sum_of(["m"], name="sum_m"),
            Aggregate.sum_of(["m", "x"], name="sum_mx"),
            Aggregate.sum_of(["x", "y"], name="sum_xy"),
            Aggregate.count(group_by=["k1"], name="count_k1"),
            Aggregate.sum_of(["y"], group_by=["k1", "k2"], name="sum_y_by_keys"),
            Aggregate.sum_of(["m"], filters=[Filter("x", FilterOp.GE, 0)], name="sum_m_xpos"),
        ],
    )
    lmfao = LMFAOEngine(database, query).evaluate(batch)
    naive = MaterializedJoinEngine(database, query).evaluate(batch)
    for name, value in lmfao.values.items():
        assert _values_close(value, naive.values[name]), name
