"""The perf-trajectory checker (tools/check_perf_trajectory.py)."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import check_perf_trajectory as cpt  # noqa: E402


def _report(tuples_per_s, scale="bench", batch_1=None):
    sizes = {"100": {"tuples_per_s": tuples_per_s}}
    if batch_1 is not None:
        sizes["1"] = {"tuples_per_s": batch_1}
    return {
        "figures": {
            f"ivm_throughput_{scale}": {
                "strategies": {"fivm": {"batch_sizes": sizes}}
            }
        }
    }


def test_check_series_passes_monotone_and_noise():
    assert cpt.check_series([(3, 100.0), (4, 200.0)], 0.75) == []
    # A dip inside the tolerance band passes ...
    assert cpt.check_series([(3, 100.0), (4, 80.0)], 0.75) == []
    # ... a real regression fails, against the best earlier figure.
    violations = cpt.check_series([(3, 100.0), (4, 200.0), (5, 120.0)], 0.75)
    assert len(violations) == 1 and "PR 5" in violations[0]


def test_missing_figures_are_skipped():
    assert cpt.fivm_batch_throughput({"figures": {}}, "bench", 100) is None
    assert cpt.fivm_batch_throughput(_report(123.0), "bench", 100) == 123.0


def test_main_on_fixture_directory(tmp_path):
    (tmp_path / "BENCH_PR1.json").write_text(json.dumps({"figures": {}}))
    (tmp_path / "BENCH_PR3.json").write_text(json.dumps(_report(100.0)))
    (tmp_path / "BENCH_PR4.json").write_text(json.dumps(_report(210.0)))
    assert cpt.main(["--root", str(tmp_path)]) == 0
    (tmp_path / "BENCH_PR5.json").write_text(json.dumps(_report(50.0)))
    assert cpt.main(["--root", str(tmp_path)]) == 1


def test_batch_1_series_is_checked_independently(tmp_path):
    """A regression on the per-tuple (batch-1) path fails even when the
    batched metric improves."""
    (tmp_path / "BENCH_PR4.json").write_text(
        json.dumps(_report(100.0, batch_1=20.0))
    )
    (tmp_path / "BENCH_PR5.json").write_text(
        json.dumps(_report(300.0, batch_1=5.0))
    )
    assert cpt.main(["--root", str(tmp_path)]) == 1
    (tmp_path / "BENCH_PR5.json").write_text(
        json.dumps(_report(300.0, batch_1=40.0))
    )
    assert cpt.main(["--root", str(tmp_path)]) == 0
    # Explicit single-batch selection keeps working.
    assert cpt.main(["--root", str(tmp_path), "--metric-batch", "100"]) == 0


def _rebaseline_report(ratios, baseline_pr=5):
    return {
        "figures": {
            "ivm_rebaseline_bench": {
                "baseline_pr": baseline_pr,
                "ratios": {size: ratio for size, ratio in ratios.items()},
            }
        }
    }


def test_rebaseline_ratios_are_gated(tmp_path):
    """A same-machine rebaseline ratio under tolerance fails the check."""
    good = _rebaseline_report({"1": 1.05, "100": 0.98})
    lines, violations = cpt.rebaseline_checks([(8, good)], 0.75)
    assert len(lines) == 2 and not violations

    bad = _rebaseline_report({"1": 0.5, "100": 1.1})
    _lines, violations = cpt.rebaseline_checks([(8, bad)], 0.75)
    assert len(violations) == 1 and "batch-1" in violations[0]

    (tmp_path / "BENCH_PR8.json").write_text(json.dumps(bad))
    assert cpt.main(["--root", str(tmp_path)]) == 1
    (tmp_path / "BENCH_PR8.json").write_text(json.dumps(good))
    assert cpt.main(["--root", str(tmp_path)]) == 0


def test_reports_without_rebaseline_are_untouched():
    assert cpt.rebaseline_checks([(5, _report(100.0))], 0.75) == ([], [])


def _durability_report(none_ratio, batch_ratio=0.85, fsync_ratio=0.4):
    return {
        "figures": {
            "durability_bench": {
                "sync_policies": {
                    "none": {"ratio_vs_no_journal": none_ratio},
                    "batch": {"ratio_vs_no_journal": batch_ratio},
                    "fsync": {"ratio_vs_no_journal": fsync_ratio},
                }
            }
        }
    }


def test_durability_none_ratio_is_gated(tmp_path):
    """sync='none' journaling must stay within 10% of no-journal; the
    flushing policies are reported but never gated."""
    good = _durability_report(0.95)
    lines, violations = cpt.durability_checks([(9, good)], 0.9)
    assert len(lines) == 3 and not violations

    bad = _durability_report(0.7)
    _lines, violations = cpt.durability_checks([(9, bad)], 0.9)
    assert len(violations) == 1 and "sync='none'" in violations[0]
    # An arbitrarily slow fsync policy alone never fails the gate.
    assert not cpt.durability_checks([(9, _durability_report(0.95, fsync_ratio=0.1))], 0.9)[1]

    (tmp_path / "BENCH_PR9.json").write_text(json.dumps(bad))
    assert cpt.main(["--root", str(tmp_path)]) == 1
    (tmp_path / "BENCH_PR9.json").write_text(json.dumps(good))
    assert cpt.main(["--root", str(tmp_path)]) == 0
    # The gate threshold is an option, like the trajectory tolerance.
    assert cpt.main(
        ["--root", str(tmp_path), "--durability-tolerance", "0.99"]
    ) == 1


def test_reports_without_durability_are_untouched():
    assert cpt.durability_checks([(5, _report(100.0))], 0.9) == ([], [])


def _sharding_report(shard1_ratio, shard2_ratio, mixed_shard2=0.5, pool=0.2):
    def entry(ratio):
        return {"ratio_vs_unsharded": ratio}

    return {
        "figures": {
            "sharding_bench": {
                "streams": {
                    "fact_only": {
                        "stream_length": 1499,
                        "unsharded_tuples_per_s": 100000.0,
                        "serial_shard1": entry(shard1_ratio),
                        "serial_shard2": entry(shard2_ratio),
                        "processpool_shard2": entry(pool),
                    },
                    "mixed": {
                        "stream_length": 1754,
                        "unsharded_tuples_per_s": 90000.0,
                        "serial_shard2": entry(mixed_shard2),
                    },
                }
            }
        }
    }


_SHARDING_FLOORS = {"serial_shard1": 0.9, "serial_shard2": 0.4}


def test_sharding_serial_ratios_are_gated(tmp_path):
    """The fact-only serial ratios gate at their floors; mixed-stream and
    processpool ratios are reported but never gated."""
    good = _sharding_report(0.95, 0.55)
    lines, violations = cpt.sharding_checks([(10, good)], _SHARDING_FLOORS)
    assert len(lines) == 4 and not violations

    bad_facade = _sharding_report(0.6, 0.55)
    _lines, violations = cpt.sharding_checks([(10, bad_facade)], _SHARDING_FLOORS)
    assert len(violations) == 1 and "serial_shard1" in violations[0]

    bad_scaleout = _sharding_report(0.95, 0.2)
    _lines, violations = cpt.sharding_checks([(10, bad_scaleout)], _SHARDING_FLOORS)
    assert len(violations) == 1 and "serial_shard2" in violations[0]

    # Arbitrarily slow mixed-stream or processpool figures never fail.
    slow_ungated = _sharding_report(0.95, 0.55, mixed_shard2=0.1, pool=0.01)
    assert not cpt.sharding_checks([(10, slow_ungated)], _SHARDING_FLOORS)[1]

    (tmp_path / "BENCH_PR10.json").write_text(json.dumps(bad_facade))
    assert cpt.main(["--root", str(tmp_path)]) == 1
    (tmp_path / "BENCH_PR10.json").write_text(json.dumps(good))
    assert cpt.main(["--root", str(tmp_path)]) == 0
    # The gate thresholds are options, like the other tolerances.
    assert cpt.main(
        ["--root", str(tmp_path), "--sharding-scaleout-tolerance", "0.6"]
    ) == 1


def test_reports_without_sharding_are_untouched():
    assert cpt.sharding_checks([(5, _report(100.0))], _SHARDING_FLOORS) == ([], [])


def test_main_on_repository_trajectory():
    """The committed BENCH_PR<n>.json files must satisfy the check."""
    assert cpt.main([]) == 0
