"""Tests for the end-to-end pipelines, the IFAQ compiler and the dataset generators."""

import numpy as np
import pytest

from repro.data import Database, Relation, Schema
from repro.datasets import DATASETS, load_dataset, orders_database, orders_query
from repro.ifaq import (
    BinOp,
    Const,
    DictOver,
    IterateLoop,
    Let,
    Lookup,
    OperationCounter,
    Record,
    SumOver,
    Var,
    compile_and_run,
    evaluate,
    factor_out_invariant,
    hoist_invariant_lets,
)
from repro.ifaq.transforms import specialize_field_access
from repro.pipelines import StructureAgnosticPipeline, StructureAwarePipeline
from repro.query import ConjunctiveQuery, is_acyclic


# -- pipelines ------------------------------------------------------------------------------------


def test_pipelines_produce_comparable_models(small_retailer, small_retailer_query):
    continuous = ["inventoryunits", "prize", "maxtemp", "rain"]
    categorical = ["category"]
    joined = small_retailer_query.evaluate(small_retailer)
    rows = [dict(zip(joined.schema.names, row)) for row in joined.sample_rows(150, seed=8)]

    aware = StructureAwarePipeline("inventoryunits", continuous, categorical, closed_form=True)
    aware_report = aware.run(small_retailer, small_retailer_query)
    agnostic = StructureAgnosticPipeline("inventoryunits", continuous, categorical, epochs=3)
    agnostic_report = agnostic.run(small_retailer, small_retailer_query)

    assert aware_report.aggregate_count > 0
    assert aware_report.sigma_dimension == 1 + 4 + 5
    assert agnostic_report.join_rows == len(joined)
    assert agnostic_report.data_matrix_shape[0] == len(joined)

    aware_rmse = aware.rmse(rows)
    agnostic_rmse = agnostic.rmse(rows)
    # The aggregate-trained model is at least as accurate as one-pass SGD.
    assert aware_rmse <= agnostic_rmse * 1.1
    assert aware_report.sigma_bytes < agnostic_report.data_matrix_bytes


def test_pipeline_stage_reports_are_complete(small_retailer, small_retailer_query):
    aware = StructureAwarePipeline("inventoryunits", ["inventoryunits", "prize"], [])
    report = aware.run(small_retailer, small_retailer_query)
    stages = dict(report.as_rows())
    assert set(stages) == {"query batch", "gradient descent", "total"}
    assert report.total_seconds == pytest.approx(
        report.batch_seconds + report.train_seconds
    )
    with pytest.raises(ValueError):
        StructureAwarePipeline("not_listed", ["prize"], [])


def test_structure_agnostic_requires_run_before_predict(small_retailer, small_retailer_query):
    pipeline = StructureAgnosticPipeline("inventoryunits", ["inventoryunits", "prize"], [])
    with pytest.raises(RuntimeError):
        pipeline.predict([{"prize": 1.0}])


# -- IFAQ interpreter -------------------------------------------------------------------------------


def test_ifaq_evaluation_of_sums_and_dicts():
    program = SumOver("x", Const({1: None, 2: None, 3: None}), BinOp("*", Var("x"), Const(2.0)))
    counter = OperationCounter()
    assert evaluate(program, {}, counter) == 12.0
    assert counter.arithmetic > 0

    dictionary = DictOver("k", Const(["a", "b"]), Const(1.0))
    assert evaluate(dictionary, {}) == {"a": 1.0, "b": 1.0}


def test_ifaq_record_access_counts_operations():
    record = Record({"x": 1.0, "y": 2.0})
    counter = OperationCounter()
    value = evaluate(Lookup(Var("r"), Const("y")), {"r": record}, counter)
    assert value == 2.0
    assert counter.dynamic_lookups == 1


def test_ifaq_let_and_loop():
    program = Let(
        "base",
        Const(10.0),
        IterateLoop("state", Const(0.0), 3, BinOp("+", Var("state"), Var("base"))),
    )
    counter = OperationCounter()
    assert evaluate(program, {}, counter) == 30.0
    assert counter.loop_iterations == 3


def test_ifaq_unbound_variable_raises():
    with pytest.raises(NameError):
        evaluate(Var("missing"), {})


def test_hoist_invariant_lets_moves_binding_out_of_loop():
    loop = IterateLoop(
        "state",
        Const(0.0),
        4,
        Let("c", Const(5.0), BinOp("+", Var("state"), Var("c"))),
    )
    hoisted = hoist_invariant_lets(loop)
    assert isinstance(hoisted, Let)
    assert isinstance(hoisted.body, IterateLoop)
    before, after = OperationCounter(), OperationCounter()
    assert evaluate(loop, {}, before) == evaluate(hoisted, {}, after)
    assert after.total <= before.total


def test_hoist_keeps_state_dependent_lets_inside():
    loop = IterateLoop(
        "state",
        Const(1.0),
        2,
        Let("c", BinOp("*", Var("state"), Const(2.0)), Var("c")),
    )
    assert isinstance(hoist_invariant_lets(loop), IterateLoop)


def test_factor_out_invariant_preserves_value():
    domain = Const({1: None, 2: None, 3: None})
    original = SumOver("x", domain, BinOp("*", Var("a"), Var("x")))
    factored = factor_out_invariant(original)
    assert isinstance(factored, BinOp) and factored.op == "*"
    environment = {"a": 4.0}
    before, after = OperationCounter(), OperationCounter()
    assert evaluate(original, environment, before) == evaluate(factored, environment, after)
    assert after.arithmetic < before.arithmetic


def test_specialize_field_access_changes_lookup_kind():
    record = Record({"u": 7.0, "v": 8.0})
    program = SumOver("x", Const([record]), Lookup(Var("x"), Const("v")))
    specialised = specialize_field_access(program, ["u", "v"], ["x"])
    before, after = OperationCounter(), OperationCounter()
    assert evaluate(program, {}, before) == evaluate(specialised, {}, after)
    assert after.dynamic_lookups < before.dynamic_lookups
    assert after.static_accesses > before.static_accesses


def test_ifaq_compilation_stages_agree(sri_database, sri_query):
    report = compile_and_run(sri_database, sri_query, iterations=8, learning_rate=1e-4)
    assert report.parameters_agree(1e-6)
    by_name = {outcome.name: outcome for outcome in report.stages}
    assert by_name["2_hoisted"].operations["total"] < by_name["0_naive"].operations["total"]
    assert not by_name["4_pushed_down"].needs_join
    assert by_name["0_naive"].needs_join
    assert report.join_size > 0
    table = report.operation_table()
    assert len(table) == 5


def test_ifaq_pushed_down_matches_engine_sigma(sri_database, sri_query):
    """The pushed-down M dictionary equals the engine's sigma entries."""
    from repro.ml import compute_sigma
    from repro.ifaq.gradient_program import pushed_down_program
    from repro.ifaq.gradient_program import relation_as_dictionary

    program = pushed_down_program(iterations=1, learning_rate=0.0)
    environment = {
        name: relation_as_dictionary(sri_database, name) for name in ("S", "R", "I")
    }
    # Evaluate only the M binding by digging into the Let structure.
    m_value = evaluate(program.bound, environment)
    sigma = compute_sigma(sri_database, sri_query, ["i", "s", "u", "c", "p"], [])
    for left in ("i", "s", "c", "p"):
        for right in ("i", "s", "c", "p"):
            assert m_value[left][right] == pytest.approx(sigma.entry(left, right))


# -- datasets ---------------------------------------------------------------------------------------


def test_toy_database_matches_paper_figures():
    database = orders_database()
    assert len(database["Orders"]) == 4
    assert len(database["Dish"]) == 6
    assert len(database["Items"]) == 4
    joined = orders_query().evaluate(database)
    assert len(joined) == 12


@pytest.mark.parametrize("name", list(DATASETS))
def test_dataset_generators_produce_acyclic_joinable_schemas(name):
    database, query, spec = load_dataset(name, **_small_scale(name))
    hypergraph = query.hypergraph(database)
    assert is_acyclic(hypergraph)
    joined = query.evaluate(database)
    assert len(joined) > 0
    # Every declared feature must occur in the join schema.
    for feature in spec.continuous_features + spec.categorical_features + [spec.target]:
        assert feature in joined.schema.names


def _small_scale(name):
    return {
        "retailer": dict(inventory_rows=200, stores=4, items=10, dates=5),
        "favorita": dict(sales_rows=200, stores=4, items=10, dates=8),
        "yelp": dict(review_rows=200, businesses=20, users=30),
        "tpcds": dict(sales_rows=200, items=15, customers=20, stores=4, dates=10),
    }[name]


def test_dataset_generation_is_deterministic():
    first = load_dataset("retailer", inventory_rows=100, stores=3, items=5, dates=4)[0]
    second = load_dataset("retailer", inventory_rows=100, stores=3, items=5, dates=4)[0]
    for relation in first:
        assert relation == second[relation.name]


def test_unknown_dataset_name_raises():
    with pytest.raises(KeyError):
        load_dataset("imaginary")
