"""Shared fixtures: small databases and queries used across the test suite."""

from __future__ import annotations

import pytest

from repro.data import Database, Relation, Schema
from repro.datasets import (
    favorita_database,
    favorita_query,
    orders_database,
    orders_query,
    retailer_database,
    retailer_query,
)
from repro.query import ConjunctiveQuery


@pytest.fixture()
def toy_database():
    """The Orders/Dish/Items database of Figure 7."""
    return orders_database()


@pytest.fixture()
def toy_query():
    return orders_query()


@pytest.fixture(scope="session")
def small_retailer():
    """A small retailer instance reused by engine/ML tests (read-only)."""
    return retailer_database(inventory_rows=400, stores=6, items=15, dates=8, seed=3)


@pytest.fixture(scope="session")
def small_retailer_query():
    return retailer_query()


@pytest.fixture(scope="session")
def small_favorita():
    return favorita_database(sales_rows=300, stores=6, items=20, dates=10, seed=5)


@pytest.fixture(scope="session")
def small_favorita_query():
    return favorita_query()


@pytest.fixture()
def sri_database():
    """The S(i,s,u) ⋈ R(s,c) ⋈ I(i,p) example of Section 5.3."""
    sales = Relation(
        "S",
        Schema.from_names(["i", "s", "u"]),
        rows=[
            (0, 0, 3.0), (0, 1, 4.0), (1, 0, 5.0), (1, 1, 6.5),
            (2, 0, 7.0), (2, 1, 8.5), (3, 0, 2.0), (3, 1, 9.0),
            (0, 0, 3.5), (1, 1, 6.0),
        ],
    )
    stores = Relation("R", Schema.from_names(["s", "c"]), rows=[(0, 10.0), (1, 12.5)])
    items = Relation(
        "I", Schema.from_names(["i", "p"]), rows=[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.5)]
    )
    return Database([sales, stores, items], name="sri")


@pytest.fixture()
def sri_query():
    return ConjunctiveQuery(["S", "R", "I"], name="Q")
