"""The array-native tuple store vs the old dict semantics.

Property-style suite: randomized insert/delete streams with cancelling
multiplicities are applied both to a :class:`~repro.data.relation.Relation`
(backed by :class:`~repro.data.tuplestore.TupleStore`) and to a plain
``dict[tuple, int]`` reference model, and every observable — netting,
deletion-to-zero, membership, totals, the change log, version bumps — must
agree.  Compaction and the zero-copy snapshot contract are covered
explicitly, and a regression test pins the headline storage claim: a full
IVM insert/delete stream never triggers a whole-relation re-encode
(``tuplestore_stats["full_encodes"] == 0``) on any of the three strategies.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Database, Relation, Schema
from repro.data.colstore import ColumnStore
from repro.data.tuplestore import (
    COMPACT_MIN_ZEROS,
    TupleStore,
    reset_tuplestore_stats,
    tuplestore_stats,
)
from streams import random_event_batches, random_row_events

SCHEMA = Schema.from_names(["k", "v"], categorical_names=["k"])


def _reference_apply(model, row, multiplicity):
    updated = model.get(row, 0) + multiplicity
    if updated == 0:
        model.pop(row, None)
    else:
        model[row] = updated


def _assert_matches_model(relation, model):
    assert len(relation) == len(model)
    assert relation.total_multiplicity() == sum(model.values())
    assert dict(relation.items()) == model
    assert set(relation) == set(model)
    for row, multiplicity in model.items():
        assert relation.multiplicity(row) == multiplicity
        assert row in relation


# -- randomized streams ----------------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_randomized_cancel_heavy_stream_matches_dict_model(seed):
    relation = Relation("R", SCHEMA)
    model: dict = {}
    for row, multiplicity in random_row_events(seed, length=600):
        _reference_apply(model, row, multiplicity)
        relation.add(row, multiplicity)
    _assert_matches_model(relation, model)


@pytest.mark.parametrize("seed", [3, 11])
def test_randomized_batches_match_dict_model(seed):
    relation = Relation("R", SCHEMA)
    model: dict = {}
    for rows, multiplicities in random_event_batches(seed, batches=40):
        for row, multiplicity in zip(rows, multiplicities):
            _reference_apply(model, row, multiplicity)
        relation.add_batch(rows, multiplicities)
        _assert_matches_model(relation, model)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=2),
            st.sampled_from([1, 1, -1, 2, -2]),
        ),
        max_size=60,
    )
)
def test_hypothesis_streams_net_like_a_dict(events):
    relation = Relation("R", Schema.from_names(["a", "b"]))
    model: dict = {}
    for a, b, multiplicity in events:
        row = (a, b)
        _reference_apply(model, row, multiplicity)
        relation.add(row, multiplicity)
    _assert_matches_model(relation, model)


# -- netting, compaction and snapshots -------------------------------------------------


def test_deletion_to_zero_leaves_no_observable_row():
    relation = Relation("R", SCHEMA)
    relation.add(("a", 1), 2)
    relation.add(("a", 1), -2)
    assert ("a", 1) not in relation
    assert len(relation) == 0
    assert list(relation.items()) == []
    # The columnar snapshot is dense: the cancelled row was compacted away.
    store = relation.column_store()
    assert store.row_count == 0


def test_compaction_triggers_and_preserves_content():
    relation = Relation("R", SCHEMA)
    store = relation._store
    count = COMPACT_MIN_ZEROS * 4
    rows = [(f"k{index}", index) for index in range(count)]
    relation.add_batch(rows, [1] * count)
    epoch = store.epoch
    version = relation.version
    survivors = {}
    deletions, kept = [], []
    for index, row in enumerate(rows):
        if index % 2:
            deletions.append(row)
        else:
            kept.append(row)
            survivors[row] = 1
    relation.add_batch(deletions, [-1] * len(deletions))
    # Half the rows are tombstones -> the store must have compacted.
    assert store.epoch > epoch
    assert store.zeros == 0
    assert store.row_count == len(kept)
    assert dict(relation.items()) == survivors
    # Compaction is physical only: exactly one logical version bump happened.
    assert relation.version == version + 1
    assert tuplestore_stats["compactions"] >= 1


def test_column_store_is_zero_copy_and_epoch_guarded():
    relation = Relation("R", SCHEMA, rows=[("a", 1), ("b", 2), ("a", 1)])
    store = relation.column_store()
    assert relation.column_store() is store           # cached while unchanged
    inner = relation._store
    assert np.shares_memory(
        store.multiplicities, inner.multiplicities_view()
    )
    assert np.shares_memory(
        store.encoding("v").codes, inner.column_codes_view(1)
    )
    # A mutation invalidates the wrapper; the replacement re-wraps the
    # (already encoded) arrays instead of re-encoding the relation.
    reset_tuplestore_stats()
    relation.add(("c", 3), 1)
    fresh = relation.column_store()
    assert fresh is not store
    assert fresh.row_count == len(relation)
    assert tuplestore_stats["full_encodes"] == 0
    # Compaction alone (same version) also invalidates via the epoch guard.
    relation.add(("c", 3), -1)
    assert relation.cached_column_store() is None


def test_snapshot_codes_round_trip_after_mixed_mutations():
    relation = Relation("R", SCHEMA)
    rng = random.Random(5)
    model: dict = {}
    for _ in range(300):
        row = (f"k{rng.randint(0, 9)}", rng.randint(0, 3))
        multiplicity = rng.choice([1, 1, -1])
        _reference_apply(model, row, multiplicity)
        relation.add(row, multiplicity)
        if rng.random() < 0.1:
            store = relation.column_store()
            codes, keys = store.codes_for(("k", "v"))
            decoded = {}
            for position, code in enumerate(codes.tolist()):
                decoded_row = keys[code]
                decoded[decoded_row] = decoded.get(decoded_row, 0) + int(
                    store.multiplicities[position]
                )
            assert decoded == model


def test_distinct_count_ignores_dictionary_ghosts():
    """Values surviving only in the (append-only) dictionary don't count."""
    relation = Relation("R", SCHEMA)
    relation.add(("a", 1), 1)
    relation.add(("b", 2), 1)
    relation.column_store()          # encode both rows
    relation.add(("b", 2), -1)       # tombstone -> "b"/2 stay in dictionaries
    store = relation.column_store()
    assert store.distinct_count(("k",)) == 1
    assert store.distinct_count(("k", "v")) == 1


# -- version bumps and the change log --------------------------------------------------


def test_version_bumps_once_per_mutation_group():
    relation = Relation("R", SCHEMA)
    version = relation.version
    relation.add(("a", 1), 1)
    assert relation.version == version + 1
    relation.add_batch([("b", 1), ("c", 1)], [1, 1])
    assert relation.version == version + 2
    relation.clear()
    assert relation.version == version + 3


def test_change_log_slices_record_pure_appends():
    relation = Relation("R", SCHEMA)
    start = relation.version
    relation.add_batch([("a", 1), ("b", 2)], [1, 2])
    log = relation._store._log
    assert len(log) == 1 and log[0].is_slice
    assert relation.changes_since(start) == [(("a", 1), 1), (("b", 2), 2)]


def test_change_log_slice_survives_netting_elsewhere():
    """Netting below the slice floor must not disturb slice decoding."""
    relation = Relation("R", SCHEMA)
    relation.add(("a", 1), 5)                      # slot 0, pair group
    start = relation.version
    relation.add_batch([("b", 2), ("c", 3)], [1, 2])   # slots 1-2, slice group
    relation.add(("a", 1), -2)                     # nets slot 0 (< slice floor)
    assert relation.changes_since(start) == [
        (("b", 2), 1),
        (("c", 3), 2),
        (("a", 1), -2),
    ]


def test_change_log_slice_materialises_when_its_slot_nets():
    """Netting into a sliced slot converts the slice to explicit pairs."""
    relation = Relation("R", SCHEMA)
    start = relation.version
    relation.add_batch([("a", 1), ("b", 2)], [1, 2])
    relation.add(("a", 1), 4)                      # nets into the sliced slot
    assert relation.changes_since(start) == [
        (("a", 1), 1),
        (("b", 2), 2),
        (("a", 1), 4),
    ]
    # The in-place multiplicity (5) must not leak into the logged delta (1).
    assert relation.multiplicity(("a", 1)) == 5


def test_change_log_coverage_drops_on_overflow_and_clear():
    relation = Relation("R", SCHEMA)
    start = relation.version
    for index in range(200):
        relation.add((f"k{index}", index), 1)
    assert relation.changes_since(start) is None   # bounded log rolled over
    recent = relation.version
    relation.add(("fresh", 0), 1)
    assert relation.changes_since(recent) == [(("fresh", 0), 1)]
    relation.clear()
    assert relation.changes_since(recent) is None


def test_compaction_preserves_change_log_contents():
    relation = Relation("R", SCHEMA)
    count = COMPACT_MIN_ZEROS * 4
    rows = [(f"k{index}", index) for index in range(count)]
    relation.add_batch(rows, [1] * count)
    start = relation.version
    relation.add(("extra", 1), 1)
    epoch = relation._store.epoch
    # Delete enough rows to force a compaction (slots move under the log)
    # while staying below the log's own group-size coverage limit.
    victims = rows[: COMPACT_MIN_ZEROS + 6]
    relation.add_batch(victims, [-1] * len(victims))
    assert relation._store.epoch > epoch
    assert relation.changes_since(start) == [(("extra", 1), 1)] + [
        (row, -1) for row in victims
    ]


# -- round trips -----------------------------------------------------------------------


def test_from_rows_round_trip_through_delta_store():
    rows = [("a", 1), ("b", 2), ("a", 3)]
    multiplicities = np.asarray([2.0, -1.0, 1.0])
    store = ColumnStore.from_rows("D", SCHEMA, rows, multiplicities)
    assert store.row_count == 3
    assert store.rows == rows
    assert np.allclose(store.multiplicities, multiplicities)
    codes, keys = store.codes_for(("k", "v"))
    rebuilt = {}
    for position, code in enumerate(codes.tolist()):
        key = keys[code]
        rebuilt[key] = rebuilt.get(key, 0.0) + float(store.multiplicities[position])
    assert rebuilt == {("a", 1): 2.0, ("b", 2): -1.0, ("a", 3): 1.0}


def test_relation_constructors_round_trip():
    by_rows = Relation("R", SCHEMA, rows=[("a", 1), ("b", 2), ("a", 1)])
    by_mults = Relation("R", SCHEMA, multiplicities={("a", 1): 2, ("b", 2): 1})
    by_columns = Relation.from_columns(
        "R", SCHEMA, {"k": ["a", "b", "a"], "v": [1, 2, 1]}
    )
    assert by_rows == by_mults == by_columns
    clone = by_rows.copy("Clone")
    assert clone == by_rows
    clone.add(("c", 9))
    assert clone != by_rows


def test_store_copy_is_independent():
    store = TupleStore(SCHEMA)
    store.add(("a", 1), 2)
    clone = store.copy()
    clone.add(("a", 1), -2)
    assert store.multiplicity(("a", 1)) == 2
    assert clone.multiplicity(("a", 1)) == 0


# -- deterministic canonical orders ----------------------------------------------------


def test_expanded_and_sampled_rows_ignore_insertion_history():
    straight = Relation("R", SCHEMA, rows=[("a", 1), ("b", 2), ("c", 3)])
    detoured = Relation("R", SCHEMA)
    # Same multiset via a different history: extra rows inserted and
    # cancelled, survivors inserted in reverse order.
    detoured.add(("z", 9), 1)
    for row in [("c", 3), ("b", 2), ("a", 1)]:
        detoured.add(row, 1)
    detoured.add(("z", 9), -1)
    assert list(straight.expanded_rows()) == list(detoured.expanded_rows())
    assert straight.sample_rows(2, seed=3) == detoured.sample_rows(2, seed=3)


# -- the headline storage regression ---------------------------------------------------


def test_ivm_streams_never_full_encode():
    """An insert/delete IVM stream runs end-to-end without one whole-relation
    re-encode, on all three strategies (tuplestore_stats["full_encodes"])."""
    from repro.datasets import retailer_database, retailer_query
    from repro.ivm import FIVM, FirstOrderIVM, HigherOrderIVM, Update

    database = retailer_database(inventory_rows=150, stores=4, items=10, dates=6, seed=3)
    query = retailer_query()
    features = ["inventoryunits", "prize", "maxtemp"]
    inserts = [
        Update(relation.name, row, 1) for relation in database for row in relation
    ]
    random.Random(17).shuffle(inserts)
    deletes = [Update(u.relation_name, u.row, -1) for u in inserts[::2]]
    for strategy in (FIVM, FirstOrderIVM, HigherOrderIVM):
        maintainer = strategy(database, query, features)
        reset_tuplestore_stats()
        for update in inserts[: len(inserts) // 2]:          # per-tuple path
            maintainer.apply(update)
        maintainer.apply_batch(inserts[len(inserts) // 2 :])  # batched path
        maintainer.apply_batch(deletes)                       # cancelling deltas
        assert tuplestore_stats["full_encodes"] == 0, strategy.__name__
        reference = maintainer.recompute_statistics()
        maintained = maintainer.statistics()
        assert np.isclose(maintained.count, reference.count)
        assert np.allclose(maintained.sums, reference.sums)
        assert np.allclose(maintained.moments, reference.moments)
