"""The sharding suite: routing determinism, merge correctness, executors.

The load-bearing claims, each pinned here:

- **Equivalence** — a :class:`ShardedMaintainer` over 1/2/8 shards replaying
  randomized cancel-heavy multi-relation streams (``tests/streams.py``)
  matches the unsharded maintainer's root payload under the documented
  float-tolerance contract (1 shard and serial-vs-processpool are bitwise).
- **Routing determinism** — placement is a pure function of the shard-key
  values: stable across calls, processes (no builtin ``hash``), and between
  the per-row and the vectorised per-dictionary-code paths; a hypothesis
  invariant checks a netted batch never splits one key across shards.
- **Process-pool contract** — each worker receives its maintainer exactly
  once (``maintainer_ships``), then only netted delta groups per batch.
- **Aggregation** — per-shard kernel/executor counters sum into
  ``executor_stats``; ``serving_stats()`` gains the sharding block.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import covariance_batch
from repro.datasets import RETAILER_FEATURES, retailer_database, retailer_query
from repro.datasets._synthetic import ZipfSampler, skewed_update_stream
from repro.ivm import FIVM
from repro.kernels import enable_kernel_stats, reset_kernel_stats
from repro.serving import QueryServer
from repro.sharding import ShardedMaintainer, ShardRouter, merge_payloads, stable_hash
from streams import random_update_stream

FEATURES = RETAILER_FEATURES["continuous"]


@pytest.fixture(scope="module")
def retailer_source():
    database = retailer_database(inventory_rows=300, stores=5, items=12, dates=6, seed=7)
    return database, retailer_query()


def _payloads_close(left, right):
    # The documented float-tolerance contract (docs/architecture.md): the
    # sharded merge reassociates float additions, so equivalence is relative
    # tolerance, not bitwise.
    assert np.isclose(left.count, right.count, rtol=1e-9, atol=1e-6)
    assert np.allclose(left.sums, right.sums, rtol=1e-9, atol=1e-6)
    assert np.allclose(left.moments, right.moments, rtol=1e-9, atol=1e-6)


def _payloads_identical(left, right):
    return (
        left.count == right.count
        and np.array_equal(left.sums, right.sums)
        and np.array_equal(left.moments, right.moments)
    )


def _replay(maintainer, stream, batch_size=60):
    for start in range(0, len(stream), batch_size):
        maintainer.apply_batch(stream[start : start + batch_size])


# -- equivalence: sharded vs unsharded on cancel-heavy streams -------------------------


@pytest.mark.parametrize("shards", [1, 2, 8])
@pytest.mark.parametrize("executor", ["serial", "processpool"])
def test_sharded_matches_unsharded(retailer_source, shards, executor):
    database, query = retailer_source
    stream = random_update_stream(
        database, seed=101 + shards, length=600, delete_fraction=0.35, cancel_fraction=0.25
    )
    plain = FIVM(database, query, FEATURES, root_strategy="largest")
    _replay(plain, stream)
    with ShardedMaintainer(
        database, query, FEATURES, shards=shards, executor=executor
    ) as sharded:
        _replay(sharded, stream)
        merged = sharded.statistics()
        _payloads_close(merged, plain.statistics())
        # The facade's base-relation copy tracks the same netted groups, so
        # its from-scratch recompute agrees too.
        _payloads_close(merged, sharded.recompute_statistics())
        if shards == 1:
            # One shard applies exactly the groups the unsharded maintainer
            # applies, in the same order: bitwise, not just tolerance.
            assert _payloads_identical(
                sharded.shard_statistics()[0], plain.statistics()
            )


def test_processpool_bitwise_matches_serial(retailer_source):
    """Same shards, same routed groups, same kernels — modes agree bitwise."""
    database, query = retailer_source
    stream = random_update_stream(database, seed=5, length=400, delete_fraction=0.4)
    serial = ShardedMaintainer(database, query, FEATURES, shards=2)
    _replay(serial, stream)
    with ShardedMaintainer(
        database, query, FEATURES, shards=2, executor="processpool"
    ) as pooled:
        _replay(pooled, stream)
        assert _payloads_identical(pooled.statistics(), serial.statistics())
        for left, right in zip(pooled.shard_statistics(), serial.shard_statistics()):
            assert _payloads_identical(left, right)


def test_processpool_ships_maintainer_once(retailer_source):
    database, query = retailer_source
    stream = random_update_stream(database, seed=9, length=300)
    with ShardedMaintainer(
        database, query, FEATURES, shards=2, executor="processpool"
    ) as pooled:
        assert pooled.sharding_stats()["maintainer_ships"] == 2
        _replay(pooled, stream, batch_size=50)
        stats = pooled.sharding_stats()
        # Warm-up shipped each maintainer exactly once; every batch after
        # that travelled as netted delta groups only.
        assert stats["maintainer_ships"] == 2
        assert stats["group_messages"] >= len(stream) // 50
        assert sum(stats["fact_rows_per_shard"]) == len(
            pooled.database.relation(pooled.fact_relation)
        )


# -- routing determinism ---------------------------------------------------------------


def test_routing_is_deterministic_and_matches_vectorised_path(retailer_source):
    database, query = retailer_source
    fact = database.relation("Inventory")
    router = ShardRouter(4, "Inventory", ("locn",), fact.schema.indices_of(("locn",)))
    rows = fact.rows()
    first = [router.shard_of_row(row) for row in rows]
    assert first == [router.shard_of_row(row) for row in rows]
    # The vectorised per-dictionary-code assignment agrees row for row with
    # the per-row hash (post-compaction storage order == rows() order here).
    assignments = router.partition_assignments(fact)
    assert assignments.tolist() == first
    # And stable_hash itself is salt-free: fixed reference values pin it.
    assert stable_hash(1) == stable_hash(True) == stable_hash(1.0)
    assert stable_hash("1") != stable_hash(1)


def test_partition_database_is_a_disjoint_fact_union(retailer_source):
    database, query = retailer_source
    fact = database.relation("Inventory")
    router = ShardRouter(3, "Inventory", ("locn",), fact.schema.indices_of(("locn",)))
    shards = router.partition_database(database)
    assert len(shards) == 3
    recombined: dict = {}
    for shard_id, shard in enumerate(shards):
        part = shard.relation("Inventory")
        for row, multiplicity in part.items():
            assert router.shard_of_row(row) == shard_id
            assert row not in recombined, "fact row landed on two shards"
            recombined[row] = multiplicity
        # Dimension tables are replicated verbatim.
        for name in database.relation_names:
            if name != "Inventory":
                assert shard.relation(name) == database.relation(name)
    assert recombined == dict(fact.items())


@settings(deadline=None, max_examples=60)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=60),
    shards=st.integers(min_value=1, max_value=7),
    data=st.data(),
)
def test_routing_never_splits_a_key_across_shards(keys, shards, data):
    """Re-routing a netted batch keeps every shard-key value on one shard."""
    router = ShardRouter(shards, "F", ("k",), (0,))
    rows = [
        (key, data.draw(st.integers(min_value=0, max_value=3), label="v"))
        for key in keys
    ]
    netted = [data.draw(st.sampled_from([-2, -1, 1, 2]), label="m") for _ in rows]
    groups = [("F", rows, netted), ("D", [(1, 2)], [1])]
    per_shard = router.route_groups(groups)
    assert len(per_shard) == shards
    key_home: dict = {}
    seen_rows = 0
    for shard_id, shard_groups in enumerate(per_shard):
        # The dimension group replicates to every shard, by reference.
        dims = [group for group in shard_groups if group[0] == "D"]
        assert len(dims) == 1 and dims[0] is groups[1]
        for name, shard_rows, shard_netted in shard_groups:
            if name != "F":
                continue
            assert len(shard_rows) == len(shard_netted)
            seen_rows += len(shard_rows)
            for row in shard_rows:
                home = key_home.setdefault(row[0], shard_id)
                assert home == shard_id, f"key {row[0]} split across shards"
    assert seen_rows == len(rows)


# -- merge -----------------------------------------------------------------------------


def test_merge_payloads_is_the_ring_sum(retailer_source):
    database, query = retailer_source
    maintainer = ShardedMaintainer(database, query, FEATURES, shards=3)
    _replay(maintainer, random_update_stream(database, seed=21, length=300))
    parts = maintainer.shard_statistics()
    expected = maintainer.ring.zero()
    for part in parts:
        expected = maintainer.ring.add(expected, part)
    merged = merge_payloads(parts, maintainer.ring)
    _payloads_close(merged, expected)


# -- stats aggregation -----------------------------------------------------------------


def test_executor_stats_sum_per_shard_counters(retailer_source):
    database, query = retailer_source
    reset_kernel_stats()
    enable_kernel_stats()
    try:
        sharded = ShardedMaintainer(database, query, FEATURES, shards=2)
        _replay(sharded, random_update_stream(database, seed=33, length=300))
        aggregated = sharded.executor_stats
        per_shard = sharded._executor.executor_stats()
        assert aggregated["delta_passes"] == sum(
            stats.get("delta_passes", 0) for stats in per_shard
        )
        kernel_keys = [key for key in aggregated if key.startswith("kernel_")]
        assert kernel_keys, "kernel counters were dropped by the aggregation"
        for key in kernel_keys:
            assert aggregated[key] == sum(stats.get(key, 0) for stats in per_shard)
        assert aggregated["routed_batches"] > 0
        assert aggregated["routed_fact_rows"] > 0
    finally:
        enable_kernel_stats(False)
        reset_kernel_stats()


def test_serving_stats_sharding_block(retailer_source):
    database, query = retailer_source
    stream = random_update_stream(database, seed=44, length=200)
    maintainer = ShardedMaintainer(database, query, FEATURES, shards=2)
    plain = FIVM(database, query, FEATURES, root_strategy="largest")
    with QueryServer(maintainer, readers=2) as server:
        for start in range(0, len(stream), 50):
            server.apply_batch(stream[start : start + 50])
            plain.apply_batch(stream[start : start + 50])
        read = server.statistics()
        _payloads_close(read.value, plain.statistics())
        # Ad-hoc aggregate reads evaluate against the facade's base copy.
        query_read = server.query(covariance_batch(FEATURES[:3]))
        assert query_read.value
        block = server.serving_stats()
    sharding = block["sharding"]
    assert sharding["shard_count"] == 2
    assert sharding["executor"] == "serial"
    assert len(sharding["fact_rows_per_shard"]) == 2
    assert sharding["imbalance"] >= 1.0
    assert sharding["maintainer_ships"] == 0


# -- lifecycle / contract edges --------------------------------------------------------


def test_serial_sharded_maintainer_pickles(retailer_source):
    database, query = retailer_source
    maintainer = ShardedMaintainer(database, query, FEATURES, shards=2)
    _replay(maintainer, random_update_stream(database, seed=55, length=200))
    clone = pickle.loads(pickle.dumps(maintainer))
    assert _payloads_identical(clone.statistics(), maintainer.statistics())
    extra = random_update_stream(database, seed=56, length=100)
    maintainer.apply_batch(extra)
    clone.apply_batch(extra)
    assert _payloads_identical(clone.statistics(), maintainer.statistics())


def test_processpool_maintainer_refuses_pickle(retailer_source):
    database, query = retailer_source
    with ShardedMaintainer(
        database, query, FEATURES, shards=2, executor="processpool"
    ) as pooled:
        with pytest.raises(TypeError, match="serial"):
            pickle.dumps(pooled)


def test_bad_configuration_raises(retailer_source):
    database, query = retailer_source
    with pytest.raises(ValueError, match="shards"):
        ShardedMaintainer(database, query, FEATURES, shards=0)
    with pytest.raises(ValueError, match="executor"):
        ShardedMaintainer(database, query, FEATURES, executor="threads")
    with pytest.raises(ValueError, match="shard key"):
        ShardedMaintainer(database, query, FEATURES, shard_key=("nope",))


# -- synthetic skew knobs --------------------------------------------------------------


def test_zipf_sampler_is_skewed_and_deterministic():
    import random

    draws_a = [ZipfSampler(50, 1.4, random.Random(3)).sample() for _ in range(500)]
    draws_b = [ZipfSampler(50, 1.4, random.Random(3)).sample() for _ in range(500)]
    assert draws_a == draws_b
    top_share = draws_a.count(0) / len(draws_a)
    assert top_share > 0.2, f"rank 0 drew only {top_share:.0%} under alpha=1.4"
    uniform = [ZipfSampler(50, 0.0, random.Random(3)).sample() for _ in range(500)]
    assert uniform.count(0) / len(uniform) < top_share


def test_skewed_stream_imbalances_shards(retailer_source):
    database, query = retailer_source
    skewed = skewed_update_stream(
        database, "Inventory", length=400, seed=8,
        key_attributes=("locn",), skew_alpha=1.5, delete_fraction=0.2,
    )
    uniform = skewed_update_stream(
        database, "Inventory", length=400, seed=8,
        key_attributes=("locn",), skew_alpha=0.0, delete_fraction=0.2,
    )
    def imbalance(stream):
        maintainer = ShardedMaintainer(
            database, query, FEATURES, shards=4, shard_key=("locn",)
        )
        _replay(maintainer, stream)
        return maintainer.sharding_stats()["imbalance"]

    assert imbalance(skewed) > imbalance(uniform)


def test_skewed_stream_mixes_deletes_and_dimensions(retailer_source):
    database, query = retailer_source
    stream = skewed_update_stream(
        database, "Inventory", length=300, seed=12,
        skew_alpha=1.0, delete_fraction=0.5, dimension_fraction=0.3, fanout=3,
    )
    assert len(stream) == 300
    names = {update.relation_name for update in stream}
    assert "Inventory" in names and len(names) > 1
    assert any(update.multiplicity < 0 for update in stream)
    # The stream replays cleanly through a sharded maintainer and matches
    # the unsharded result (delete-heavy netting included).
    plain = FIVM(database, query, FEATURES, root_strategy="largest")
    sharded = ShardedMaintainer(database, query, FEATURES, shards=2)
    _replay(plain, stream)
    _replay(sharded, stream)
    _payloads_close(sharded.statistics(), plain.statistics())
