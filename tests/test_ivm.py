"""Tests for the three IVM strategies: correctness under inserts and deletes."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Database, Relation, Schema
from repro.datasets import retailer_database, retailer_query
from repro.ivm import FIVM, FirstOrderIVM, HigherOrderIVM, Update
from repro.query import ConjunctiveQuery

FEATURES = ["inventoryunits", "prize", "maxtemp"]
STRATEGIES = [FirstOrderIVM, HigherOrderIVM, FIVM]


@pytest.fixture(scope="module")
def ivm_source():
    database = retailer_database(inventory_rows=120, stores=4, items=8, dates=5, seed=9)
    return database, retailer_query()


def _stream_from(database, per_relation=40, seed=1):
    updates = []
    for relation in database:
        for row in list(relation)[:per_relation]:
            updates.append(Update(relation.name, row, 1))
    random.Random(seed).shuffle(updates)
    return updates


def _payloads_match(left, right):
    return (
        np.isclose(left.count, right.count)
        and np.allclose(left.sums, right.sums)
        and np.allclose(left.moments, right.moments)
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_insert_stream_matches_recomputation(ivm_source, strategy):
    database, query = ivm_source
    maintainer = strategy(database, query, FEATURES)
    maintainer.apply_batch(_stream_from(database))
    assert _payloads_match(maintainer.statistics(), maintainer.recompute_statistics())


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_deletes_are_handled_uniformly(ivm_source, strategy):
    database, query = ivm_source
    maintainer = strategy(database, query, FEATURES)
    stream = _stream_from(database)
    maintainer.apply_batch(stream)
    # Delete a third of what was inserted, in a different order.
    deletions = [Update(update.relation_name, update.row, -1) for update in stream[::3]]
    random.Random(3).shuffle(deletions)
    maintainer.apply_batch(deletions)
    assert _payloads_match(maintainer.statistics(), maintainer.recompute_statistics())


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_empty_database_has_zero_statistics(ivm_source, strategy):
    database, query = ivm_source
    maintainer = strategy(database, query, FEATURES)
    payload = maintainer.statistics()
    assert payload.count == 0
    assert np.allclose(payload.sums, 0.0)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_insert_then_full_delete_returns_to_zero(ivm_source, strategy):
    database, query = ivm_source
    maintainer = strategy(database, query, FEATURES)
    stream = _stream_from(database, per_relation=15)
    maintainer.apply_batch(stream)
    maintainer.apply_batch([Update(u.relation_name, u.row, -1) for u in reversed(stream)])
    payload = maintainer.statistics()
    assert payload.count == pytest.approx(0.0)
    assert np.allclose(payload.sums, 0.0, atol=1e-6)
    assert np.allclose(payload.moments, 0.0, atol=1e-6)


def test_all_strategies_agree_with_each_other(ivm_source):
    database, query = ivm_source
    stream = _stream_from(database, per_relation=30, seed=5)
    payloads = []
    for strategy in STRATEGIES:
        maintainer = strategy(database, query, FEATURES)
        maintainer.apply_batch(stream)
        payloads.append(maintainer.statistics())
    assert _payloads_match(payloads[0], payloads[1])
    assert _payloads_match(payloads[1], payloads[2])


def test_fivm_views_stay_small(ivm_source):
    database, query = ivm_source
    maintainer = FIVM(database, query, FEATURES)
    maintainer.apply_batch(_stream_from(database))
    sizes = maintainer.view_sizes()
    # Payload views are keyed by join keys, never by full tuples.
    assert all(size <= len(database.relation(name)) + 1 for name, size in sizes.items())


def test_higher_order_materializes_join_view(ivm_source):
    database, query = ivm_source
    maintainer = HigherOrderIVM(database, query, FEATURES)
    maintainer.apply_batch(_stream_from(database))
    assert maintainer.materialized_view_size() > 0


def test_unknown_feature_is_rejected(ivm_source):
    database, query = ivm_source
    with pytest.raises(ValueError):
        FIVM(database, query, ["no_such_feature"])


@st.composite
def update_stream_strategy(draw):
    """Random interleavings of inserts and deletes over a tiny 3-relation schema."""
    domain = st.integers(min_value=0, max_value=2)
    value = st.integers(min_value=-3, max_value=3)
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["F", "D1", "D2"]),
                st.tuples(domain, domain, value),
                st.sampled_from([1, 1, 1, -1]),
            ),
            min_size=0,
            max_size=30,
        )
    )
    return events


@settings(max_examples=25, deadline=None)
@given(update_stream_strategy())
def test_fivm_matches_recomputation_on_random_streams(events):
    schema_database = Database(
        [
            Relation("F", Schema.from_names(["k1", "k2", "m"], categorical_names=["k1", "k2"])),
            Relation("D1", Schema.from_names(["k1", "x"], categorical_names=["k1"])),
            Relation("D2", Schema.from_names(["k2", "y"], categorical_names=["k2"])),
        ]
    )
    query = ConjunctiveQuery(["F", "D1", "D2"])
    maintainer = FIVM(schema_database, query, ["m", "x", "y"])
    inserted = {"F": set(), "D1": set(), "D2": set()}
    for relation_name, payload, sign in events:
        if relation_name == "F":
            row = payload
        else:
            row = (payload[0], payload[2])
        if sign < 0 and row not in inserted[relation_name]:
            continue  # only delete rows that exist
        maintainer.apply(Update(relation_name, row, sign))
        if sign > 0:
            inserted[relation_name].add(row)
        elif maintainer.database.relation(relation_name).multiplicity(row) == 0:
            inserted[relation_name].discard(row)
    assert _payloads_match(maintainer.statistics(), maintainer.recompute_statistics())
