"""Cost-based join-tree rooting and the cross-evaluate view cache.

Covers the three guarantees of the planning/caching subsystem:

- *path equivalence*: every candidate root — and the cost-based pick in
  particular — produces identical aggregate values;
- *cost model*: the optimizer consumes real statistics (row counts, distinct
  connection-key counts from the column store) and exposes its evidence;
- *cache semantics*: repeated evaluation over unchanged relations serves
  views from the cache, and any mutation of a subtree relation invalidates
  exactly the views above it (correctness after updates included).
"""

from __future__ import annotations

import math

import pytest

from repro.aggregates import Aggregate, AggregateBatch, covariance_batch
from repro.data import Database, Relation, Schema
from repro.datasets import load_dataset
from repro.engine import (
    EngineOptions,
    LMFAOEngine,
    choose_root,
    collect_statistics,
    estimate_root_costs,
)
from repro.engine.executor import (
    STAT_CACHED,
    STAT_COLUMNAR,
    STAT_DELTA_REFRESHED,
    STAT_ROOT_PATCHED,
)
from repro.query import ConjunctiveQuery, build_join_tree


def _values_equal(left, right):
    if isinstance(left, dict) or isinstance(right, dict):
        assert isinstance(left, dict) and isinstance(right, dict)
        assert set(left) == set(right)
        return all(
            math.isclose(left[key], right[key], rel_tol=1e-9, abs_tol=1e-9)
            for key in left
        )
    return math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-9)


def _assert_results_equal(reference, candidate):
    assert set(reference.values) == set(candidate.values)
    for name, value in reference.values.items():
        assert _values_equal(value, candidate.values[name]), name


@pytest.fixture(scope="module")
def small_yelp():
    database, query, spec = load_dataset("yelp", review_rows=400, businesses=30, users=40)
    batch = covariance_batch(spec.continuous_features, spec.categorical_features)
    return database, query, batch


# -- root equivalence -------------------------------------------------------------------


def test_every_candidate_root_gives_identical_results_on_toy(toy_database, toy_query):
    batch = covariance_batch(["price"], ["dish", "day"])
    reference = None
    for root in toy_query.relation_names:
        result = LMFAOEngine(
            toy_database, toy_query, EngineOptions(root_relation=root)
        ).evaluate(batch)
        if reference is None:
            reference = result
        else:
            _assert_results_equal(reference, result)


def test_every_candidate_root_gives_identical_results_on_yelp(small_yelp):
    database, query, batch = small_yelp
    reference = None
    for root in query.relation_names:
        result = LMFAOEngine(
            database, query, EngineOptions(root_relation=root)
        ).evaluate(batch)
        if reference is None:
            reference = result
        else:
            _assert_results_equal(reference, result)


def test_cost_based_and_widest_agree_on_views(small_yelp):
    """Regression: the optimizer must never change *what* is computed."""
    database, query, batch = small_yelp
    cost_based = LMFAOEngine(database, query, EngineOptions(root_strategy="cost"))
    widest = LMFAOEngine(database, query, EngineOptions(root_strategy="widest"))
    _assert_results_equal(cost_based.evaluate(batch), widest.evaluate(batch))


# -- the cost model and its statistics --------------------------------------------------


def test_statistics_expose_rows_and_distinct_connection_keys(small_yelp):
    database, query, _batch = small_yelp
    tree = build_join_tree(query.hypergraph(database))
    statistics = collect_statistics(database, tree)
    reviews = statistics["Reviews"]
    assert reviews.row_count == len(database.relation("Reviews"))
    distinct_users = reviews.distinct(database, ("user",))
    assert distinct_users == len(
        {row[0] for row, _m in database.relation("Reviews").items()}
    )
    # The count is cached on the statistics object after the first read.
    assert reviews.distinct_counts[("user",)] == distinct_users


def test_column_store_distinct_count_matches_python(small_yelp):
    database, _query, _batch = small_yelp
    store = database.relation("Reviews").column_store()
    expected = len({(row[0], row[1]) for row, _m in database.relation("Reviews").items()})
    assert store.distinct_count(("business", "user")) == expected


def test_root_choice_records_costs_for_every_candidate(small_yelp):
    database, query, _batch = small_yelp
    engine = LMFAOEngine(database, query)
    choice = engine.root_choice
    assert choice is not None and choice.strategy == "cost"
    assert set(choice.costs) == set(query.relation_names)
    ranked = choice.ranked()
    assert ranked[0][0] == engine.join_tree.root.relation_name
    assert ranked[0][1] == min(choice.costs.values())


def test_estimate_root_costs_penalises_hosting_every_signature_at_the_fact_table(small_yelp):
    """The fact table (widest payload subtree at the root) must not look free."""
    database, query, _batch = small_yelp
    tree = build_join_tree(query.hypergraph(database))
    costs = estimate_root_costs(database, tree)
    assert costs["Reviews"] == max(costs.values())


def test_widest_strategy_restores_the_seed_heuristic(small_yelp):
    database, query, _batch = small_yelp
    engine = LMFAOEngine(database, query, EngineOptions(root_strategy="widest"))
    assert engine.root_choice is None
    widest = max(
        query.relation_names,
        key=lambda name: (
            database.relation(name).arity,
            len(database.relation(name)),
            name,
        ),
    )
    assert engine.join_tree.root.relation_name == widest


def test_unknown_root_strategy_is_rejected(toy_database, toy_query):
    with pytest.raises(ValueError, match="root_strategy"):
        LMFAOEngine(toy_database, toy_query, EngineOptions(root_strategy="random"))


def test_choose_root_falls_back_to_widest_on_empty_databases(toy_database, toy_query):
    empty = toy_database.empty_copy()
    tree = build_join_tree(toy_query.hypergraph(empty))
    choice = choose_root(empty, tree)
    assert choice.strategy == "widest"
    assert choice.root in toy_query.relation_names


# -- the cross-evaluate view cache ------------------------------------------------------


def _star_database():
    return Database(
        [
            Relation(
                "F",
                Schema.from_names(["k1", "k2", "m"], ["k1", "k2"]),
                rows=[(1, 1, 2), (1, 2, 3), (2, 1, 4), (2, 2, 5)],
            ),
            Relation("D1", Schema.from_names(["k1", "x"], ["k1"]), rows=[(1, 10), (2, 20)]),
            Relation("D2", Schema.from_names(["k2", "y"], ["k2"]), rows=[(1, 7), (2, 9)]),
        ]
    )


def _star_batch():
    return AggregateBatch(
        "cached",
        [
            Aggregate.count(name="count"),
            Aggregate.sum_of(["m"], name="sum_m"),
            Aggregate.sum_of(["m", "x"], name="sum_mx"),
            Aggregate.sum_of(["y"], group_by=["k1"], name="y_by_k1"),
        ],
    )


def test_repeated_identical_batch_is_served_from_the_view_cache():
    database = _star_database()
    query = ConjunctiveQuery(["F", "D1", "D2"])
    engine = LMFAOEngine(database, query)
    first = engine.evaluate(_star_batch())
    assert first.executor_stats.get(STAT_CACHED, 0) == 0
    computed = first.executor_stats.get(STAT_COLUMNAR, 0)
    assert computed > 0

    second = engine.evaluate(_star_batch())
    # Every planned view hits the cache; nothing is recomputed.
    assert second.executor_stats.get(STAT_CACHED, 0) == computed
    assert second.executor_stats.get(STAT_COLUMNAR, 0) == 0
    _assert_results_equal(first, second)


def test_relation_update_invalidates_exactly_the_affected_subtrees():
    database = _star_database()
    query = ConjunctiveQuery(["F", "D1", "D2"])
    engine = LMFAOEngine(database, query)
    engine.evaluate(_star_batch())

    database["D1"].add((1, 100))
    third = engine.evaluate(_star_batch())
    # D1's own views and every ancestor's views refresh — recomputed, patched
    # in key groups, or root-payload patched for a small delta like this one;
    # the untouched sibling subtree (D2, when not on D1's root path) may
    # still hit.
    refreshed = (
        third.executor_stats.get(STAT_COLUMNAR, 0)
        + third.executor_stats.get(STAT_DELTA_REFRESHED, 0)
        + third.executor_stats.get(STAT_ROOT_PATCHED, 0)
    )
    assert refreshed > 0
    # The values reflect the update (no stale cache reads).
    expected = LMFAOEngine(database, query).evaluate(_star_batch())
    _assert_results_equal(expected, third)

    affected = {engine.join_tree.node("D1").relation_name} | {
        node.relation_name for node in engine.join_tree.path_to_root("D1")
    }
    untouched_cached = third.executor_stats.get(STAT_CACHED, 0)
    if len(affected) < len(query.relation_names):
        assert untouched_cached > 0


def test_update_then_revert_still_recomputes():
    """Version counters only grow: an add/remove pair must not revive entries."""
    database = _star_database()
    query = ConjunctiveQuery(["F", "D1", "D2"])
    engine = LMFAOEngine(database, query)
    baseline = engine.evaluate(_star_batch())

    database["D1"].add((1, 100))
    database["D1"].remove((1, 100))
    after = engine.evaluate(_star_batch())
    _assert_results_equal(baseline, after)


def test_cache_can_be_disabled():
    database = _star_database()
    query = ConjunctiveQuery(["F", "D1", "D2"])
    engine = LMFAOEngine(database, query, EngineOptions(cache_views=False))
    engine.evaluate(_star_batch())
    second = engine.evaluate(_star_batch())
    assert second.executor_stats.get(STAT_CACHED, 0) == 0
    assert second.executor_stats.get(STAT_COLUMNAR, 0) > 0


def test_cache_respects_the_lru_size_bound():
    database = _star_database()
    query = ConjunctiveQuery(["F", "D1", "D2"])
    engine = LMFAOEngine(database, query, EngineOptions(view_cache_size=2))
    engine.evaluate(_star_batch())
    assert len(engine._view_cache) <= 2
    # Still correct when most views were evicted.
    expected = LMFAOEngine(database, query).evaluate(_star_batch())
    _assert_results_equal(expected, engine.evaluate(_star_batch()))


def test_overlapping_batches_share_cached_views():
    """A different batch planning the same signatures reuses them."""
    database = _star_database()
    query = ConjunctiveQuery(["F", "D1", "D2"])
    engine = LMFAOEngine(database, query)
    engine.evaluate(
        AggregateBatch("first", [Aggregate.count(name="count"),
                                 Aggregate.sum_of(["m"], name="sum_m")])
    )
    overlapping = engine.evaluate(
        AggregateBatch("second", [Aggregate.sum_of(["m"], name="sum_m"),
                                  Aggregate.sum_of(["x"], name="sum_x")])
    )
    assert overlapping.executor_stats.get(STAT_CACHED, 0) > 0


def test_close_clears_the_view_cache():
    database = _star_database()
    query = ConjunctiveQuery(["F", "D1", "D2"])
    engine = LMFAOEngine(database, query)
    engine.evaluate(_star_batch())
    assert engine._view_cache
    engine.close()
    assert not engine._view_cache


def test_cached_views_agree_with_fresh_engine_on_yelp(small_yelp):
    database, query, batch = small_yelp
    engine = LMFAOEngine(database, query)
    engine.evaluate(batch)
    cached = engine.evaluate(batch)
    assert cached.executor_stats.get(STAT_CACHED, 0) > 0
    fresh = LMFAOEngine(database, query).evaluate(batch)
    _assert_results_equal(fresh, cached)


# -- columnar root-view splice ----------------------------------------------------------


def _root_patch_loop(options, steps=6):
    """Shared driver: update loop on a fact-rooted yelp engine.

    Returns the engine, its results per step, and how many root patches ran.
    """
    import random as _random

    database, query, spec = load_dataset("yelp", review_rows=250, businesses=20, users=25)
    batch = covariance_batch(spec.continuous_features, spec.categorical_features)
    fact = max(query.relation_names, key=lambda name: len(database.relation(name)))
    engine = LMFAOEngine(
        database, query, EngineOptions(root_relation=fact, **options)
    )
    engine.evaluate(batch)
    rng = _random.Random(31)
    rows = list(database.relation(fact))
    results = []
    patched = 0
    for step in range(steps):
        row = rng.choice(rows)
        database.relation(fact).add(row, -1 if step % 3 == 2 else 1)
        result = engine.evaluate(batch)
        results.append(result)
        patched += result.executor_stats.get(STAT_ROOT_PATCHED, 0)
    return database, query, batch, results, patched


def test_columnar_root_patch_matches_dict_fallback_and_recompute():
    """Both splice modes must agree with each other and with a fresh engine."""
    _db1, _q1, _b1, columnar, patched_columnar = _root_patch_loop(
        dict(columnar_root_patch=True)
    )
    database, query, batch, dict_mode, patched_dict = _root_patch_loop(
        dict(columnar_root_patch=False)
    )
    assert patched_columnar > 0 and patched_dict > 0
    for left, right in zip(columnar, dict_mode):
        assert set(left.values) == set(right.values)
        for name, value in left.values.items():
            other = right.values[name]
            if isinstance(value, dict):
                shared = set(value) | set(other)
                assert all(
                    math.isclose(
                        value.get(key, 0.0), other.get(key, 0.0),
                        rel_tol=1e-7, abs_tol=1e-7,
                    )
                    for key in shared
                )
            else:
                assert math.isclose(value, other, rel_tol=1e-7, abs_tol=1e-7)
    fresh = LMFAOEngine(database, query, EngineOptions(cache_views=False)).evaluate(batch)
    final = dict_mode[-1]
    for name, value in fresh.values.items():
        other = final.values[name]
        if isinstance(value, dict):
            assert all(
                math.isclose(value[key], other.get(key, 0.0), rel_tol=1e-7, abs_tol=1e-7)
                for key in value
            )
        else:
            assert math.isclose(value, other, rel_tol=1e-7, abs_tol=1e-7)


def test_columnar_root_patch_keeps_the_view_array_native():
    """The spliced root view must stay a ColumnarView (no dict conversion)."""
    from repro.engine.executor import ColumnarView

    database, query, spec = load_dataset("yelp", review_rows=200, businesses=15, users=20)
    batch = covariance_batch(spec.continuous_features, spec.categorical_features)
    fact = max(query.relation_names, key=lambda name: len(database.relation(name)))
    engine = LMFAOEngine(database, query, EngineOptions(root_relation=fact))
    engine.evaluate(batch)
    row = next(iter(database.relation(fact)))
    database.relation(fact).add(row, 1)
    result = engine.evaluate(batch)
    assert result.executor_stats.get(STAT_ROOT_PATCHED, 0) > 0
    root = engine.join_tree.root.relation_name
    patched_views = [
        view
        for (node, _signature), (_versions, view) in engine._view_cache.items()
        if node == root
    ]
    assert patched_views and all(
        isinstance(view, ColumnarView) for view in patched_views
    )


def test_columnar_root_patch_appends_new_group_entries():
    """A delta introducing an unseen group key still splices correctly."""
    database = _star_database()
    query = ConjunctiveQuery(["F", "D1", "D2"])
    batch = AggregateBatch(
        "grouped",
        [Aggregate.sum_of(["m"], group_by=["k1"], name="m_by_k1")],
    )
    fact = "F"
    engine = LMFAOEngine(database, query, EngineOptions(root_relation=fact))
    engine.evaluate(batch)
    # A fact row with a brand-new k1 value joins D1 only after D1 gains the
    # key, so mutate D1's subtree first (full recompute there), then patch
    # the root with a delta whose group key (k1=3) the cached view never saw.
    database["D1"].add((3, 30))
    engine.evaluate(batch)
    database["F"].add((3, 1, 6))
    patched = engine.evaluate(batch)
    expected = LMFAOEngine(database, query, EngineOptions(cache_views=False)).evaluate(batch)
    got = patched.values["m_by_k1"]
    want = expected.values["m_by_k1"]
    assert all(
        math.isclose(want.get(key, 0.0), got.get(key, 0.0), rel_tol=1e-9, abs_tol=1e-9)
        for key in set(want) | set(got)
    )


# -- IVM integration --------------------------------------------------------------------


def test_maintainer_uses_cost_based_root_on_populated_schema_database(small_yelp):
    from repro.ivm import FIVM

    database, query, _batch = small_yelp
    maintainer = FIVM(
        database, query, ["review_stars", "useful"], root_strategy="cost"
    )
    tree = build_join_tree(query.hypergraph(database))
    assert maintainer.join_tree.root.relation_name == choose_root(database, tree).root
    widest = FIVM(
        database, query, ["review_stars", "useful"], root_strategy="widest"
    )
    assert widest.join_tree.root.relation_name == max(
        query.relation_names,
        key=lambda name: (database.relation(name).arity, name),
    )
