"""Tests for the multiset relational-algebra operators."""

import pytest

from repro.data import Relation, Schema, algebra
from repro.data.attribute import SchemaError
from repro.data.relation import relation_from_rows


@pytest.fixture()
def orders():
    return relation_from_rows(
        "Orders", ["customer", "dish"],
        [("elise", "burger"), ("steve", "hotdog"), ("joe", "hotdog")],
        categorical=["customer", "dish"],
    )


@pytest.fixture()
def dishes():
    return relation_from_rows(
        "Dishes", ["dish", "price"],
        [("burger", 8), ("hotdog", 5), ("salad", 6)],
        categorical=["dish"],
    )


def test_select_keeps_matching_rows(orders):
    cheap = algebra.select(orders, lambda row: row["dish"] == "hotdog")
    assert len(cheap) == 2
    assert all(row[1] == "hotdog" for row in cheap)


def test_select_equals_fast_path_matches_generic(orders):
    generic = algebra.select(orders, lambda row: row["customer"] == "joe")
    fast = algebra.select_equals(orders, "customer", "joe")
    assert generic == fast


def test_project_accumulates_multiplicities(orders):
    projected = algebra.project(orders, ["dish"])
    assert projected.multiplicity(("hotdog",)) == 2
    assert projected.schema.names == ("dish",)


def test_rename(orders):
    renamed = algebra.rename(orders, {"customer": "person"})
    assert renamed.schema.names == ("person", "dish")
    assert len(renamed) == len(orders)


def test_union_adds_multiplicities(orders):
    doubled = algebra.union(orders, orders)
    assert doubled.multiplicity(("joe", "hotdog")) == 2


def test_union_requires_same_schema(orders, dishes):
    with pytest.raises(SchemaError):
        algebra.union(orders, dishes)


def test_difference_cancels_tuples(orders):
    empty = algebra.difference(orders, orders)
    assert len(empty) == 0


def test_cartesian_product_multiplies(orders):
    tags = relation_from_rows("Tags", ["tag"], [("a",), ("b",)], categorical=["tag"])
    product = algebra.cartesian_product(orders, tags)
    assert len(product) == len(orders) * 2
    assert product.schema.names == ("customer", "dish", "tag")


def test_cartesian_product_rejects_shared_attributes(orders):
    with pytest.raises(SchemaError):
        algebra.cartesian_product(orders, orders)


def test_natural_join_on_shared_attribute(orders, dishes):
    joined = algebra.natural_join(orders, dishes)
    assert len(joined) == 3
    assert joined.schema.names == ("customer", "dish", "price")
    assert joined.multiplicity(("steve", "hotdog", 5)) == 1


def test_natural_join_multiplies_multiplicities(orders, dishes):
    orders.add(("joe", "hotdog"), 2)          # multiplicity 3 now
    joined = algebra.natural_join(orders, dishes)
    assert joined.multiplicity(("joe", "hotdog", 5)) == 3


def test_natural_join_without_shared_attributes_is_product(orders):
    tags = relation_from_rows("Tags", ["tag"], [("a",)], categorical=["tag"])
    joined = algebra.natural_join(orders, tags)
    assert len(joined) == len(orders)


def test_natural_join_all_left_deep(orders, dishes):
    extras = relation_from_rows("Extras", ["dish", "calories"], [("burger", 700), ("hotdog", 400)],
                                categorical=["dish"])
    joined = algebra.natural_join_all([orders, dishes, extras])
    assert len(joined) == 3
    assert set(joined.schema.names) == {"customer", "dish", "price", "calories"}


def test_semi_join(orders, dishes):
    only_known = algebra.semi_join(dishes, orders)
    assert set(row[0] for row in only_known) == {"burger", "hotdog"}


def test_group_by_aggregate_sums_with_multiplicity(orders, dishes):
    joined = algebra.natural_join(orders, dishes)
    totals = algebra.group_by_aggregate(joined, ["dish"], lambda row: row["price"], "total")
    values = {row[0]: row[1] for row in totals}
    assert values == {"burger": 8.0, "hotdog": 10.0}


def test_aggregate_scalar_and_count(orders, dishes):
    joined = algebra.natural_join(orders, dishes)
    assert algebra.aggregate_scalar(joined, lambda row: row["price"]) == 18.0
    assert algebra.count_rows(joined) == 3


def test_join_is_commutative_on_content(orders, dishes):
    left = algebra.natural_join(orders, dishes)
    right = algebra.natural_join(dishes, orders)
    left_set = {tuple(sorted(zip(left.schema.names, row))) for row in left}
    right_set = {tuple(sorted(zip(right.schema.names, row))) for row in right}
    assert left_set == right_set
