"""Tests for the models trained from aggregate batches."""

import numpy as np
import pytest

from repro.aggregates.sparse_tensor import FeatureIndex, SigmaMatrix
from repro.inequality import NaiveInequalityEvaluator, SortedInequalityEvaluator
from repro.ml import (
    ChowLiuTree,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    FactorizationMachine,
    FDReparameterization,
    KMeans,
    LinearSVM,
    ModelSelector,
    PrincipalComponentAnalysis,
    RelationalKMeans,
    RidgeRegression,
    compute_sigma,
    mutual_information_matrix,
    train_ridge_regression,
)
from repro.ml.model_selection import training_mse
from repro.ml.statistics import one_hot_rows, sigma_from_data_matrix


@pytest.fixture(scope="module")
def retailer_setup(small_retailer, small_retailer_query):
    continuous = ["inventoryunits", "prize", "maxtemp", "rain", "population"]
    categorical = ["category", "snow"]
    sigma = compute_sigma(small_retailer, small_retailer_query, continuous, categorical)
    joined = small_retailer_query.evaluate(small_retailer)
    rows = [dict(zip(joined.schema.names, row)) for row in joined.rows()]
    return small_retailer, small_retailer_query, continuous, categorical, sigma, rows


# -- ridge regression -----------------------------------------------------------------------------


def test_gradient_descent_approaches_closed_form(retailer_setup):
    _db, _query, continuous, categorical, sigma, rows = retailer_setup
    gd_model = RidgeRegression("inventoryunits", regularization=1e-3).fit(sigma, max_iterations=5000)
    cf_model = RidgeRegression("inventoryunits", regularization=1e-3).fit_closed_form(sigma)
    assert gd_model.rmse(rows) == pytest.approx(cf_model.rmse(rows), rel=0.05)


def test_closed_form_matches_numpy_lstsq_on_one_hot_matrix(retailer_setup):
    _db, _query, continuous, categorical, sigma, rows = retailer_setup
    model = RidgeRegression("inventoryunits", regularization=0.0).fit_closed_form(sigma)
    matrix, index = one_hot_rows(rows, continuous, categorical)
    target_position = index.position("inventoryunits")
    predictors = np.delete(matrix, target_position, axis=1)
    targets = matrix[:, target_position]
    reference, *_ = np.linalg.lstsq(predictors, targets, rcond=None)
    predictions_reference = predictors @ reference
    predictions_model = model.predict(rows)
    assert np.sqrt(np.mean((predictions_model - targets) ** 2)) == pytest.approx(
        np.sqrt(np.mean((predictions_reference - targets) ** 2)), rel=0.05
    )


def test_sigma_via_engine_matches_sigma_via_data_matrix(retailer_setup):
    _db, _query, continuous, categorical, sigma, rows = retailer_setup
    reference = sigma_from_data_matrix(rows, continuous, categorical)
    assert np.allclose(sigma.matrix, reference.matrix)


def test_train_ridge_regression_end_to_end(small_retailer, small_retailer_query):
    model, sigma = train_ridge_regression(
        small_retailer,
        small_retailer_query,
        target="inventoryunits",
        continuous=["inventoryunits", "prize", "maxtemp"],
        categorical=["category"],
        closed_form=True,
    )
    assert sigma.dimension == 1 + 3 + 5  # intercept + continuous + categories
    assert len(model.coefficients()) == sigma.dimension - 1
    with pytest.raises(ValueError):
        train_ridge_regression(
            small_retailer, small_retailer_query, "prize", ["inventoryunits"], []
        )


def test_warm_start_converges_faster_than_cold(retailer_setup):
    _db, _query, _continuous, _categorical, sigma, _rows = retailer_setup
    cold = RidgeRegression("inventoryunits").fit(sigma, tolerance=1e-10)
    warm = RidgeRegression("inventoryunits")
    warm.warm_start_fit(sigma, cold.parameters, tolerance=1e-10, max_iterations=2000)
    assert warm.trace.iterations <= cold.trace.iterations


def test_untrained_model_raises():
    model = RidgeRegression("y")
    with pytest.raises(RuntimeError):
        model.coefficients()
    with pytest.raises(RuntimeError):
        model.predict_row({"y": 1.0})


# -- model selection --------------------------------------------------------------------------------


def test_model_selector_ranks_subsets(retailer_setup):
    _db, _query, _continuous, _categorical, sigma, rows = retailer_setup
    selector = ModelSelector(sigma, "inventoryunits")
    candidates = selector.search(["prize", "maxtemp", "rain"], max_subset_size=2)
    assert len(candidates) == 3 + 3          # singletons + pairs
    best = selector.best()
    assert best.training_mse == min(candidate.training_mse for candidate in candidates)


def test_training_mse_from_sigma_matches_row_level_mse(retailer_setup):
    _db, _query, continuous, categorical, sigma, rows = retailer_setup
    model = RidgeRegression("inventoryunits", regularization=0.0).fit_closed_form(sigma)
    analytic = training_mse(sigma, model, "inventoryunits")
    empirical = model.rmse(rows) ** 2
    assert analytic == pytest.approx(empirical, rel=1e-4)


def test_model_selector_requires_candidates(retailer_setup):
    _db, _query, _c, _k, sigma, _rows = retailer_setup
    with pytest.raises(RuntimeError):
        ModelSelector(sigma, "inventoryunits").best()


# -- PCA ----------------------------------------------------------------------------------------------


def test_pca_matches_numpy_covariance(retailer_setup):
    _db, _query, continuous, _categorical, sigma, rows = retailer_setup
    features = ["prize", "maxtemp", "rain", "population"]
    pca = PrincipalComponentAnalysis(features)
    result = pca.fit(sigma)
    matrix = np.array([[float(row[feature]) for feature in features] for row in rows])
    reference = np.cov(matrix, rowvar=False, bias=True)
    eigenvalues = np.sort(np.linalg.eigvalsh(reference))[::-1]
    assert np.allclose(np.sort(result.explained_variance)[::-1], eigenvalues, rtol=1e-6, atol=1e-6)
    assert result.explained_variance_ratio().sum() == pytest.approx(1.0)
    transformed = pca.transform(rows[:5])
    assert transformed.shape == (5, len(features))


# -- decision trees --------------------------------------------------------------------------------------


def test_regression_tree_reduces_variance(small_retailer, small_retailer_query):
    tree = DecisionTreeRegressor(
        target="inventoryunits",
        continuous=["prize", "maxtemp", "rain"],
        categorical=["category"],
        max_depth=2,
        min_samples=20,
    )
    root = tree.fit(small_retailer, small_retailer_query)
    assert root.count > 0
    joined = small_retailer_query.evaluate(small_retailer)
    rows = [dict(zip(joined.schema.names, row)) for row in joined.rows()]
    targets = np.array([row["inventoryunits"] for row in rows])
    predictions = np.array(tree.predict(rows))
    baseline = np.mean((targets - targets.mean()) ** 2)
    assert np.mean((targets - predictions) ** 2) <= baseline + 1e-9
    if not root.is_leaf:
        assert root.split_feature is not None
        assert "if" in root.render()


def test_regression_tree_depth_zero_is_constant(small_retailer, small_retailer_query):
    tree = DecisionTreeRegressor(
        target="inventoryunits", continuous=["prize"], max_depth=0
    )
    root = tree.fit(small_retailer, small_retailer_query)
    assert root.is_leaf


def test_classification_tree_beats_majority_class(small_favorita, small_favorita_query):
    tree = DecisionTreeClassifier(
        target="holiday_type",
        continuous=["transactions", "oilprice"],
        categorical=["city"],
        max_depth=2,
        min_samples=20,
    )
    tree.fit(small_favorita, small_favorita_query)
    joined = small_favorita_query.evaluate(small_favorita)
    rows = [dict(zip(joined.schema.names, row)) for row in joined.rows()]
    truth = [row["holiday_type"] for row in rows]
    majority = max(set(truth), key=truth.count)
    majority_accuracy = truth.count(majority) / len(truth)
    accuracy = sum(1 for row, label in zip(rows, truth) if tree.predict_row(row) == label) / len(truth)
    assert accuracy >= majority_accuracy - 1e-9


# -- k-means ------------------------------------------------------------------------------------------------


def test_kmeans_clusters_separated_blobs():
    rng = np.random.default_rng(0)
    blob_a = rng.normal(loc=0.0, scale=0.2, size=(50, 2))
    blob_b = rng.normal(loc=5.0, scale=0.2, size=(50, 2))
    points = np.vstack([blob_a, blob_b])
    result = KMeans(2, seed=1).fit(points)
    centroids = sorted(result.centroids[:, 0])
    assert centroids[0] == pytest.approx(0.0, abs=0.5)
    assert centroids[1] == pytest.approx(5.0, abs=0.5)
    labels = KMeans(2, seed=1)
    labels.fit(points)
    assert set(labels.predict(points)) == {0, 1}


def test_relational_kmeans_coreset_is_smaller_than_join(small_retailer, small_retailer_query):
    clustering = RelationalKMeans(["prize", "maxtemp"], clusters=3, grid_size=3, seed=2)
    result = clustering.fit(small_retailer, small_retailer_query)
    join_size = len(small_retailer_query.evaluate(small_retailer))
    assert 0 < clustering.coreset_size() <= 9
    assert clustering.coreset_size() < join_size
    assert result.inertia >= 0


def test_relational_kmeans_approximates_full_kmeans(small_retailer, small_retailer_query):
    features = ["prize", "maxtemp"]
    joined = small_retailer_query.evaluate(small_retailer)
    rows = [dict(zip(joined.schema.names, row)) for row in joined.expanded_rows()]
    points = np.array([[row[feature] for feature in features] for row in rows], dtype=float)
    exact = KMeans(3, seed=0).fit(points)
    relational = RelationalKMeans(features, clusters=3, grid_size=6, seed=0)
    relational.fit(small_retailer, small_retailer_query)
    exact_inertia = KMeans.inertia_of(points, None, exact.centroids)
    relational_inertia = KMeans.inertia_of(points, None, relational.result.centroids)
    assert relational_inertia <= 4.0 * exact_inertia + 1e-9


def test_kmeans_input_validation():
    with pytest.raises(ValueError):
        KMeans(0)
    with pytest.raises(ValueError):
        KMeans(2).fit(np.zeros(3))


# -- factorisation machines ------------------------------------------------------------------------------------


def test_factorization_machine_learns_interaction():
    rng = np.random.default_rng(1)
    rows = []
    for _ in range(400):
        a, b = rng.normal(size=2)
        rows.append({"a": a, "b": b, "y": 2.0 * a * b})
    model = FactorizationMachine("y", ["a", "b"], rank=2, learning_rate=0.02, epochs=60, seed=1)
    model.fit_rows(rows)
    assert model.report.losses[-1] < model.report.losses[0] * 0.5
    assert model.rmse(rows) < 1.0


def test_factorization_machine_streams_from_factorized_join(sri_database, sri_query):
    model = FactorizationMachine("u", ["i", "s", "c", "p"], rank=2, learning_rate=5e-4, epochs=20)
    report = model.fit(sri_database, sri_query)
    assert len(report.losses) == 20
    assert np.isfinite(report.losses[-1])
    assert report.losses[-1] <= report.losses[0]


# -- SVM and inequality-based training -----------------------------------------------------------------------------


def test_linear_svm_separates_linearly_separable_data():
    rng = np.random.default_rng(2)
    positives = rng.normal(loc=2.0, size=(60, 2))
    negatives = rng.normal(loc=-2.0, size=(60, 2))
    features = np.vstack([positives, negatives])
    labels = np.concatenate([np.ones(60), -np.ones(60)])
    svm = LinearSVM("label", ["f0", "f1"], iterations=300, learning_rate=0.5)
    svm.fit_matrix(features, labels)
    rows = [{"f0": x, "f1": y} for x, y in features]
    assert svm.accuracy(rows, labels) > 0.95
    assert svm.report.objective_values[-1] <= svm.report.objective_values[0]


def test_svm_fit_from_join(sri_database, sri_query):
    svm = LinearSVM("u", ["i", "s", "c", "p"], iterations=50)
    svm.fit(sri_database, sri_query)
    assert svm.weights.shape == (4,)


# -- Chow-Liu / mutual information ------------------------------------------------------------------------------------


def test_mutual_information_is_symmetric_nonnegative(small_retailer, small_retailer_query):
    matrix, features = mutual_information_matrix(
        small_retailer, small_retailer_query, ["category", "snow", "zip"]
    )
    assert np.allclose(matrix, matrix.T)
    assert (matrix >= -1e-9).all()
    assert matrix.shape == (3, 3)


def test_chow_liu_tree_is_spanning_tree(small_retailer, small_retailer_query):
    tree = ChowLiuTree.fit(small_retailer, small_retailer_query, ["category", "snow", "zip"])
    assert len(tree.edges) == 2
    assert tree.total_weight() >= 0
    assert set(tree.features) == {"category", "snow", "zip"}
    assert tree.neighbours("category") != []


def test_mutual_information_of_dependent_attributes_is_higher(small_retailer, small_retailer_query):
    # zip is functionally determined by locn's store, so MI(zip, category) should be
    # no larger than MI(zip, zip-determining attributes); at minimum independent
    # attributes have near-zero MI compared with self-information.
    matrix, features = mutual_information_matrix(
        small_retailer, small_retailer_query, ["category", "zip"]
    )
    assert matrix[0, 1] >= 0.0


# -- FD reparameterisation -----------------------------------------------------------------------------------------------


def test_fd_reparameterisation_round_trip(small_retailer, small_retailer_query):
    fd = FDReparameterization.from_database(small_retailer, "ksn", "category")
    assert fd.mapping  # every sku maps to one category

    continuous = ["inventoryunits", "prize"]
    categorical_full = ["ksn", "category"]
    sigma_full = compute_sigma(small_retailer, small_retailer_query, continuous, categorical_full)
    full_model = RidgeRegression("inventoryunits", regularization=1e-6).fit_closed_form(sigma_full)

    reduced_continuous, reduced_categorical = fd.reduced_feature_lists(continuous, categorical_full)
    assert "category" not in reduced_categorical
    sigma_reduced = compute_sigma(
        small_retailer, small_retailer_query, reduced_continuous, reduced_categorical
    )
    reduced_model = RidgeRegression("inventoryunits", regularization=1e-6).fit_closed_form(sigma_reduced)

    assert fd.parameter_savings(sigma_full) == len(sigma_full.index.positions_of_feature("category"))
    recovered = fd.recover_full_model(reduced_model, sigma_reduced)
    assert any(name.startswith("category=") for name in recovered)

    joined = small_retailer_query.evaluate(small_retailer)
    rows = [dict(zip(joined.schema.names, row)) for row in joined.sample_rows(100, seed=2)]
    # The reduced model predicts (numerically) as well as the full one.
    assert reduced_model.rmse(rows) == pytest.approx(full_model.rmse(rows), rel=0.05, abs=0.5)


def test_fd_violation_is_detected():
    from repro.data.relation import relation_from_rows

    relation = relation_from_rows(
        "R", ["city", "country"], [("paris", "fr"), ("paris", "de")], categorical=["city", "country"]
    )
    with pytest.raises(ValueError):
        FDReparameterization.from_relation(relation, "city", "country")


# -- inequality evaluators (property) ----------------------------------------------------------------------------------------


def test_inequality_evaluators_agree_on_random_data():
    rng = np.random.default_rng(5)
    points = rng.normal(size=(300, 3))
    values = rng.normal(size=(300, 2))
    naive = NaiveInequalityEvaluator(points, values)
    fast = SortedInequalityEvaluator(points, values)
    for weights in ([1.0, 0.0, -1.0], [0.3, 2.0, 0.7]):
        for threshold in (-1.5, 0.0, 0.9):
            assert naive.count_above(weights, threshold) == fast.count_above(weights, threshold)
            assert np.allclose(naive.sum_above(weights, threshold), fast.sum_above(weights, threshold))
            assert naive.count_below(weights, threshold) == fast.count_below(weights, threshold)
            assert np.allclose(naive.sum_below(weights, threshold), fast.sum_below(weights, threshold))


def test_inequality_evaluator_validation():
    with pytest.raises(ValueError):
        NaiveInequalityEvaluator(np.zeros(3))
    with pytest.raises(ValueError):
        NaiveInequalityEvaluator(np.zeros((3, 2)), np.zeros((2, 2)))
    evaluator = SortedInequalityEvaluator(np.array([[1.0], [2.0], [3.0]]))
    assert evaluator.count_above([1.0], 2.0) == 1
    assert evaluator.count_above([1.0], 2.0, strict=False) == 2
