"""Shared seeded generators for randomized insert/delete streams.

One home for the cancel-heavy stream machinery that the batched-IVM, fused-
IVM, tuple-store and serving-concurrency suites all exercise.  Everything is
driven by an explicit seed through ``random.Random`` — the same call with the
same arguments reproduces the same stream, which the differential suites rely
on (concurrent schedule and serial replay must consume identical updates).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.ivm import Update

__all__ = ["random_update_stream", "random_row_events", "random_event_batches"]


def random_update_stream(
    database,
    seed: int,
    length: int,
    delete_fraction: float = 0.3,
    cancel_fraction: float = 0.2,
) -> List[Update]:
    """A multi-relation stream of inserts and deletes with cancelling pairs.

    Rows are drawn from ``database``'s relations; ``delete_fraction`` removes
    a previously inserted row, and ``cancel_fraction`` follows an insert with
    its immediate delete — inside one batch such a pair nets out to nothing,
    which is exactly the adversarial case for netting/compaction machinery.
    """
    rng = random.Random(seed)
    rows_per_relation = {
        relation.name: list(relation) for relation in database
    }
    updates = []
    inserted = {name: [] for name in rows_per_relation}
    for _ in range(length):
        name = rng.choice(list(rows_per_relation))
        if inserted[name] and rng.random() < delete_fraction:
            row = rng.choice(inserted[name])
            updates.append(Update(name, row, -1))
            inserted[name].remove(row)
        else:
            row = rng.choice(rows_per_relation[name])
            updates.append(Update(name, row, 1))
            inserted[name].append(row)
            if rng.random() < cancel_fraction:
                # An insert/delete pair of the same row inside the stream:
                # inside one batch it nets out to nothing.
                updates.append(Update(name, row, -1))
                inserted[name].remove(row)
    return updates


def random_row_events(
    seed: int,
    length: int = 600,
    universe_size: int = 12,
    keys: int = 6,
    values: int = 4,
    multiplicities: Sequence[int] = (1, 1, 1, -1, -1, 2, -2),
) -> List[Tuple[Tuple, int]]:
    """A cancel-heavy single-relation event stream of ``(row, multiplicity)``.

    Rows come from a small ``(f"k{i}", j)`` universe so the same row is hit
    repeatedly and multiplicities net out (and through zero) often.
    """
    rng = random.Random(seed)
    universe = [
        (f"k{index % keys}", index % values) for index in range(universe_size)
    ]
    events: List[Tuple[Tuple, int]] = []
    for _step in range(length):
        row = rng.choice(universe)
        multiplicity = rng.choice(multiplicities)
        events.append((row, multiplicity))
    return events


def random_event_batches(
    seed: int,
    batches: int = 40,
    max_size: int = 25,
    universe_size: int = 20,
    keys: int = 5,
    values: int = 7,
    multiplicities: Sequence[int] = (1, 1, -1, 2),
) -> List[Tuple[List[Tuple], List[int]]]:
    """Batched single-relation events: a list of ``(rows, multiplicities)``."""
    rng = random.Random(seed)
    universe = [
        (f"k{index % keys}", index % values) for index in range(universe_size)
    ]
    out: List[Tuple[List[Tuple], List[int]]] = []
    for _batch in range(batches):
        size = rng.randint(1, max_size)
        rows = [rng.choice(universe) for _ in range(size)]
        batch_multiplicities = [rng.choice(multiplicities) for _ in range(size)]
        out.append((rows, batch_multiplicities))
    return out
