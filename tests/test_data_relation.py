"""Tests for multiset relations."""

import pytest

from repro.data import Relation, Schema
from repro.data.relation import RelationError, relation_from_rows


@pytest.fixture()
def people():
    return relation_from_rows(
        "People", ["name", "age"], [("ann", 30), ("bob", 40), ("ann", 30)], categorical=["name"]
    )


def test_multiplicities_accumulate(people):
    assert people.multiplicity(("ann", 30)) == 2
    assert people.multiplicity(("bob", 40)) == 1
    assert len(people) == 2
    assert people.total_multiplicity() == 3


def test_add_negative_multiplicity_deletes(people):
    people.add(("ann", 30), -2)
    assert ("ann", 30) not in people
    assert len(people) == 1


def test_remove_below_zero_keeps_negative_multiplicity(people):
    people.remove(("bob", 40), 3)
    assert people.multiplicity(("bob", 40)) == -2


def test_add_zero_multiplicity_is_noop(people):
    people.add(("carol", 25), 0)
    assert ("carol", 25) not in people


def test_arity_mismatch_raises(people):
    with pytest.raises(RelationError):
        people.add(("dave",))


def test_expanded_rows_repeat_by_multiplicity(people):
    rows = list(people.expanded_rows())
    assert rows.count(("ann", 30)) == 2
    assert len(rows) == 3


def test_expanded_rows_reject_negative(people):
    people.add(("zed", 1), -1)
    with pytest.raises(RelationError):
        list(people.expanded_rows())


def test_column_and_active_domain(people):
    assert sorted(people.column("name")) == ["ann", "bob"]
    assert people.active_domain("age") == [30, 40]


def test_copy_is_independent(people):
    clone = people.copy("Clone")
    clone.add(("carol", 22))
    assert ("carol", 22) not in people
    assert clone.name == "Clone"


def test_empty_like_has_schema_but_no_rows(people):
    empty = people.empty_like()
    assert len(empty) == 0
    assert empty.schema.names == people.schema.names


def test_from_dicts_and_from_columns_agree():
    schema = Schema.from_names(["a", "b"])
    from_dicts = Relation.from_dicts("R", schema, [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
    from_columns = Relation.from_columns("R", schema, {"a": [1, 3], "b": [2, 4]})
    assert from_dicts == from_columns


def test_from_columns_validates_lengths():
    schema = Schema.from_names(["a", "b"])
    with pytest.raises(RelationError):
        Relation.from_columns("R", schema, {"a": [1], "b": [2, 3]})
    with pytest.raises(RelationError):
        Relation.from_columns("R", schema, {"a": [1]})


def test_equality_ignores_name(people):
    clone = people.copy("Other")
    assert clone == people


def test_sample_rows_is_deterministic(people):
    assert people.sample_rows(1, seed=4) == people.sample_rows(1, seed=4)
    assert len(people.sample_rows(10)) == 2


def test_row_dicts(people):
    rows = list(people.row_dicts())
    assert {"name": "bob", "age": 40} in rows


def test_to_table_renders_multiplicity(people):
    table = people.to_table()
    assert "name | age" in table
    assert "(x2)" in table


# -- columnar store: versioning, caching, encodings -----------------------------------------


def test_version_bumps_on_mutation(people):
    version = people.version
    people.add(("zed", 25))
    assert people.version > version
    version = people.version
    people.remove(("zed", 25))
    assert people.version > version
    version = people.version
    people.clear()
    assert people.version > version


def test_column_store_is_cached_and_invalidated(people):
    store = people.column_store()
    assert people.column_store() is store          # cached while unchanged
    people.add(("zed", 25))
    fresh = people.column_store()
    assert fresh is not store                      # mutation invalidates
    assert fresh.row_count == len(people)


def test_column_store_codes_round_trip():
    from repro.data import Relation, Schema

    relation = Relation(
        "R",
        Schema.from_names(["k", "v"], ["k"]),
        multiplicities={("a", 1): 2, ("b", 1): 1, ("a", 3): -1},
    )
    store = relation.column_store()
    codes, keys = store.codes_for(("k", "v"))
    assert len(codes) == len(relation)
    decoded = {keys[code] for code in codes.tolist()}
    assert decoded == set(relation.rows())
    # Multiplicities align with the row order used by the encodings.
    assert sorted(store.multiplicities.tolist()) == [-1.0, 1.0, 2.0]


def test_column_store_float_column_and_fallback():
    from repro.data import Relation, Schema

    relation = Relation(
        "R",
        Schema.from_names(["k", "v"], ["k"]),
        rows=[("a", 1), ("b", 2.5)],
    )
    store = relation.column_store()
    values = store.float_column("v")
    assert values is not None and sorted(values.tolist()) == [1.0, 2.5]
    assert store.float_column("k") is None         # strings are not numeric


def test_column_store_mixed_type_column_uses_fallback_encoding():
    from repro.data import Relation, Schema

    relation = Relation(
        "R",
        Schema.from_names(["k"]),
        rows=[("a",), (3,), ("b",)],
    )
    store = relation.column_store()
    encoding = store.encoding("k")
    assert sorted(map(str, encoding.values)) == ["3", "a", "b"]
    assert len(encoding.codes) == 3
    # Mixed python types cannot form a typed, sortable dictionary.
    assert encoding.sortable_values() is None


def test_combine_codes_matches_stacked_unique():
    import numpy as np

    from repro.data.colstore import combine_codes

    left = np.asarray([0, 1, 0, 2, 1], dtype=np.int64)
    right = np.asarray([1, 1, 1, 0, 2], dtype=np.int64)
    codes, combos = combine_codes([left, right], [3, 3])
    assert codes.shape == (5,)
    rebuilt = {(int(combos[c, 0]), int(combos[c, 1])) for c in codes.tolist()}
    assert rebuilt == {(0, 1), (1, 1), (2, 0), (1, 2)}
