"""Tests for Database, functional dependencies and CSV I/O."""

import pytest

from repro.data import Database, FunctionalDependency, Relation, Schema, read_csv, write_csv
from repro.data.relation import RelationError, relation_from_rows


@pytest.fixture()
def database():
    orders = relation_from_rows(
        "Orders", ["customer", "dish"], [("elise", "burger"), ("joe", "hotdog")],
        categorical=["customer", "dish"],
    )
    dishes = relation_from_rows(
        "Dishes", ["dish", "price"], [("burger", 8), ("hotdog", 5)], categorical=["dish"]
    )
    return Database([orders, dishes], [FunctionalDependency.of("dish", "price")], name="diner")


def test_database_lookup_and_contains(database):
    assert "Orders" in database
    assert database["Orders"].name == "Orders"
    assert len(database) == 2
    with pytest.raises(RelationError):
        database.relation("Missing")


def test_database_rejects_duplicate_relation(database):
    with pytest.raises(RelationError):
        database.add_relation(relation_from_rows("Orders", ["x"], [(1,)]))


def test_drop_relation(database):
    database.drop_relation("Dishes")
    assert "Dishes" not in database
    with pytest.raises(RelationError):
        database.drop_relation("Dishes")


def test_attribute_names_first_occurrence_order(database):
    assert database.attribute_names() == ("customer", "dish", "price")


def test_relations_with_attribute(database):
    names = [relation.name for relation in database.relations_with_attribute("dish")]
    assert names == ["Orders", "Dishes"]


def test_is_categorical_resolved_through_schema(database):
    assert database.is_categorical("dish")
    assert not database.is_categorical("price")


def test_copy_and_empty_copy(database):
    clone = database.copy()
    clone["Orders"].add(("ann", "salad"))
    assert ("ann", "salad") not in database["Orders"]

    empty = database.empty_copy()
    assert all(len(relation) == 0 for relation in empty)
    assert empty.relation_names == database.relation_names


def test_natural_join_of_database(database):
    joined = database.natural_join()
    assert len(joined) == 2
    assert set(joined.schema.names) == {"customer", "dish", "price"}


def test_functional_dependency_formatting(database):
    dependency = database.functional_dependencies[0]
    assert str(dependency) == "dish -> price"
    assert FunctionalDependency.of(("a", "b"), "c").determinant == ("a", "b")


def test_size_summary_and_total_tuples(database):
    summary = database.size_summary()
    assert summary["Orders"] == (2, 2)
    assert database.total_tuples() == 4


def test_csv_round_trip(tmp_path, database):
    path = tmp_path / "orders.csv"
    write_csv(database["Orders"], path)
    loaded = read_csv(path, categorical=["customer", "dish"])
    assert loaded == database["Orders"]


def test_csv_round_trip_with_multiplicity_column(tmp_path):
    relation = relation_from_rows("R", ["a", "b"], [(1, 2.5)])
    relation.add((1, 2.5), 2)
    path = tmp_path / "r.csv"
    write_csv(relation, path, expand_multiplicities=False)
    text = path.read_text()
    assert "__multiplicity" in text
    assert "3" in text


def test_csv_type_inference(tmp_path):
    path = tmp_path / "typed.csv"
    path.write_text("a,b,c\n1,2.5,hello\n3,4.0,world\n")
    relation = read_csv(path, categorical=["c"])
    rows = set(relation.rows())
    assert (1, 2.5, "hello") in rows
    assert (3, 4.0, "world") in rows


def test_csv_without_header_requires_schema(tmp_path):
    path = tmp_path / "nohdr.csv"
    path.write_text("1,2\n3,4\n")
    with pytest.raises(ValueError):
        read_csv(path, has_header=False)
    relation = read_csv(path, has_header=False, schema=Schema.from_names(["a", "b"]))
    assert len(relation) == 2


def test_csv_empty_file_raises(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(ValueError):
        read_csv(path)
