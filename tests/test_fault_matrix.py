"""The crash-recovery fault matrix: kill -9 × fault point × sync policy.

Each case launches ``durability_child.py`` in a subprocess: a durable
:class:`~repro.serving.QueryServer` streaming a randomized cancel-heavy
1000-update stream in batches, with a ``kill`` fault installed at one
labeled trigger point (journal append, checkpoint write, snapshot publish).
SIGKILL is the hardest single-machine crash — no buffers flush, no finally
blocks run — so whatever the recovery reconstructs is exactly what the sync
policy durably preserved.

The parent then recovers in-process and asserts the contract: the recovered
state is **bit-identical** to an uninterrupted serial run of the committed
batch prefix, and re-applying the remaining batches converges bit-identically
to the full-stream reference — for all three sync policies.  (Under
``sync="none"`` the journal tail lives in a user-space buffer the kill
discards, so the recovered prefix may trail the applied one; the contract is
prefix-consistency, not zero loss.)
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import durability_child
from repro.durability import DurabilityOptions, recover

REPO = Path(__file__).resolve().parent.parent
CHILD = Path(durability_child.__file__).resolve()

#: (fault point, fire-on-Nth-call) — calibrated against the child's stream:
#: ~24 batches, a checkpoint every 4 plus the seed one, one publish per batch
#: plus the initial generation.
CRASH_POINTS = [
    ("journal.append", 7),
    ("checkpoint.write", 3),
    ("snapshot.publish", 9),
]


def _payloads_equal(left, right):
    return (
        left.count == right.count
        and np.array_equal(left.sums, right.sums)
        and np.array_equal(left.moments, right.moments)
    )


def _run_child(directory, sync, point, at_call):
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src"), str(REPO / "tests")]
    )
    return subprocess.run(
        [sys.executable, str(CHILD), str(directory), sync, point, str(at_call)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("sync", ["none", "batch", "fsync"])
@pytest.mark.parametrize("point,at_call", CRASH_POINTS, ids=[p for p, _ in CRASH_POINTS])
def test_kill9_recovery_is_bit_identical(tmp_path, sync, point, at_call):
    process = _run_child(tmp_path, sync, point, at_call)
    assert process.returncode == -signal.SIGKILL, (
        f"child exited {process.returncode} instead of being killed at "
        f"{point}#{at_call}\nstdout: {process.stdout}\nstderr: {process.stderr}"
    )

    database = durability_child.build_database()
    all_batches = durability_child.batches(database)
    options = DurabilityOptions(
        tmp_path, sync=sync,
        checkpoint_interval=durability_child.CHECKPOINT_INTERVAL,
    )
    result = recover(options)
    assert result.quarantined == []
    prefix = result.prefix
    assert 0 <= prefix <= len(all_batches)
    if point == "snapshot.publish" and sync != "none":
        # The kill fires *after* the batch was journaled and applied, so a
        # synced journal must preserve at least the batches preceding the
        # fatal publish (publish #1 is the initial generation).
        assert prefix >= at_call - 1

    # Bit-identity against an uninterrupted serial run of the same prefix.
    reference = durability_child.build_maintainer(database)
    for batch in all_batches[:prefix]:
        reference.apply_batch(batch)
    assert _payloads_equal(result.maintainer.statistics(), reference.statistics()), (
        f"recovered prefix {prefix} diverges from the serial run "
        f"({point}#{at_call}, sync={sync})"
    )

    # The recovered maintainer is a full citizen: driving it through the rest
    # of the stream converges bit-identically to the full reference.
    for batch in all_batches[prefix:]:
        result.maintainer.apply_batch(batch)
        reference.apply_batch(batch)
    assert _payloads_equal(result.maintainer.statistics(), reference.statistics())


def test_child_completes_without_fault(tmp_path):
    """Sanity for the matrix: with an unreachable at_call the child finishes,
    and a clean-close recovery replays nothing."""
    process = _run_child(tmp_path, "batch", "journal.append", 10_000)
    assert process.returncode == 0, process.stderr
    assert process.stdout.startswith("COMPLETED")
    database = durability_child.build_database()
    all_batches = durability_child.batches(database)
    options = DurabilityOptions(
        tmp_path, sync="batch",
        checkpoint_interval=durability_child.CHECKPOINT_INTERVAL,
    )
    result = recover(options)
    assert result.prefix == len(all_batches)
    assert result.replayed_batches == 0  # the close-time checkpoint covers it all
    reference = durability_child.build_maintainer(database)
    for batch in all_batches:
        reference.apply_batch(batch)
    assert _payloads_equal(result.maintainer.statistics(), reference.statistics())
