"""The concurrent serving layer, proven differentially (PR 7).

The headline suite: randomized N-reader/1-writer schedules where every
concurrent read must be **bit-identical** to a serial replay of the same
update prefix — not close, identical, because a pinned snapshot is by
construction an exact past state, and any tearing (a reader observing a
half-applied batch, a compaction moving rows under a pinned view, a netting
write mutating a pinned multiplicity) shows up as a bitwise mismatch long
before it would trip a tolerance.

Alongside the differential schedules: hypothesis property tests that
netting/compaction can never invalidate a pinned snapshot, the epoch
deferral contract at the store level, `JoinIndex.mark_stale()` vs a pinned
older snapshot, the thread-safe stats counters, and the maintainer's
single-writer gate.

No ``pytest-timeout`` locally — every helper thread is joined with an
explicit timeout and asserted dead, so a deadlocked schedule fails instead
of hanging.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import covariance_batch
from repro.data import Relation, Schema
from repro.data.tuplestore import (
    StatsCounters,
    reset_tuplestore_stats,
    tuplestore_stats,
)
from repro.datasets import retailer_database, retailer_query
from repro.engine import LMFAOEngine
from repro.ivm import FIVM, HigherOrderIVM, Update
from repro.ivm.base import JoinIndex
from repro.serving import QueryServer, SnapshotManager
from streams import random_row_events, random_update_stream

FEATURES = ["inventoryunits", "prize", "maxtemp"]
JOIN_TIMEOUT_S = 120.0
SCHEMA = Schema.from_names(["k", "v"], categorical_names=["k"])


@pytest.fixture(scope="module")
def serving_source():
    database = retailer_database(inventory_rows=120, stores=4, items=8, dates=6, seed=21)
    return database, retailer_query()


def _join_or_fail(threads):
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT_S)
    stuck = [thread.name for thread in threads if thread.is_alive()]
    assert not stuck, f"deadlocked schedule: threads still alive: {stuck}"


def _payloads_identical(left, right):
    return (
        left.count == right.count
        and np.array_equal(left.sums, right.sums)
        and np.array_equal(left.moments, right.moments)
    )


def _serial_expectations(strategy, source, query, batches, reader_options):
    """Replay the batch stream serially; record (statistics, values) per prefix.

    One maintainer and one engine advance batch by batch — the engine keeps
    its view cache across prefixes exactly like the server's per-thread
    reader engines do across generations, so the arithmetic on both sides
    is the same down to the last bit.
    """
    replay = strategy(source, query, FEATURES)
    engine = LMFAOEngine(replay.database, query, options=reader_options)
    batch = covariance_batch(FEATURES)
    expected = {0: (replay.statistics(), dict(engine.evaluate(batch).values))}
    for prefix, updates in enumerate(batches, start=1):
        replay.apply_batch(updates)
        expected[prefix] = (replay.statistics(), dict(engine.evaluate(batch).values))
    return expected


def _run_schedule(strategy, source, query, seed, readers=3, batch_size=10, length=140):
    """One randomized concurrent schedule; returns (reads, expected, server stats)."""
    stream = random_update_stream(source, seed=seed, length=length)
    batches = [stream[start : start + batch_size] for start in range(0, len(stream), batch_size)]
    maintainer = strategy(source, query, FEATURES)
    server = QueryServer(maintainer, readers=readers)
    aggregate_batch = covariance_batch(FEATURES)
    results = []
    errors = []
    done = threading.Event()
    lock = threading.Lock()

    def reader(index):
        try:
            turn = 0
            while not done.is_set():
                if (turn + index) % 2 == 0:
                    read = server.query(aggregate_batch)
                else:
                    read = server.statistics()
                with lock:
                    results.append(read)
                turn += 1
            # One final read after the writer finished: must see the full
            # prefix (the last generation) and still compare bit-identical.
            read = server.statistics()
            with lock:
                results.append(read)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
            done.set()

    def writer():
        try:
            for updates in batches:
                server.apply_batch(updates)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            done.set()

    threads = [
        threading.Thread(target=reader, args=(index,), name=f"reader-{index}")
        for index in range(readers)
    ]
    threads.append(threading.Thread(target=writer, name="writer"))
    for thread in threads:
        thread.start()
    _join_or_fail(threads)
    assert not errors, f"schedule raised: {errors!r}"
    stats = server.serving_stats()
    server.close()
    expected = _serial_expectations(
        strategy, source, query, batches, server.reader_options()
    )
    return results, expected, stats, len(batches)


def _check_reads(results, expected):
    for read in results:
        want_statistics, want_values = expected[read.prefix]
        if read.kind == "statistics":
            assert _payloads_identical(read.value, want_statistics), (
                f"statistics read at prefix {read.prefix} is not bit-identical "
                f"to the serial replay"
            )
        else:
            assert read.value == want_values, (
                f"query read at prefix {read.prefix} is not bit-identical "
                f"to the serial replay"
            )


# -- the differential concurrency harness ----------------------------------------------


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_concurrent_reads_bit_identical_to_serial_replay(serving_source, seed):
    source, query = serving_source
    results, expected, stats, batches = _run_schedule(FIVM, source, query, seed)
    assert results, "schedule produced no reads"
    # Every read must land on a published prefix and match its replay exactly.
    assert all(0 <= read.prefix <= batches for read in results)
    _check_reads(results, expected)
    # The final post-writer reads must have observed the full prefix.
    assert max(read.prefix for read in results) == batches
    assert stats["reads"] == len(results)
    assert stats["writes"] == batches


def test_concurrent_reads_bit_identical_higher_order(serving_source):
    source, query = serving_source
    results, expected, _stats, batches = _run_schedule(
        HigherOrderIVM, source, query, seed=404, length=100
    )
    assert max(read.prefix for read in results) == batches
    _check_reads(results, expected)


def test_snapshot_held_across_writes_stays_frozen(serving_source):
    """A generation pinned before a burst of writes answers from the past."""
    source, query = serving_source
    stream = random_update_stream(source, seed=55, length=120)
    maintainer = FIVM(source, query, FEATURES)
    server = QueryServer(maintainer, readers=2)
    server.apply_batch(stream[:40])
    held = server.manager.acquire()
    frozen_statistics = held.statistics.copy()
    frozen_items = {
        relation.name: dict(relation.items()) for relation in held.database
    }
    for start in range(40, len(stream), 10):
        server.apply_batch(stream[start : start + 10])
    # The held generation is bitwise frozen: same payload, same rows.
    assert _payloads_identical(held.statistics, frozen_statistics)
    for relation in held.database:
        assert dict(relation.items()) == frozen_items[relation.name]
    # Current reads meanwhile moved on to the full prefix.
    assert server.statistics().prefix == server.prefix
    server.manager.release(held)
    server.close()
    # All pins returned: the maintained stores can compact freely again.
    for relation in maintainer.database:
        assert relation._store.pins == 0


def test_manager_refcounts_and_retires_generations(serving_source):
    source, query = serving_source
    maintainer = FIVM(source, query, FEATURES)
    manager = SnapshotManager(maintainer.database)
    manager.publish(maintainer.statistics(), prefix=0)
    first = manager.acquire()
    maintainer.apply_batch(random_update_stream(source, seed=5, length=30))
    manager.publish(maintainer.statistics(), prefix=1)
    second = manager.acquire()
    assert second.generation != first.generation
    assert manager.active_generations == 2
    manager.release(first)           # superseded + last reader -> retired
    assert manager.active_generations == 1
    manager.release(second)          # current: stays pinned via the manager
    assert manager.active_generations == 1
    with pytest.raises(RuntimeError):
        manager.release(second)
    manager.close()
    for relation in maintainer.database:
        assert relation._store.pins == 0


# -- pinned snapshots vs netting and compaction ----------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=11),
            st.sampled_from([1, 1, -1, 2, -2]),
        ),
        max_size=80,
    ),
)
def test_pinned_snapshot_survives_netting_and_compaction(seed, later_events):
    """Property: no post-pin mutation can change a pinned snapshot's arrays."""
    relation = Relation("R", SCHEMA)
    for row, multiplicity in random_row_events(seed % 1000, length=200):
        relation.add(row, multiplicity)
    relation.compact_storage()
    snapshot = relation.column_store()
    relation.pin()
    try:
        universe = [(f"k{index % 6}", index % 4) for index in range(12)]
        frozen_multiplicities = np.asarray(snapshot.multiplicities).copy()
        frozen_rows = list(snapshot.rows[: snapshot.row_count])
        store = relation._store
        epoch_at_pin = store.epoch
        for index, multiplicity in later_events:
            relation.add(universe[index], multiplicity)
        store.compact()          # must defer, not sweep, while pinned
        store.flush_encodings()
        assert store.epoch == epoch_at_pin, "compaction ran under a pinned snapshot"
        assert np.array_equal(
            np.asarray(snapshot.multiplicities), frozen_multiplicities
        ), "netting tore a pinned multiplicity in place"
        assert list(snapshot.rows[: snapshot.row_count]) == frozen_rows
    finally:
        relation.unpin()


def test_compaction_defers_while_pinned_and_resumes_after(serving_source):
    reset_tuplestore_stats()
    relation = Relation("R", SCHEMA)
    for row, multiplicity in random_row_events(3, length=300):
        relation.add(row, multiplicity)
    relation.compact_storage()
    store = relation._store
    relation.pin()
    epoch_at_pin = store.epoch
    # Net some live rows down to zero so there is something to compact.
    for row, multiplicity in list(relation.items())[:5]:
        relation.add(row, -multiplicity)
    assert store.zeros > 0
    store.compact()
    assert store.epoch == epoch_at_pin
    assert store._compact_deferred
    assert tuplestore_stats["deferred_compactions"] >= 1
    relation.unpin()
    # The deferred sweep runs on the writer's next mutation, not on unpin.
    assert store.epoch == epoch_at_pin
    relation.add(("k0", 0), 1)
    assert store.epoch > epoch_at_pin
    assert store.zeros == 0
    assert not store._compact_deferred


def test_join_index_mark_stale_vs_pinned_snapshot(serving_source):
    """Satellite: rebuild-vs-snapshot interleaving after ``mark_stale()``.

    The pinned snapshot keeps answering from the old state while the index,
    rebuilt lazily from a store whose compaction is deferred (so it still
    carries tombstones), must reflect the new state with no zero-multiplicity
    entries.
    """
    relation = Relation("R", SCHEMA)
    for row, multiplicity in random_row_events(9, length=250):
        relation.add(row, multiplicity)
    relation.compact_storage()
    index = JoinIndex(relation, ["k"])
    index.lookup(("k1",))  # force the initial build
    snapshot = relation.column_store()
    relation.pin()
    try:
        frozen = {
            row: int(multiplicity)
            for row, multiplicity in zip(
                snapshot.rows[: snapshot.row_count],
                np.asarray(snapshot.multiplicities).tolist(),
            )
            if multiplicity != 0.0
        }
        # Writer: delete every k1 row (tombstones — compaction is deferred),
        # then insert a fresh one, and invalidate the index wholesale.
        for row, multiplicity in list(relation.items()):
            if row[0] == "k1":
                relation.add(row, -multiplicity)
        relation.add(("k1", 99), 3)
        index.mark_stale()
        assert relation._store.zeros > 0, "expected deferred tombstones"
        rebuilt = index.lookup(("k1",))
        # The rebuilt buckets reflect the relation now: only the fresh row,
        # and never a netted-to-zero tombstone.
        assert rebuilt == {("k1", 99): 3}
        assert all(
            multiplicity != 0
            for bucket in index.buckets.values()
            for multiplicity in bucket.values()
        )
        # The pinned snapshot still answers from the old state, bit for bit.
        still = {
            row: int(multiplicity)
            for row, multiplicity in zip(
                snapshot.rows[: snapshot.row_count],
                np.asarray(snapshot.multiplicities).tolist(),
            )
            if multiplicity != 0.0
        }
        assert still == frozen
    finally:
        relation.unpin()


# -- stats counters and the single-writer gate -----------------------------------------


def test_stats_counters_are_thread_safe():
    counters = StatsCounters({"hits": 0})
    threads_n, bumps = 8, 5000

    def hammer():
        for _ in range(bumps):
            counters.bump("hits")
            counters.bump("misses", 2)

    threads = [threading.Thread(target=hammer, name=f"bump-{i}") for i in range(threads_n)]
    for thread in threads:
        thread.start()
    _join_or_fail(threads)
    assert counters["hits"] == threads_n * bumps
    assert counters["misses"] == 2 * threads_n * bumps


def test_tuplestore_stats_is_a_stats_counters():
    assert isinstance(tuplestore_stats, StatsCounters)


def test_concurrent_writers_are_rejected(serving_source):
    source, query = serving_source

    entered = threading.Event()
    release = threading.Event()

    class _SlowFIVM(FIVM):
        def _apply_multi_delta(self, groups):
            entered.set()
            assert release.wait(timeout=JOIN_TIMEOUT_S)
            super()._apply_multi_delta(groups)

    maintainer = _SlowFIVM(source, query, FEATURES)
    stream = random_update_stream(source, seed=77, length=20)
    failure = []

    def writer():
        try:
            maintainer.apply_batch(stream)
        except Exception as exc:  # pragma: no cover - failure path
            failure.append(exc)

    thread = threading.Thread(target=writer, name="writer")
    thread.start()
    try:
        assert entered.wait(timeout=JOIN_TIMEOUT_S)
        with pytest.raises(RuntimeError, match="single-writer"):
            maintainer.apply(stream[0])
        with pytest.raises(RuntimeError, match="single-writer"):
            maintainer.apply_batch(stream[:5])
    finally:
        release.set()
        _join_or_fail([thread])
    assert not failure
    # The gate releases cleanly: the same (single) writer can continue.
    release.set()
    entered.clear()
    maintainer.apply(stream[0])


# -- serving metrics -------------------------------------------------------------------


def test_serving_stats_block_shape(serving_source):
    source, query = serving_source
    maintainer = FIVM(source, query, FEATURES)
    with QueryServer(maintainer, readers=2) as server:
        server.apply_batch(random_update_stream(source, seed=31, length=30))
        batch = covariance_batch(FEATURES)
        for _ in range(6):
            server.query(batch)
            server.statistics()
        block = server.serving_stats()
    for key in (
        "reads", "writes", "read_latency_p50_s", "read_latency_p99_s",
        "snapshot_age_p50_s", "snapshot_age_max_s", "writer_batch_lag_p50_s",
        "writer_batch_lag_p99_s", "reads_per_epoch_mean", "reads_per_epoch_max",
        "active_generations", "current_generation", "current_prefix",
    ):
        assert key in block, f"serving_stats missing {key!r}"
    assert block["reads"] == 12
    assert block["writes"] == 1
    assert block["read_latency_p99_s"] >= block["read_latency_p50_s"] >= 0.0
    assert block["reads_per_epoch_max"] >= block["reads_per_epoch_mean"] > 0


def test_rebind_database_rejects_schema_mismatch(serving_source):
    source, query = serving_source
    maintainer = FIVM(source, query, FEATURES)
    engine = LMFAOEngine(maintainer.database, query)
    from repro.data import Database

    with pytest.raises(ValueError, match="lacks relation"):
        engine.rebind_database(Database(name="empty"))
