"""Unit tests for factorised-representation nodes and the engine executor internals."""

import numpy as np
import pytest

from repro.aggregates.spec import Aggregate, Filter, FilterOp
from repro.data import Relation, Schema
from repro.engine.executor import compute_node_views, restrict_signature
from repro.engine.plan import ViewSignature, decompose_aggregate, designate_attributes
from repro.factorized import factorize_join
from repro.factorized.aggregates import aggregate_over_factorization
from repro.factorized.frepr import FactorizedRelation, ProductNode, UnionNode, ValueLeaf
from repro.query import build_join_tree
from repro.rings import MaxPlusSemiring


# -- factorised representation nodes --------------------------------------------------------------


def _tiny_factorization():
    # U[a]( 1 -> (U[b](x -> (), y -> ())), 2 -> (U[b](x -> ())) )
    union_b1 = UnionNode("b", {"x": ProductNode([]), "y": ProductNode([])})
    union_b2 = UnionNode("b", {"x": ProductNode([])})
    root = UnionNode("a", {1: ProductNode([union_b1]), 2: ProductNode([union_b2])})
    return FactorizedRelation(root=root, variables=("a", "b"))


def test_union_and_product_tuple_counts():
    factorization = _tiny_factorization()
    assert factorization.flat_size() == 3
    assert factorization.flat_value_count() == 6
    assert sorted(factorization.tuples()) == [(1, "x"), (1, "y"), (2, "x")]


def test_value_count_counts_shared_nodes_once():
    shared = UnionNode("b", {"x": ProductNode([])})
    root = UnionNode("a", {1: ProductNode([shared]), 2: ProductNode([shared])})
    factorization = FactorizedRelation(root=root, variables=("a", "b"))
    # Values: a=1, a=2, and the single shared b=x counted once.
    assert factorization.size() == 3
    assert factorization.flat_size() == 2


def test_value_leaf_behaviour():
    leaf = ValueLeaf("x", 5)
    assert leaf.tuple_count() == 1
    assert leaf.value_count(set()) == 1


def test_render_contains_variables():
    rendering = _tiny_factorization().render()
    assert "∪ a" in rendering and "b=x" in rendering


def test_empty_union_means_empty_relation():
    factorization = FactorizedRelation(root=UnionNode("a", {}), variables=("a",))
    assert factorization.flat_size() == 0
    assert list(factorization.tuples()) == []
    assert factorization.compression_ratio() >= 1.0 or factorization.size() == 0


def test_max_plus_aggregate_over_factorization(toy_database, toy_query):
    """FAQ-style use of another semiring: the maximum price over the join."""
    factorization = factorize_join(toy_query, toy_database)
    semiring = MaxPlusSemiring()

    def lift(variable, value):
        return float(value) if variable == "price" else 0.0

    maximum = aggregate_over_factorization(factorization, semiring, lift)
    assert maximum == 6.0


# -- executor internals --------------------------------------------------------------------------------


@pytest.fixture()
def star_pieces():
    fact = Relation(
        "F",
        Schema.from_names(["k", "m"], categorical_names=["k"]),
        rows=[("a", 1.0), ("a", 2.0), ("b", 3.0)],
    )
    dimension = Relation(
        "D",
        Schema.from_names(["k", "x"], categorical_names=["k"]),
        rows=[("a", 10.0), ("b", 20.0)],
    )
    from repro.data import Database
    from repro.query import ConjunctiveQuery

    database = Database([fact, dimension])
    query = ConjunctiveQuery(["F", "D"])
    tree = build_join_tree(query.hypergraph(database), root="F")
    designation = designate_attributes(tree)
    return database, query, tree, designation


def test_restrict_signature_splits_by_designation(star_pieces):
    database, query, tree, designation = star_pieces
    aggregate = Aggregate.sum_of(["m", "x"], group_by=["k"], name="mx")
    decomposition = decompose_aggregate(aggregate, tree, designation)
    root_signature = decomposition.root_signature
    child = tree.node("D")
    child_signature = restrict_signature(root_signature, child, designation)
    assert ("x", 1) in child_signature.product
    assert ("m", 1) not in child_signature.product
    # k is designated to the deepest relation containing it (D), so it restricts there.
    assert designation["k"] == "D"


def test_compute_node_views_leaf_and_root(star_pieces):
    database, query, tree, designation = star_pieces
    aggregate = Aggregate.sum_of(["m", "x"], name="mx")
    decomposition = decompose_aggregate(aggregate, tree, designation)

    leaf = tree.node("D")
    leaf_signature = decomposition.signature_at("D")
    leaf_views = compute_node_views(
        leaf, database["D"], [leaf_signature], designation, {}, specialize=True
    )
    view = leaf_views[leaf_signature]
    assert view[("a",)][()] == pytest.approx(10.0)
    assert view[("b",)][()] == pytest.approx(20.0)

    root = tree.root
    root_signature = decomposition.root_signature
    root_views = compute_node_views(
        root,
        database["F"],
        [root_signature],
        designation,
        {("D", leaf_signature): view},
        specialize=True,
    )
    total = root_views[root_signature][()][()]
    assert total == pytest.approx(1.0 * 10 + 2.0 * 10 + 3.0 * 20)


def test_vectorized_and_interpreted_paths_agree(star_pieces):
    database, query, tree, designation = star_pieces
    aggregates = [
        Aggregate.count(name="count"),
        Aggregate.sum_of(["m"], group_by=["k"], name="m_by_k"),
        Aggregate.sum_of(["m"], filters=[Filter("m", FilterOp.GE, 2.0)], name="m_big"),
    ]
    for aggregate in aggregates:
        decomposition = decompose_aggregate(aggregate, tree, designation)
        leaf = tree.node("D")
        leaf_signature = decomposition.signature_at("D")
        for specialize in (True, False):
            leaf_view = compute_node_views(
                leaf, database["D"], [leaf_signature], designation, {}, specialize=specialize
            )[leaf_signature]
            root_view = compute_node_views(
                tree.root,
                database["F"],
                [decomposition.root_signature],
                designation,
                {("D", leaf_signature): leaf_view},
                specialize=specialize,
            )[decomposition.root_signature]
            if specialize:
                reference = root_view
            else:
                for key, groups in reference.items():
                    for group_key, value in groups.items():
                        assert root_view.get(key, {}).get(group_key, 0.0) == pytest.approx(value)


def test_view_signature_count_only():
    signature = ViewSignature("R", (), (), ())
    assert signature.is_count_only()
    assert not ViewSignature("R", (("x", 1),), (), ()).is_count_only()
