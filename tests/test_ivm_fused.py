"""The fused multi-delta pass, subtree parallelism and root patching (PR 4).

Equivalence guarantees of the one-pass propagation:

- fused vs. per-relation propagation on randomized multi-relation
  insert/delete batches (including multiplicities that cancel inside one
  batch) — identical payloads up to float reassociation;
- ``parallel_deltas`` on vs. off — **bit-identical** payload stores (the
  scheduler only reorders independent work);
- the engine's root-payload patching vs. a full root recompute — equal
  aggregate values to float tolerance (patching may keep ~0.0 groups a
  recompute drops).

Plus units for the new primitives: keyed-delta merging, the level/parent
schedule, sparse lifts, single-support ring products, and the ``largest``
root strategy.
"""

import random

import numpy as np
import pytest

from repro.aggregates import covariance_batch
from repro.data import Relation, Schema
from repro.datasets import load_dataset, retailer_database, retailer_query
from repro.engine import EngineOptions, LMFAOEngine
from repro.engine.deltas import merge_keyed_deltas, subtree_schedule
from repro.engine.executor import STAT_ROOT_PATCHED, SubtreeScheduler
from repro.ivm import FIVM, Update
from repro.rings.covariance import CovarianceBlock, CovarianceRing
from streams import random_update_stream

FEATURES = ["inventoryunits", "prize", "maxtemp"]


@pytest.fixture(scope="module")
def ivm_source():
    database = retailer_database(inventory_rows=200, stores=5, items=10, dates=8, seed=33)
    return database, retailer_query()


def _payloads_match(left, right):
    return (
        np.isclose(left.count, right.count)
        and np.allclose(left.sums, right.sums)
        and np.allclose(left.moments, right.moments)
    )


def _payloads_identical(left, right):
    return (
        left.count == right.count
        and np.array_equal(left.sums, right.sums)
        and np.array_equal(left.moments, right.moments)
    )


# -- fused vs. per-relation propagation -------------------------------------------------


@pytest.mark.parametrize("batch_size", [5, 23, 400])
def test_fused_matches_per_relation(ivm_source, batch_size):
    database, query = ivm_source
    stream = random_update_stream(database, seed=7, length=400)
    fused = FIVM(database, query, FEATURES)
    unfused = FIVM(database, query, FEATURES, fused_deltas=False)
    assert fused.supports_fused_deltas and not unfused.supports_fused_deltas
    for start in range(0, len(stream), batch_size):
        fused.apply_batch(stream[start : start + batch_size])
        unfused.apply_batch(stream[start : start + batch_size])
    assert _payloads_match(fused.statistics(), unfused.statistics())
    assert _payloads_match(fused.statistics(), fused.recompute_statistics())
    # The maintained per-node views agree too, not just the root payload.
    for name, view in fused._views.items():
        other = unfused._views[name]
        assert set(view.keys()) == set(other.keys())


def test_fused_matches_recomputation_under_cancellation(ivm_source):
    database, query = ivm_source
    stream = random_update_stream(database, seed=19, length=300, cancel_fraction=0.5)
    maintainer = FIVM(database, query, FEATURES)
    for start in range(0, len(stream), 50):
        maintainer.apply_batch(stream[start : start + 50])
    assert _payloads_match(maintainer.statistics(), maintainer.recompute_statistics())
    assert maintainer.executor_stats["delta_passes"] > 0
    assert maintainer.executor_stats["delta_pass_ns"] > 0


def test_fused_interleaves_with_per_tuple(ivm_source):
    database, query = ivm_source
    stream = random_update_stream(database, seed=3, length=240)
    maintainer = FIVM(database, query, FEATURES)
    cursor = 0
    rng = random.Random(8)
    while cursor < len(stream):
        if rng.random() < 0.4:
            maintainer.apply(stream[cursor])
            cursor += 1
        else:
            step = rng.choice([4, 30, 77])
            maintainer.apply_batch(stream[cursor : cursor + step])
            cursor += step
    assert _payloads_match(maintainer.statistics(), maintainer.recompute_statistics())


# -- parallel subtree schedule ----------------------------------------------------------


@pytest.fixture
def force_pool(monkeypatch):
    """Pretend the machine is multi-core so the thread-pool path runs.

    ``SubtreeScheduler.run_groups`` falls back to inline execution on
    single-core machines (where threads cannot overlap); CI containers are
    often single-core, which would leave the pool dispatch, level barriers
    and the bit-identity claim untested.
    """
    import repro.engine.executor as executor_module

    monkeypatch.setattr(executor_module._os, "cpu_count", lambda: 4)


@pytest.mark.parametrize("batch_size", [7, 150])
def test_parallel_deltas_bit_identical(ivm_source, force_pool, batch_size):
    database, query = ivm_source
    stream = random_update_stream(database, seed=11, length=350)
    serial = FIVM(database, query, FEATURES)
    parallel = FIVM(database, query, FEATURES, parallel_deltas=True)
    for start in range(0, len(stream), batch_size):
        serial.apply_batch(stream[start : start + batch_size])
        parallel.apply_batch(stream[start : start + batch_size])
    assert _payloads_identical(serial.statistics(), parallel.statistics())
    for name, view in serial._views.items():
        other = parallel._views[name]
        assert view.keys() == other.keys()
        size = len(view)
        assert np.array_equal(view.counts[:size], other.counts[:size])
        assert np.array_equal(view.sums[:size], other.sums[:size])
        assert np.array_equal(view.moments[:size], other.moments[:size])


def test_subtree_scheduler_runs_all_and_propagates_errors(force_pool):
    seen = []
    SubtreeScheduler.run_groups([lambda: seen.append(1)])
    SubtreeScheduler.run_groups([lambda: seen.append(2), lambda: seen.append(3)])
    assert sorted(seen) == [1, 2, 3]

    def boom():
        raise RuntimeError("unit failure")

    marker = []
    with pytest.raises(RuntimeError, match="unit failure"):
        SubtreeScheduler.run_groups([boom, lambda: marker.append(1)])
    # The healthy unit still ran to completion (level barrier semantics).
    assert marker == [1]


def test_subtree_scheduler_inline_on_single_core(monkeypatch):
    import repro.engine.executor as executor_module

    monkeypatch.setattr(executor_module._os, "cpu_count", lambda: 1)
    seen = []
    SubtreeScheduler.run_groups([lambda: seen.append(1), lambda: seen.append(2)])
    assert seen == [1, 2]  # inline preserves list order

    def boom():
        raise RuntimeError("inline failure")

    marker = []
    with pytest.raises(RuntimeError, match="inline failure"):
        SubtreeScheduler.run_groups([boom, lambda: marker.append(1)])
    assert marker == [1]


def test_subtree_schedule_levels_and_groups(ivm_source):
    database, query = ivm_source
    maintainer = FIVM(database, query, FEATURES)
    schedule = subtree_schedule(maintainer.join_tree)
    # Deepest level first; the last level is exactly the root.
    assert [node.relation_name for node in schedule[-1][0]] == [
        maintainer.join_tree.root.relation_name
    ]
    seen = set()
    for level in schedule:
        for group in level:
            parents = {
                node.parent.relation_name if node.parent else None for node in group
            }
            assert len(parents) == 1  # a group shares one parent
            for node in group:
                # Children are always scheduled before their parent.
                for child in node.children:
                    assert child.relation_name in seen
                seen.add(node.relation_name)
    assert len(seen) == len(list(maintainer.join_tree.nodes()))


# -- keyed-delta merging ----------------------------------------------------------------


def test_merge_keyed_deltas_orders_and_sums():
    rng = np.random.default_rng(4)
    dim = 2
    ring = CovarianceRing(dim)

    def block(rows):
        return CovarianceBlock(
            rng.normal(size=rows),
            rng.normal(size=(rows, dim)),
            rng.normal(size=(rows, dim, dim)),
        )

    first = (["a", "b"], block(2))
    second = (["b", "c"], block(2))
    keys, merged = merge_keyed_deltas([first, second], CovarianceBlock.concatenate)
    assert keys == ["a", "b", "c"]  # first-seen order
    expected_b = ring.add(first[1].payload_at(1), second[1].payload_at(0))
    assert _payloads_match(merged.payload_at(1), expected_b)
    assert _payloads_match(merged.payload_at(0), first[1].payload_at(0))
    assert _payloads_match(merged.payload_at(2), second[1].payload_at(1))

    # Identical key lists take the elementwise fast path; same result.
    third = (["a", "b"], block(2))
    keys2, merged2 = merge_keyed_deltas([first, third], CovarianceBlock.concatenate)
    assert keys2 == ["a", "b"]
    for position in range(2):
        assert _payloads_match(
            merged2.payload_at(position),
            ring.add(first[1].payload_at(position), third[1].payload_at(position)),
        )

    # A single contribution passes through untouched.
    same_keys, same_block = merge_keyed_deltas([first], CovarianceBlock.concatenate)
    assert same_keys is first[0] and same_block is first[1]


# -- ring primitives --------------------------------------------------------------------


def test_sparse_lift_matches_dense():
    rng = np.random.default_rng(9)
    size, dim = 17, 6
    positions = [1, 4]
    features = np.zeros((size, dim))
    for position in positions:
        features[:, position] = rng.normal(size=size)
    weights = rng.integers(-2, 3, size=size).astype(float)
    sparse = CovarianceBlock.lift(features, weights, positions)
    dense = CovarianceBlock.lift(features, weights)
    assert np.allclose(sparse.counts, dense.counts)
    assert np.allclose(sparse.sums, dense.sums)
    assert np.allclose(sparse.moments, dense.moments)
    # Unweighted variant too.
    sparse1 = CovarianceBlock.lift(features, None, positions)
    dense1 = CovarianceBlock.lift(features)
    assert np.allclose(sparse1.moments, dense1.moments)


def test_multiply_point_matches_general():
    rng = np.random.default_rng(13)
    size, dim = 11, 5
    position = 3
    block = CovarianceBlock(
        rng.normal(size=size),
        rng.normal(size=(size, dim)),
        rng.normal(size=(size, dim, dim)),
    )
    counts = rng.normal(size=size)
    sums_at = rng.normal(size=size)
    moments_at = rng.normal(size=size)
    other = CovarianceBlock.zeros(size, dim)
    other.counts[:] = counts
    other.sums[:, position] = sums_at
    other.moments[:, position, position] = moments_at
    fused = block.multiply_point(counts, sums_at, moments_at, position)
    general = block.multiply(other)
    assert np.allclose(fused.counts, general.counts)
    assert np.allclose(fused.sums, general.sums)
    assert np.allclose(fused.moments, general.moments)


def test_segment_sum_single_group_fast_path():
    rng = np.random.default_rng(2)
    block = CovarianceBlock(
        rng.normal(size=9), rng.normal(size=(9, 3)), rng.normal(size=(9, 3, 3))
    )
    summed = block.segment_sum(np.zeros(9, dtype=np.int64), 1)
    assert np.isclose(summed.counts[0], block.counts.sum())
    assert np.allclose(summed.sums[0], block.sums.sum(axis=0))
    assert np.allclose(summed.moments[0], block.moments.sum(axis=0))


# -- update-mass rooting ----------------------------------------------------------------


def test_largest_root_strategy_roots_at_fact_table(ivm_source):
    database, query = ivm_source
    maintainer = FIVM(database, query, FEATURES)  # default: "largest"
    largest = max(query.relation_names, key=lambda name: len(database.relation(name)))
    assert maintainer.join_tree.root.relation_name == largest
    forced = FIVM(database, query, FEATURES, root_strategy="cost")
    stream = random_update_stream(database, seed=21, length=150)
    maintainer.apply_batch(stream)
    forced.apply_batch(stream)
    assert _payloads_match(maintainer.statistics(), forced.statistics())


def test_largest_root_strategy_rejects_unknown(ivm_source):
    database, query = ivm_source
    with pytest.raises(ValueError, match="root_strategy"):
        FIVM(database, query, FEATURES, root_strategy="bogus")


# -- engine root patching ---------------------------------------------------------------


def _engine_values_match(left, right, rtol=1e-9, atol=1e-6):
    assert set(left) == set(right)
    for name in left:
        a, b = left[name], right[name]
        if isinstance(a, dict):
            keys = set(a) | set(b)
            assert all(
                np.isclose(a.get(k, 0.0), b.get(k, 0.0), rtol=rtol, atol=atol)
                for k in keys
            ), name
        else:
            assert np.isclose(a, b, rtol=rtol, atol=atol), name


@pytest.mark.parametrize("root", [None, "fact"])
def test_root_patching_matches_full_recompute(root):
    database, query, spec = load_dataset(
        "retailer", inventory_rows=400, stores=6, items=20, dates=10
    )
    batch = covariance_batch(spec.continuous_features, spec.categorical_features)
    fact = max(query.relation_names, key=lambda name: len(database.relation(name)))
    options = dict(root_relation=fact) if root == "fact" else {}
    patching = LMFAOEngine(
        database, query, EngineOptions(root_patching=True, **options)
    )
    recompute = LMFAOEngine(
        database, query, EngineOptions(root_patching=False, **options)
    )
    patching.evaluate(batch)
    recompute.evaluate(batch)
    rng = random.Random(29)
    relations = list(query.relation_names)
    patched = 0
    for _step in range(10):
        name = rng.choice(relations)
        relation = database.relation(name)
        row = rng.choice(list(relation))
        sign = -1 if (rng.random() < 0.3 and relation.multiplicity(row) > 0) else 1
        relation.add(row, sign)
        left = patching.evaluate(batch)
        right = recompute.evaluate(batch)
        _engine_values_match(left.values, right.values)
        patched += left.executor_stats.get(STAT_ROOT_PATCHED, 0)
    assert patched > 0


def test_root_patching_respects_delta_refresh_limit():
    database, query, spec = load_dataset(
        "retailer", inventory_rows=300, stores=5, items=15, dates=8
    )
    batch = covariance_batch(spec.continuous_features, spec.categorical_features)
    fact = max(query.relation_names, key=lambda name: len(database.relation(name)))
    engine = LMFAOEngine(
        database,
        query,
        EngineOptions(root_relation=fact, delta_refresh_limit=0),
    )
    engine.evaluate(batch)
    row = next(iter(database.relation(fact)))
    database.relation(fact).add(row, 1)
    result = engine.evaluate(batch)
    # Limit 0 disables patching; the root recomputes and stays correct.
    assert result.executor_stats.get(STAT_ROOT_PATCHED, 0) == 0
    reference = LMFAOEngine(database, query, EngineOptions(root_relation=fact))
    _engine_values_match(result.values, reference.evaluate(batch).values)
    database.relation(fact).add(row, -1)


def test_root_patching_handles_deletions_to_float_tolerance():
    database, query, spec = load_dataset(
        "retailer", inventory_rows=300, stores=5, items=15, dates=8
    )
    batch = covariance_batch(spec.continuous_features, spec.categorical_features)
    fact = max(query.relation_names, key=lambda name: len(database.relation(name)))
    engine = LMFAOEngine(database, query, EngineOptions(root_relation=fact))
    engine.evaluate(batch)
    rows = list(database.relation(fact))[:3]
    for row in rows:
        database.relation(fact).add(row, 1)
        engine.evaluate(batch)
    for row in rows:
        database.relation(fact).add(row, -1)
        result = engine.evaluate(batch)
    fresh = LMFAOEngine(
        database, query, EngineOptions(root_relation=fact, cache_views=False)
    )
    _engine_values_match(result.values, fresh.evaluate(batch).values)


# -- change-log grouping ----------------------------------------------------------------


def test_add_batch_logs_one_group():
    relation = Relation("R", Schema.from_names(["a"], categorical_names=["a"]))
    start = relation.version
    relation.add_batch([("x",), ("y",)], [1, 2])
    assert relation.changes_since(start) == [(("x",), 1), (("y",), 2)]
    # One batch consumed one log slot, not two (an array-slice group in the
    # tuple store's log, since every row of the batch was a fresh append).
    assert len(relation._store._log) == 1
    assert relation._store._log[0].is_slice
    # An oversized batch drops coverage instead of pinning the rows.
    big = [(f"v{i}",) for i in range(500)]
    version = relation.version
    relation.add_batch(big, [1] * len(big))
    assert relation.changes_since(version) is None
    assert relation.changes_since(relation.version) == []
