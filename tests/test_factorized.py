"""Tests for factorised joins and ring-based aggregate evaluation.

Includes the property-based invariant at the heart of the approach: the
factorised join represents exactly the same set of tuples as the flat join,
and aggregates evaluated over the factorisation equal aggregates evaluated
over the flat result.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Database, Relation, Schema, algebra
from repro.datasets import orders_database, orders_query
from repro.datasets.toy import orders_variable_order_spec
from repro.factorized import factorize_join
from repro.factorized.aggregates import (
    count_over_factorization,
    covariance_over_factorization,
    group_by_sum_over_factorization,
    sum_of_squares_over_factorization,
    sum_product_over_factorization,
)
from repro.query import ConjunctiveQuery
from repro.query.variable_order import order_from_nested


def _flat_rows(query, database):
    joined = query.evaluate(database)
    return joined, list(joined.expanded_rows())


# -- toy example (Figures 7-9) ----------------------------------------------------------------------


def test_factorized_join_represents_flat_join(toy_database, toy_query):
    factorization = factorize_join(toy_query, toy_database)
    joined = toy_query.evaluate(toy_database)
    flat = {tuple(sorted(zip(joined.schema.names, row))) for row in joined}
    factored = {
        tuple(sorted(zip(factorization.variables, row))) for row in factorization.tuples()
    }
    assert factored == flat
    assert factorization.flat_size() == 12


def test_paper_variable_order_compression(toy_database, toy_query):
    hypergraph = toy_query.hypergraph(toy_database)
    order = order_from_nested(orders_variable_order_spec(), hypergraph)
    factorization = factorize_join(toy_query, toy_database, order=order)
    # 12 tuples x 5 attributes = 60 values flat; the factorisation is smaller.
    assert factorization.flat_value_count() == 60
    assert factorization.size() < 30
    assert factorization.compression_ratio() > 2.0
    assert factorization.cache_hits > 0


def test_count_matches_figure9(toy_database, toy_query):
    factorization = factorize_join(toy_query, toy_database)
    assert count_over_factorization(factorization) == 12


def test_group_by_sum_matches_figure9(toy_database, toy_query):
    factorization = factorize_join(toy_query, toy_database)
    grouped = group_by_sum_over_factorization(factorization, ["dish"], ["price"])
    assert grouped[("burger",)] == pytest.approx(20.0)
    assert grouped[("hotdog",)] == pytest.approx(16.0)


def test_covariance_ring_matches_figure10(toy_database, toy_query):
    factorization = factorize_join(toy_query, toy_database)
    payload = covariance_over_factorization(factorization, ["price"])
    assert payload.count == pytest.approx(12)
    assert payload.sums[0] == pytest.approx(36.0)
    assert payload.moments[0, 0] == pytest.approx(136.0)


def test_sum_of_squares_and_sum_product(toy_database, toy_query):
    factorization = factorize_join(toy_query, toy_database)
    joined, rows = _flat_rows(toy_query, toy_database)
    price_index = joined.schema.index_of("price")
    expected_square = sum(row[price_index] ** 2 for row in rows)
    assert sum_of_squares_over_factorization(factorization, "price") == pytest.approx(expected_square)
    expected_sum = sum(row[price_index] for row in rows)
    assert sum_product_over_factorization(factorization, ["price"]) == pytest.approx(expected_sum)


def test_empty_join_factorizes_to_empty(toy_database, toy_query):
    empty = toy_database.copy()
    empty["Items"].clear()
    factorization = factorize_join(toy_query, empty)
    assert factorization.flat_size() == 0
    assert count_over_factorization(factorization) == 0


def test_dangling_tuples_are_pruned(toy_database, toy_query):
    # A dish no customer ordered must not appear in the join.
    toy_database["Dish"].add(("pizza", "cheese"))
    toy_database["Items"].add(("cheese", 3))
    factorization = factorize_join(toy_query, toy_database)
    assert all("pizza" not in row for row in factorization.tuples())


def test_factorization_respects_explicit_root(small_retailer, small_retailer_query):
    fact_rooted = factorize_join(small_retailer_query, small_retailer, root_relation="Inventory")
    joined = small_retailer_query.evaluate(small_retailer)
    assert fact_rooted.flat_size() == len(joined)


# -- property-based invariants -------------------------------------------------------------------------


@st.composite
def random_three_relation_database(draw):
    """A random acyclic three-relation database R(a,b) ⋈ S(b,c) ⋈ T(c,d).

    Rows are unique so every tuple has multiplicity one: factorised
    representations are set-based and do not encode multiplicities.
    """
    domain = st.integers(min_value=0, max_value=3)
    rows_r = draw(st.lists(st.tuples(domain, domain), min_size=0, max_size=8, unique=True))
    rows_s = draw(st.lists(st.tuples(domain, domain), min_size=0, max_size=8, unique=True))
    rows_t = draw(st.lists(st.tuples(domain, domain), min_size=0, max_size=8, unique=True))
    database = Database(
        [
            Relation("R", Schema.from_names(["a", "b"]), rows=rows_r),
            Relation("S", Schema.from_names(["b", "c"]), rows=rows_s),
            Relation("T", Schema.from_names(["c", "d"]), rows=rows_t),
        ]
    )
    return database


@settings(max_examples=40, deadline=None)
@given(random_three_relation_database())
def test_factorized_join_equals_flat_join_property(database):
    query = ConjunctiveQuery(["R", "S", "T"])
    factorization = factorize_join(query, database)
    joined = query.evaluate(database)
    flat = sorted(
        tuple(sorted(zip(joined.schema.names, row))) for row in joined.expanded_rows()
    )
    factored = sorted(
        tuple(sorted(zip(factorization.variables, row))) for row in factorization.tuples()
    )
    assert factored == flat


@settings(max_examples=40, deadline=None)
@given(random_three_relation_database())
def test_aggregates_over_factorization_match_flat_property(database):
    query = ConjunctiveQuery(["R", "S", "T"])
    factorization = factorize_join(query, database)
    joined = query.evaluate(database)
    rows = list(joined.expanded_rows())
    names = joined.schema.names

    assert count_over_factorization(factorization) == len(rows)

    expected_sum_ad = sum(row[names.index("a")] * row[names.index("d")] for row in rows)
    assert sum_product_over_factorization(factorization, ["a", "d"]) == pytest.approx(
        float(expected_sum_ad)
    )

    grouped = group_by_sum_over_factorization(factorization, ["b"], ["d"])
    expected_grouped = {}
    for row in rows:
        key = (row[names.index("b")],)
        expected_grouped[key] = expected_grouped.get(key, 0.0) + float(row[names.index("d")])
    for key in set(grouped) | set(expected_grouped):
        assert grouped.get(key, 0.0) == pytest.approx(expected_grouped.get(key, 0.0))


@settings(max_examples=25, deadline=None)
@given(random_three_relation_database())
def test_covariance_payload_matches_reference_property(database):
    query = ConjunctiveQuery(["R", "S", "T"])
    factorization = factorize_join(query, database)
    joined = query.evaluate(database)
    names = joined.schema.names
    rows = [
        [float(row[names.index(feature)]) for feature in ("a", "d")]
        for row in joined.expanded_rows()
    ]
    payload = covariance_over_factorization(factorization, ["a", "d"])
    assert payload.count == pytest.approx(len(rows))
    if rows:
        matrix = np.array(rows)
        assert np.allclose(payload.sums, matrix.sum(axis=0))
        assert np.allclose(payload.moments, matrix.T @ matrix)
