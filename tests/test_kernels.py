"""The pluggable kernel backend (PR 8): units, equivalence, policy, stats.

Four layers of coverage for :mod:`repro.kernels`:

- every kernel in the registry against a *naive* dense reference (plain
  per-row ring algebra with no sparsity or fusion tricks);
- cross-backend equivalence — per kernel on dyadic inputs, and end-to-end
  on randomized cancel-heavy update streams through all three IVM
  strategies, where the package's determinism contract promises *bitwise*
  identical payloads (the suites use dyadic feature values so even
  ``segment_sum``'s backend-defined association cannot differ);
- backend selection (``set_backend`` / ``EngineOptions.kernel_backend``)
  including the guarded-import failure modes when numba is absent;
- the observability path: ``enable_kernel_stats`` counters flowing into
  ``executor_stats`` and ``QueryServer.serving_stats()``.

The numba parametrizations skip cleanly when numba is not importable (the
growth container does not ship it); the CI matrix runs one job with numba
installed so the compiled path stays exercised.
"""

import math

import numpy as np
import pytest

from repro import kernels
from repro.aggregates import Aggregate, AggregateBatch
from repro.data import Database, Relation, Schema
from repro.engine import EngineOptions, LMFAOEngine
from repro.ivm import FIVM, FirstOrderIVM, HigherOrderIVM, Update
from repro.kernels import numba_backend, numpy_backend
from repro.query import ConjunctiveQuery
from repro.serving import QueryServer
from streams import random_update_stream

NUMBA_MISSING = not numba_backend.available()
needs_numba = pytest.mark.skipif(
    NUMBA_MISSING, reason="numba not importable in this interpreter"
)

BACKENDS = [
    pytest.param("numpy"),
    pytest.param("numba", marks=needs_numba),
]

STRATEGIES = [FirstOrderIVM, HigherOrderIVM, FIVM]

DIMENSION = 6
ROWS = 40
SEGMENTS = 7
POSITIONS = [1, 3, 4]


@pytest.fixture
def restore_backend():
    """Undo any process-global backend/stats changes a test makes."""
    original = kernels.current_backend()
    stats_were_on = kernels.kernel_stats_enabled()
    yield
    kernels.set_backend(original)
    kernels.enable_kernel_stats(stats_were_on)
    kernels.reset_kernel_stats()


@pytest.fixture(params=BACKENDS)
def backend(request, restore_backend):
    """Run the test once per installed backend, restoring afterwards."""
    return kernels.set_backend(request.param)


def _impls(name):
    """The raw kernel dict of a backend (bypassing the stats wrappers)."""
    if name == "numpy":
        return dict(numpy_backend.KERNELS)
    overrides = numba_backend.load()
    assert overrides is not None
    return {**numpy_backend.KERNELS, **overrides}


# -- input builders ---------------------------------------------------------------------


def _dyadic(rng, shape, denominator=8.0, span=32):
    """Arrays of dyadic rationals: sums and small products stay exact."""
    return rng.integers(-span, span + 1, size=shape).astype(np.float64) / denominator


def _stacks(seed=11):
    rng = np.random.default_rng(seed)
    counts = rng.integers(1, 5, size=ROWS).astype(np.float64)
    sums = _dyadic(rng, (ROWS, DIMENSION))
    moments = _dyadic(rng, (ROWS, DIMENSION, DIMENSION))
    counts2 = rng.integers(1, 5, size=ROWS).astype(np.float64)
    sums2 = _dyadic(rng, (ROWS, DIMENSION))
    moments2 = _dyadic(rng, (ROWS, DIMENSION, DIMENSION))
    return counts, sums, moments, counts2, sums2, moments2


def _sparse_features(rng):
    features = np.zeros((ROWS, DIMENSION))
    for position in POSITIONS:
        features[:, position] = _dyadic(rng, ROWS)
    return features


# -- naive references -------------------------------------------------------------------


def _naive_multiply_row(a, b):
    """The textbook covariance-ring product of two payloads (one row)."""
    c1, s1, m1 = a
    c2, s2, m2 = b
    return (
        c1 * c2,
        c2 * s1 + c1 * s2,
        c2 * m1 + c1 * m2 + np.outer(s1, s2) + np.outer(s2, s1),
    )


def _naive_lift_row(features_row, weight):
    return (
        weight,
        weight * features_row,
        weight * np.outer(features_row, features_row),
    )


def _naive_segment_sum(counts, sums, moments, codes, size):
    out_counts = np.zeros(size)
    out_sums = np.zeros((size, sums.shape[1]))
    out_moments = np.zeros((size, sums.shape[1], sums.shape[1]))
    for row in range(counts.shape[0]):
        group = codes[row]
        out_counts[group] += counts[row]
        out_sums[group] += sums[row]
        out_moments[group] += moments[row]
    return out_counts, out_sums, out_moments


def _assert_stacks_close(actual, expected):
    for got, want in zip(actual, expected):
        assert np.allclose(got, want)


# -- per-kernel units against the naive references --------------------------------------


def test_segment_sum_matches_naive(backend):
    active = kernels.get_kernels()
    rng = np.random.default_rng(3)
    counts, sums, moments = _stacks()[0:3]
    codes = rng.integers(0, SEGMENTS, size=ROWS)
    result = active.segment_sum(counts, sums, moments, codes, SEGMENTS)
    _assert_stacks_close(result, _naive_segment_sum(counts, sums, moments, codes, SEGMENTS))


def test_segment_sum_empty_input(backend):
    active = kernels.get_kernels()
    out_counts, out_sums, out_moments = active.segment_sum(
        np.zeros(0), np.zeros((0, DIMENSION)), np.zeros((0, DIMENSION, DIMENSION)),
        np.zeros(0, dtype=np.int64), SEGMENTS,
    )
    assert out_counts.shape == (SEGMENTS,)
    assert not out_counts.any() and not out_sums.any() and not out_moments.any()


def test_lift_sparse_matches_naive(backend):
    active = kernels.get_kernels()
    rng = np.random.default_rng(5)
    features = _sparse_features(rng)
    weights = rng.integers(1, 4, size=ROWS).astype(np.float64)
    counts, sums, moments = active.lift_sparse(features, weights, POSITIONS)
    for row in range(ROWS):
        want = _naive_lift_row(features[row], weights[row])
        _assert_stacks_close((counts[row], sums[row], moments[row]), want)


def test_lift_sparse_unit_matches_naive(backend):
    active = kernels.get_kernels()
    rng = np.random.default_rng(7)
    features = _sparse_features(rng)
    counts, sums, moments = active.lift_sparse_unit(features, POSITIONS)
    for row in range(ROWS):
        want = _naive_lift_row(features[row], 1.0)
        _assert_stacks_close((counts[row], sums[row], moments[row]), want)


def test_multiply_elementwise_matches_naive(backend):
    active = kernels.get_kernels()
    counts, sums, moments, counts2, sums2, moments2 = _stacks()
    result = active.multiply_elementwise(counts, sums, moments, counts2, sums2, moments2)
    for row in range(ROWS):
        want = _naive_multiply_row(
            (counts[row], sums[row], moments[row]),
            (counts2[row], sums2[row], moments2[row]),
        )
        _assert_stacks_close(
            (result[0][row], result[1][row], result[2][row]), want
        )


def test_multiply_point_matches_naive(backend):
    active = kernels.get_kernels()
    rng = np.random.default_rng(9)
    counts, sums, moments, counts2 = _stacks()[0:4]
    sums_at = _dyadic(rng, ROWS)
    moments_at = _dyadic(rng, ROWS)
    position = 2
    result = active.multiply_point(
        counts, sums, moments, counts2, sums_at, moments_at, position
    )
    for row in range(ROWS):
        dense_sums = np.zeros(DIMENSION)
        dense_sums[position] = sums_at[row]
        dense_moments = np.zeros((DIMENSION, DIMENSION))
        dense_moments[position, position] = moments_at[row]
        want = _naive_multiply_row(
            (counts[row], sums[row], moments[row]),
            (counts2[row], dense_sums, dense_moments),
        )
        _assert_stacks_close((result[0][row], result[1][row], result[2][row]), want)


def test_multiply_lifted_matches_naive(backend):
    active = kernels.get_kernels()
    rng = np.random.default_rng(13)
    counts, sums, moments = _stacks()[0:3]
    features = _sparse_features(rng)
    weights = rng.integers(1, 4, size=ROWS).astype(np.float64)
    result = active.multiply_lifted(counts, sums, moments, features, weights, POSITIONS)
    for row in range(ROWS):
        want = _naive_multiply_row(
            (counts[row], sums[row], moments[row]),
            _naive_lift_row(features[row], weights[row]),
        )
        _assert_stacks_close((result[0][row], result[1][row], result[2][row]), want)


def test_scratch_reset_lift_matches_naive(backend):
    active = kernels.get_kernels()
    sums = np.full(DIMENSION, 99.0)
    moments = np.full((DIMENSION, DIMENSION), 99.0)
    pairs = [(1, 0.5), (3, -2.25), (4, 1.75)]
    multiplicity = -2.0
    active.scratch_reset_lift(sums, moments, multiplicity, pairs)
    dense = np.zeros(DIMENSION)
    for position, value in pairs:
        dense[position] = value
    want = _naive_lift_row(dense, multiplicity)
    assert np.allclose(sums, want[1])
    assert np.allclose(moments, want[2])


def test_scratch_multiply_point_matches_naive(backend):
    active = kernels.get_kernels()
    rng = np.random.default_rng(17)
    sums = _dyadic(rng, DIMENSION)
    moments = _dyadic(rng, (DIMENSION, DIMENSION))
    count, count2, sum_at, moment_at, position = 3.0, 2.0, 1.25, 0.5, 3
    dense_sums = np.zeros(DIMENSION)
    dense_sums[position] = sum_at
    dense_moments = np.zeros((DIMENSION, DIMENSION))
    dense_moments[position, position] = moment_at
    want = _naive_multiply_row(
        (count, sums.copy(), moments.copy()), (count2, dense_sums, dense_moments)
    )
    out_count = active.scratch_multiply_point(
        count, sums, moments, count2, sum_at, moment_at, position
    )
    assert out_count == want[0]
    assert np.allclose(sums, want[1])
    assert np.allclose(moments, want[2])


def test_scratch_multiply_dense_matches_naive(backend):
    active = kernels.get_kernels()
    rng = np.random.default_rng(19)
    sums = _dyadic(rng, DIMENSION)
    moments = _dyadic(rng, (DIMENSION, DIMENSION))
    sums2 = _dyadic(rng, DIMENSION)
    moments2 = _dyadic(rng, (DIMENSION, DIMENSION))
    count, count2 = 3.0, -2.0
    want = _naive_multiply_row(
        (count, sums.copy(), moments.copy()), (count2, sums2, moments2)
    )
    out_count = active.scratch_multiply_dense(count, sums, moments, count2, sums2, moments2)
    assert out_count == want[0]
    assert np.allclose(sums, want[1])
    assert np.allclose(moments, want[2])


def test_net_deltas_matches_reference(backend):
    active = kernels.get_kernels()
    mults = np.array([0.0, 2.0, -1.0, 0.0, 3.0, 1.0])
    # Repeated slots in one call, nets through zero both ways.
    slots = np.array([0, 1, 1, 2, 4, 0, 5], dtype=np.int64)
    deltas = np.array([1.0, -2.0, 1.0, 1.0, -3.0, -1.0, 2.0])
    expected = mults.copy()
    for slot, delta in zip(slots, deltas):
        expected[slot] += delta
    live_before = int((mults != 0.0).sum())
    live_after = int((expected != 0.0).sum())
    live_delta, zeros_delta, total_delta = active.net_deltas(mults, slots, deltas)
    assert np.array_equal(mults, expected)
    assert live_delta == live_after - live_before
    assert zeros_delta == -live_delta
    assert math.isclose(total_delta, float(deltas.sum()))


def test_net_deltas_single_slot(backend):
    active = kernels.get_kernels()
    mults = np.array([1.0, -1.0])
    live_delta, zeros_delta, total_delta = active.net_deltas(
        mults, np.array([1], dtype=np.int64), np.array([1.0])
    )
    assert np.array_equal(mults, np.array([1.0, 0.0]))
    assert (live_delta, zeros_delta, total_delta) == (-1, 1, 1.0)


def test_compact_keep_matches_reference(backend):
    active = kernels.get_kernels()
    mults = np.array([0.0, 2.0, 0.0, -1.0, 0.0, 5.0])
    kept = active.compact_keep(mults)
    assert np.array_equal(np.asarray(kept), np.array([1, 3, 5]))
    assert active.compact_keep(np.zeros(4)).shape == (0,)


# -- cross-backend bit identity ---------------------------------------------------------


def _kernel_workloads(seed=23):
    """Dyadic-valued arguments per kernel and whether the kernel mutates."""
    rng = np.random.default_rng(seed)
    counts, sums, moments, counts2, sums2, moments2 = _stacks(seed)
    codes = rng.integers(0, SEGMENTS, size=ROWS)
    features = _sparse_features(rng)
    weights = rng.integers(1, 4, size=ROWS).astype(np.float64)
    scratch_sums = _dyadic(rng, DIMENSION)
    scratch_moments = _dyadic(rng, (DIMENSION, DIMENSION))
    pairs = [(position, 0.25 * (position + 1)) for position in POSITIONS]
    mults = rng.integers(-2, 3, size=64).astype(np.float64)
    slots = rng.integers(0, 64, size=24).astype(np.int64)
    deltas = rng.integers(-2, 3, size=24).astype(np.float64)
    return {
        "segment_sum": ((counts, sums, moments, codes, SEGMENTS), False),
        "lift_sparse": ((features, weights, POSITIONS), False),
        "lift_sparse_unit": ((features, POSITIONS), False),
        "multiply_elementwise": (
            (counts, sums, moments, counts2, sums2, moments2), False
        ),
        "multiply_point": (
            (counts, sums, moments, counts2, _dyadic(rng, ROWS), _dyadic(rng, ROWS), 2),
            False,
        ),
        "multiply_lifted": ((counts, sums, moments, features, weights, POSITIONS), False),
        "scratch_reset_lift": ((scratch_sums, scratch_moments, 2.0, pairs), True),
        "scratch_multiply_point": (
            (3.0, scratch_sums, scratch_moments, 2.0, 1.25, 0.5, 3), True
        ),
        "scratch_multiply_dense": (
            (3.0, scratch_sums, scratch_moments, -2.0, sums[0], moments[0]), True
        ),
        "net_deltas": ((mults, slots, deltas), True),
        "compact_keep": ((mults,), True),
    }


def _copy_args(args):
    return tuple(
        value.copy() if isinstance(value, np.ndarray) else value for value in args
    )


def _flatten(result, args):
    """Everything a kernel call produced: outputs plus (possibly mutated) inputs."""
    out = []
    if isinstance(result, tuple):
        out.extend(result)
    elif result is not None:
        out.append(result)
    out.extend(value for value in args if isinstance(value, np.ndarray))
    return out


@needs_numba
@pytest.mark.parametrize("kernel_name", kernels.KERNEL_NAMES)
def test_backends_bit_identical_per_kernel(kernel_name):
    """On dyadic inputs every kernel must agree across backends *bitwise*."""
    args, _mutates = _kernel_workloads()[kernel_name]
    outputs = {}
    for backend_name in ("numpy", "numba"):
        call_args = _copy_args(args)
        result = _impls(backend_name)[kernel_name](*call_args)
        outputs[backend_name] = _flatten(result, call_args)
    assert len(outputs["numpy"]) == len(outputs["numba"])
    for reference, candidate in zip(outputs["numpy"], outputs["numba"]):
        assert np.array_equal(np.asarray(reference), np.asarray(candidate)), kernel_name


# -- end-to-end: cancel-heavy streams through the maintainers ---------------------------


FEATURES = ["m", "x", "y"]


def _dyadic_star_database(seed=17, fact_rows=90, keys=6):
    """The F/D1/D2 star with dyadic feature values (exact ring arithmetic)."""
    rng = np.random.default_rng(seed)

    def dyadic_scalar():
        return float(rng.integers(-32, 33)) / 8.0

    fact_rows_list = [
        (int(rng.integers(keys)), int(rng.integers(keys)), dyadic_scalar())
        for _ in range(fact_rows)
    ]
    database = Database(
        [
            Relation(
                "F",
                Schema.from_names(["k1", "k2", "m"], ["k1", "k2"]),
                rows=fact_rows_list,
            ),
            Relation(
                "D1",
                Schema.from_names(["k1", "x"], ["k1"]),
                rows=[(key, dyadic_scalar()) for key in range(keys)],
            ),
            Relation(
                "D2",
                Schema.from_names(["k2", "y"], ["k2"]),
                rows=[(key, dyadic_scalar()) for key in range(keys)],
            ),
        ]
    )
    return database, ConjunctiveQuery(["F", "D1", "D2"])


def _run_stream(strategy, backend_name, stream_seed=29):
    """One maintainer over a cancel-heavy stream: per-tuple then batched."""
    kernels.set_backend(backend_name)
    database, query = _dyadic_star_database()
    stream = random_update_stream(database, seed=stream_seed, length=160)
    maintainer = strategy(database, query, FEATURES)
    half = len(stream) // 2
    # First half per tuple (the scalar scratch kernels), second half in
    # batches (segment sums, fused lifts, netting/compaction).
    for update in stream[:half]:
        maintainer.apply(update)
    for start in range(half, len(stream), 9):
        maintainer.apply_batch(stream[start : start + 9])
    payload = maintainer.statistics()
    return float(payload.count), payload.sums.copy(), payload.moments.copy()


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_cancel_heavy_stream_bit_identical_across_backends(strategy, restore_backend):
    count, sums, moments = _run_stream(strategy, "numpy")
    # Same backend, fresh maintainer: the pipeline itself must be
    # deterministic before cross-backend identity means anything.
    rerun = _run_stream(strategy, "numpy")
    assert count == rerun[0]
    assert np.array_equal(sums, rerun[1])
    assert np.array_equal(moments, rerun[2])
    for backend_name in kernels.available_backends():
        other = _run_stream(strategy, backend_name)
        assert count == other[0], backend_name
        assert np.array_equal(sums, other[1]), backend_name
        assert np.array_equal(moments, other[2]), backend_name


# -- backend selection ------------------------------------------------------------------


def test_registry_serves_every_kernel(backend):
    active = kernels.get_kernels()
    assert active.backend == backend
    for name in kernels.KERNEL_NAMES:
        assert callable(getattr(active, name))


def test_set_backend_rejects_unknown_names(restore_backend):
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.set_backend("fortran")


def test_selection_honours_availability(restore_backend):
    assert kernels.set_backend("numpy") == "numpy"
    assert kernels.current_backend() == "numpy"
    if NUMBA_MISSING:
        assert kernels.available_backends() == ("numpy",)
        assert kernels.set_backend("auto") == "numpy"
        with pytest.raises(RuntimeError, match="numba is not importable"):
            kernels.set_backend("numba")
    else:
        assert kernels.available_backends() == ("numpy", "numba")
        assert kernels.set_backend("auto") == "numba"
        assert kernels.set_backend("numba") == "numba"


def test_engine_options_validate_kernel_backend():
    with pytest.raises(ValueError, match="kernel_backend"):
        EngineOptions(kernel_backend="fortran")
    with pytest.raises(ValueError, match="delta_refresh"):
        EngineOptions(delta_refresh="sometimes")


def test_engine_forwards_kernel_backend(restore_backend):
    database, query = _dyadic_star_database()
    if not NUMBA_MISSING:
        kernels.set_backend("numba")
    LMFAOEngine(database, query, EngineOptions(kernel_backend="numpy"))
    assert kernels.current_backend() == "numpy"
    if NUMBA_MISSING:
        with pytest.raises(RuntimeError, match="numba is not importable"):
            LMFAOEngine(database, query, EngineOptions(kernel_backend="numba"))


# -- the adaptive delta-refresh policy --------------------------------------------------


def test_refresh_budget_scales_only_under_auto():
    static = EngineOptions(delta_refresh=True, delta_refresh_limit=64)
    assert static.refresh_budget(100_000) == 64
    adaptive = EngineOptions(delta_refresh="auto", delta_refresh_limit=64)
    assert adaptive.refresh_budget(0) == 64
    assert adaptive.refresh_budget(10) == 64
    assert adaptive.refresh_budget(1_000) == 250


def _star_batch():
    return AggregateBatch(
        "kernels_pr8",
        [
            Aggregate.count(name="count"),
            Aggregate.sum_of(["m"], name="sum_m"),
            Aggregate.sum_of(["m", "x"], name="sum_mx"),
            Aggregate.sum_of(["y"], group_by=["k1"], name="y_by_k1"),
        ],
    )


def _assert_values_close(reference, candidate):
    assert set(reference.values) == set(candidate.values)
    for name, value in reference.values.items():
        other = candidate.values[name]
        if isinstance(value, dict):
            assert set(value) == set(other), name
            for key in value:
                assert math.isclose(value[key], other[key], rel_tol=1e-9, abs_tol=1e-9), name
        else:
            assert math.isclose(value, other, rel_tol=1e-9, abs_tol=1e-9), name


def test_delta_refresh_auto_matches_both_static_policies():
    """"auto" must agree with static refresh/evict on every update step."""
    database, query = _dyadic_star_database()
    engines = {
        policy: LMFAOEngine(database, query, EngineOptions(delta_refresh=policy))
        for policy in (True, False, "auto")
    }
    batch = _star_batch()
    results = {policy: engine.evaluate(batch) for policy, engine in engines.items()}
    _assert_values_close(results[False], results[True])
    _assert_values_close(results[False], results["auto"])
    fact = database["F"]
    for step in range(6):
        row = (step % 3, (step + 1) % 3, 0.125 * (step + 1))
        fact.add(row)
        if step % 2:
            fact.remove(row)
        results = {policy: engine.evaluate(batch) for policy, engine in engines.items()}
        _assert_values_close(results[False], results[True])
        _assert_values_close(results[False], results["auto"])


# -- observability ----------------------------------------------------------------------


def test_kernel_stats_flow_into_executor_and_serving_stats(restore_backend):
    kernels.set_backend("numpy")
    database, query = _dyadic_star_database()
    maintainer = FIVM(database, query, FEATURES)
    stream = random_update_stream(database, seed=3, length=40)
    kernels.enable_kernel_stats(True)
    kernels.reset_kernel_stats()

    maintainer.apply_batch(stream[:30])
    stats = maintainer.executor_stats
    call_keys = [
        key for key in stats if key.startswith("kernel_") and key.endswith("_calls")
    ]
    assert call_keys, "apply_batch should fold kernel counters into executor_stats"
    assert all(stats[key] > 0 for key in call_keys)
    for key in call_keys:
        assert stats[key.replace("_calls", "_ns")] > 0

    # The per-tuple path drives the scalar scratch kernels.
    kernels.reset_kernel_stats()
    maintainer.apply(stream[30])
    counters = kernels.kernel_stats()
    assert counters["scratch_reset_lift"]["calls"] > 0

    server = QueryServer(maintainer, readers=1)
    try:
        server.apply_batch(stream[31:40])
        block = server.serving_stats()
        assert block["kernel_backend"] == "numpy"
        assert block["kernel_stats"], "serving_stats should surface non-zero counters"
        for counter in block["kernel_stats"].values():
            assert counter["calls"] > 0
    finally:
        server.close()


def test_kernel_stats_disabled_by_default_and_resettable(restore_backend):
    kernels.enable_kernel_stats(False)
    kernels.reset_kernel_stats()
    active = kernels.get_kernels()
    active.compact_keep(np.array([1.0, 0.0]))
    assert all(
        counter["calls"] == 0 for counter in kernels.kernel_stats().values()
    ), "counters must not tick while stats are disabled"
    kernels.enable_kernel_stats(True)
    active = kernels.get_kernels()
    active.compact_keep(np.array([1.0, 0.0]))
    assert kernels.kernel_stats()["compact_keep"]["calls"] == 1
    kernels.reset_kernel_stats()
    assert kernels.kernel_stats()["compact_keep"]["calls"] == 0
