"""Decision trees over the Favorita join, trained from aggregate batches.

A regression tree predicts unit sales; every node split is chosen from the
filtered variance aggregates of Section 2.2, evaluated by the engine directly
over the base relations.  A classification tree predicting the holiday type is
trained from grouped counts (Gini index).

Run with:  python examples/favorita_decision_tree.py
"""

from repro.datasets import FAVORITA_FEATURES, favorita_database, favorita_query
from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor


def main() -> None:
    database = favorita_database(sales_rows=2500, stores=12, items=50, dates=40)
    query = favorita_query()
    target = FAVORITA_FEATURES["target"]

    print("== regression tree for unit_sales ==")
    regressor = DecisionTreeRegressor(
        target=target,
        continuous=["onpromotion", "transactions", "oilprice", "perishable"],
        categorical=["family", "city", "holiday_type"],
        max_depth=3,
        min_samples=40,
    )
    root = regressor.fit(database, query)
    print(root.render())
    print(
        f"\n{regressor.batches_evaluated} aggregate batches "
        f"({regressor.aggregates_evaluated} aggregates) were evaluated; "
        "the join was never materialised."
    )

    joined = query.evaluate(database)
    rows = [dict(zip(joined.schema.names, row)) for row in joined.sample_rows(300, seed=3)]
    residuals = [
        (regressor.predict_row(row) - float(row[target])) ** 2 for row in rows
    ]
    print(f"regression tree RMSE on 300 sampled tuples: {(sum(residuals) / len(residuals)) ** 0.5:.3f}")

    print("\n== classification tree for the holiday type ==")
    classifier = DecisionTreeClassifier(
        target="holiday_type",
        continuous=["transactions", "oilprice", "unit_sales"],
        categorical=["city", "family"],
        max_depth=2,
        min_samples=50,
    )
    classifier.fit(database, query)
    print(classifier.root.render())
    correct = sum(
        1 for row in rows if classifier.predict_row(row) == row["holiday_type"]
    )
    print(f"classification accuracy on the sample: {correct / len(rows):.2%}")


if __name__ == "__main__":
    main()
