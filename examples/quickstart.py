"""Quickstart: structure-aware learning over relational data in five steps.

1. build (or load) a multi-relation database;
2. describe the feature-extraction join;
3. synthesise the aggregate batch for the model;
4. evaluate the batch with the LMFAO-style engine (the join is never
   materialised);
5. train the model from the resulting sufficient statistics.

Run with:  python examples/quickstart.py
"""

from repro.aggregates import covariance_batch
from repro.aggregates.sparse_tensor import sigma_from_batch_results
from repro.datasets import retailer_database, retailer_query, RETAILER_FEATURES
from repro.engine import LMFAOEngine
from repro.ml import RidgeRegression


def main() -> None:
    # 1. A snowflake database shaped like the paper's retailer dataset.
    database = retailer_database(inventory_rows=2000, stores=10, items=40, dates=30)
    print(f"database: {database}")

    # 2. The feature-extraction query: the natural join of all five relations.
    query = retailer_query()
    print(f"query: {query}")

    # 3. The covariance batch for a ridge linear regression model.
    continuous = RETAILER_FEATURES["continuous"]
    categorical = RETAILER_FEATURES["categorical"]
    batch = covariance_batch(continuous, categorical)
    print(f"aggregate batch: {len(batch)} aggregates ({batch.summary()})")

    # 4. Evaluate the batch directly over the base relations.
    engine = LMFAOEngine(database, query)
    result = engine.evaluate(batch)
    print(
        f"batch evaluated in {result.elapsed_seconds:.3f}s "
        f"({result.views_computed} shared views, plan: {result.plan_summary})"
    )

    # 5. Assemble the sigma matrix and train the model by gradient descent.
    sigma = sigma_from_batch_results(result.as_mapping(), continuous, categorical)
    model = RidgeRegression(target=RETAILER_FEATURES["target"], regularization=1e-3)
    model.fit(sigma)
    print(f"model trained in {model.trace.iterations} gradient-descent iterations")

    coefficients = model.coefficients()
    top = sorted(coefficients.items(), key=lambda item: -abs(item[1]))[:8]
    print("largest coefficients:")
    for name, value in top:
        print(f"  {name:30s} {value:+.4f}")

    # Sanity check the model on a sample of join tuples.
    joined = query.evaluate(database)
    rows = [dict(zip(joined.schema.names, row)) for row in joined.sample_rows(200, seed=1)]
    print(f"training RMSE on 200 sampled join tuples: {model.rmse(rows):.3f}")


if __name__ == "__main__":
    main()
