"""Keeping models fresh under high-throughput updates (Figure 4, right; §1.5).

An initially empty retailer database receives a stream of tuple inserts.
F-IVM maintains the covariance matrix with ring payloads; after every bulk of
inserts the linear-regression model is refreshed by resuming gradient descent
from the previous parameters — a few milliseconds instead of retraining from
scratch over the join.

Run with:  python examples/incremental_maintenance.py
"""

import random
import time

import numpy as np

from repro.aggregates.sparse_tensor import FeatureIndex, SigmaMatrix
from repro.datasets import RETAILER_FEATURES, retailer_database, retailer_query
from repro.ivm import FIVM, FirstOrderIVM, HigherOrderIVM, Update
from repro.ml import RidgeRegression


def sigma_from_payload(payload, features) -> SigmaMatrix:
    """Wrap an F-IVM covariance payload as a SigmaMatrix (continuous features only)."""
    index = FeatureIndex(list(features), {}, include_intercept=True)
    matrix = np.zeros((index.size, index.size))
    matrix[0, 0] = payload.count
    matrix[0, 1:] = payload.sums
    matrix[1:, 0] = payload.sums
    matrix[1:, 1:] = payload.moments
    return SigmaMatrix(index, matrix)


def main() -> None:
    full = retailer_database(inventory_rows=2500, stores=10, items=40, dates=25)
    query = retailer_query()
    features = list(RETAILER_FEATURES["continuous"])
    target = RETAILER_FEATURES["target"]

    # A stream of inserts drawn from every relation, in random order.
    updates = [
        Update(relation.name, row, 1) for relation in full for row in relation
    ]
    random.Random(7).shuffle(updates)
    print(f"streaming {len(updates)} tuple inserts into an initially empty database")

    print("\n== throughput of the three maintenance strategies ==")
    strategies = {
        "first-order IVM": FirstOrderIVM,
        "higher-order IVM": HigherOrderIVM,
        "F-IVM": FIVM,
    }
    sample = updates[:1500]
    for name, strategy in strategies.items():
        maintainer = strategy(full, query, features)
        started = time.perf_counter()
        maintainer.apply_batch(sample)
        elapsed = time.perf_counter() - started
        print(f"  {name:17s} {len(sample) / elapsed:10.0f} tuples/second")

    print("\n== model refresh with F-IVM (bulk of 500 inserts at a time) ==")
    maintainer = FIVM(full, query, features)
    model = RidgeRegression(target, regularization=1e-3)
    previous_parameters = None
    for bulk_start in range(0, len(updates), 500):
        bulk = updates[bulk_start:bulk_start + 500]
        maintainer.apply_batch(bulk)
        payload = maintainer.statistics()
        if payload.count < 10:
            continue
        sigma = sigma_from_payload(payload, features)
        started = time.perf_counter()
        if previous_parameters is None:
            model.fit(sigma)
        else:
            model.warm_start_fit(sigma, previous_parameters)
        refresh_time = time.perf_counter() - started
        previous_parameters = model.parameters
        print(
            f"  after {bulk_start + len(bulk):6d} inserts: join count={payload.count:8.0f}, "
            f"model refreshed in {refresh_time * 1000:6.1f} ms "
            f"({model.trace.iterations} GD steps)"
        )


if __name__ == "__main__":
    main()
