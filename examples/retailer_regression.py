"""Figure 3 end to end: structure-agnostic vs structure-aware linear regression.

The structure-agnostic pipeline materialises the join, exports it, one-hot
encodes the categorical features and runs mini-batch gradient descent over the
data matrix.  The structure-aware pipeline evaluates the covariance batch with
the LMFAO-style engine and runs gradient descent over the sigma matrix.  Both
are timed stage by stage, and both models are evaluated on held-out join rows.

Run with:  python examples/retailer_regression.py
"""

from repro.datasets import RETAILER_FEATURES, retailer_database, retailer_query
from repro.pipelines import StructureAgnosticPipeline, StructureAwarePipeline


def main() -> None:
    database = retailer_database(inventory_rows=3000, stores=15, items=60, dates=40)
    query = retailer_query()
    target = RETAILER_FEATURES["target"]
    continuous = RETAILER_FEATURES["continuous"]
    categorical = RETAILER_FEATURES["categorical"]

    print("== dataset characteristics (cf. Figure 3, left) ==")
    joined = query.evaluate(database)
    for relation in database:
        print(f"  {relation.name:13s} {len(relation):8d} tuples / {relation.arity} attributes")
    print(f"  {'Join':13s} {len(joined):8d} tuples / {joined.arity} attributes")

    test_rows = [dict(zip(joined.schema.names, row)) for row in joined.sample_rows(400, seed=99)]

    print("\n== structure-agnostic: materialise -> export -> one-hot -> SGD ==")
    agnostic = StructureAgnosticPipeline(target, continuous, categorical, epochs=1)
    agnostic_report = agnostic.run(database, query)
    for stage, seconds in agnostic_report.as_rows():
        print(f"  {stage:18s} {seconds:8.3f}s")
    print(f"  data matrix: {agnostic_report.data_matrix_shape} "
          f"({agnostic_report.data_matrix_bytes / 1e6:.1f} MB)")
    print(f"  test RMSE: {agnostic.rmse(test_rows):.3f}")

    print("\n== structure-aware: aggregate batch -> gradient descent on sigma ==")
    aware = StructureAwarePipeline(target, continuous, categorical)
    aware_report = aware.run(database, query)
    for stage, seconds in aware_report.as_rows():
        print(f"  {stage:18s} {seconds:8.3f}s")
    print(f"  sufficient statistics: {aware_report.sigma_dimension}x{aware_report.sigma_dimension} "
          f"matrix ({aware_report.sigma_bytes / 1e3:.1f} KB) "
          f"from {aware_report.aggregate_count} aggregates")
    print(f"  test RMSE: {aware.rmse(test_rows):.3f}")

    speedup = agnostic_report.total_seconds / max(aware_report.total_seconds, 1e-9)
    print(f"\nstructure-aware speedup over structure-agnostic: {speedup:.1f}x")

    print("\n== model selection from the same sigma matrix (Section 1.5) ==")
    from repro.ml import ModelSelector

    selector = ModelSelector(aware.sigma, target)
    candidates = selector.search(["prize", "maxtemp", "rain", "population", "avghhi"],
                                 max_subset_size=3)
    print(f"  trained {len(candidates)} candidate models without touching the data again")
    best = selector.best()
    print(f"  best subset: {best.features} (training MSE {best.training_mse:.3f})")


if __name__ == "__main__":
    main()
