"""Walk through Figures 7-10 of the paper on the Orders/Dish/Items database.

Shows the factorised join, its size compared to the flat result, COUNT and
SUM(price) GROUP BY dish computed in one pass over the factorisation, and the
covariance-ring evaluation that shares computation across a whole batch.

Run with:  python examples/factorised_join_demo.py
"""

from repro.datasets.toy import orders_database, orders_query, orders_variable_order_spec
from repro.factorized import factorize_join
from repro.factorized.aggregates import (
    count_over_factorization,
    covariance_over_factorization,
    group_by_sum_over_factorization,
    sum_product_over_factorization,
)
from repro.query.variable_order import order_from_nested


def main() -> None:
    database = orders_database()
    query = orders_query()

    print("== Figure 7: the input relations ==")
    for relation in database:
        print(f"\n{relation.name}:")
        print(relation.to_table())

    print("\n== Figure 8: the variable order and the factorised join ==")
    hypergraph = query.hypergraph(database)
    order = order_from_nested(orders_variable_order_spec(), hypergraph)
    print(order.render())

    factorization = factorize_join(query, database, order=order)
    print("\nfactorised join:")
    print(factorization.render())
    print(
        f"\nflat join: {factorization.flat_size()} tuples, "
        f"{factorization.flat_value_count()} values; "
        f"factorised: {factorization.size()} values "
        f"(compression {factorization.compression_ratio():.1f}x, "
        f"{factorization.cache_hits} cache hits)"
    )

    print("\n== Figure 9: aggregates in one pass over the factorisation ==")
    print(f"SUM(1)                     = {count_over_factorization(factorization)}")
    print(f"SUM(price)                 = {sum_product_over_factorization(factorization, ['price'])}")
    grouped = group_by_sum_over_factorization(factorization, ["dish"], ["price"])
    for (dish,), total in sorted(grouped.items()):
        print(f"SUM(price) GROUP BY dish   : {dish:7s} -> {total}")

    print("\n== Figure 10: the covariance ring shares a whole batch ==")
    payload = covariance_over_factorization(factorization, ["price"])
    print(f"(SUM(1), SUM(price), SUM(price*price)) = "
          f"({payload.count:.0f}, {payload.sums[0]:.0f}, {payload.moments[0, 0]:.0f})")


if __name__ == "__main__":
    main()
