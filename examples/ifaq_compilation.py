"""Section 5.3: multi-stage compilation of a gradient-descent program.

The same linear-regression program over the join S(i,s,u) ⋈ R(s,c) ⋈ I(i,p)
is run at five compilation stages — naive, memoised, after loop-invariant code
motion, after schema specialisation, and after aggregate pushdown — and the
interpreter's operation counters show what every rewrite buys.

Run with:  python examples/ifaq_compilation.py
"""

import random

from repro.data import Database, Relation, Schema
from repro.ifaq import compile_and_run
from repro.query import ConjunctiveQuery


def build_example_database(sales: int = 300, stores: int = 8, items: int = 25) -> Database:
    rng = random.Random(42)
    s_rows = []
    for _ in range(sales):
        item = rng.randrange(items)
        store = rng.randrange(stores)
        units = round(5.0 + 0.8 * item - 0.5 * store + rng.gauss(0, 1), 3)
        s_rows.append((item, store, units))
    sales_relation = Relation("S", Schema.from_names(["i", "s", "u"]), rows=s_rows)
    stores_relation = Relation(
        "R", Schema.from_names(["s", "c"]), rows=[(s, round(3 + 0.4 * s, 2)) for s in range(stores)]
    )
    items_relation = Relation(
        "I", Schema.from_names(["i", "p"]), rows=[(i, round(1 + 0.25 * i, 2)) for i in range(items)]
    )
    return Database([sales_relation, stores_relation, items_relation], name="ifaq_example")


def main() -> None:
    database = build_example_database()
    query = ConjunctiveQuery(["S", "R", "I"], name="Q")
    report = compile_and_run(database, query, iterations=20, learning_rate=2e-6)

    print(f"join size: {report.join_size} tuples; base relations: {report.base_sizes}")
    print(f"all stages compute the same parameters: {report.parameters_agree()}\n")

    print(f"{'stage':16s} {'arithmetic':>12s} {'dyn lookups':>12s} {'total ops':>12s} {'needs join?':>12s}")
    for outcome in report.stages:
        print(
            f"{outcome.name:16s} {outcome.operations['arithmetic']:12d} "
            f"{outcome.operations['dynamic_lookups']:12d} {outcome.operations['total']:12d} "
            f"{'yes' if outcome.needs_join else 'no':>12s}"
        )

    final = report.stages[-1].parameters
    print("\nlearned parameters (identical at every stage):")
    for feature, value in final.items():
        print(f"  theta[{feature}] = {value:+.6f}")


if __name__ == "__main__":
    main()
