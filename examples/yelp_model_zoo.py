"""A small model zoo over the Yelp join: everything from one pass over the data.

Demonstrates the breadth of models the aggregate-based approach covers:
ridge regression and PCA from the sigma matrix, model selection over feature
subsets, a Chow-Liu tree from mutual-information aggregates, relational
k-means over a grid coreset, and a linear SVM trained with additive-inequality
aggregates.

Run with:  python examples/yelp_model_zoo.py
"""

import numpy as np

from repro.datasets import YELP_FEATURES, yelp_database, yelp_query
from repro.ml import (
    ChowLiuTree,
    LinearSVM,
    ModelSelector,
    PrincipalComponentAnalysis,
    RelationalKMeans,
    RidgeRegression,
    compute_sigma,
)


def main() -> None:
    database = yelp_database(review_rows=2500, businesses=80, users=120)
    query = yelp_query()
    target = YELP_FEATURES["target"]
    continuous = list(YELP_FEATURES["continuous"])
    categorical = list(YELP_FEATURES["categorical"])

    print("== one aggregate batch, many models ==")
    sigma = compute_sigma(database, query, continuous, categorical)
    print(f"sigma matrix: {sigma.dimension}x{sigma.dimension}, from {sigma.count():.0f} join tuples")

    print("\n-- ridge regression for review stars --")
    model = RidgeRegression(target, regularization=1e-3).fit_closed_form(sigma)
    top = sorted(model.coefficients().items(), key=lambda item: -abs(item[1]))[:5]
    for name, value in top:
        print(f"  {name:35s} {value:+.4f}")

    print("\n-- model selection over feature subsets (no further data passes) --")
    selector = ModelSelector(sigma, target)
    selector.search(["business_stars", "user_average_stars", "useful", "fans"], max_subset_size=2)
    best = selector.best()
    print(f"  best subset: {best.features}, training MSE {best.training_mse:.4f} "
          f"({len(selector.candidates)} candidates tried)")

    print("\n-- PCA of the continuous features --")
    pca = PrincipalComponentAnalysis(
        ["business_stars", "business_review_count", "user_average_stars", "user_review_count",
         "fans", "checkins"],
        components=3,
    )
    result = pca.fit(sigma)
    print(f"  explained variance ratio: {np.round(result.explained_variance_ratio(), 3)}")

    print("\n-- Chow-Liu tree over the categorical features --")
    tree = ChowLiuTree.fit(database, query, categorical)
    for left, right, weight in tree.edges:
        print(f"  {left} -- {right} (MI={weight:.4f})")

    print("\n-- relational k-means over a grid coreset --")
    clustering = RelationalKMeans(
        ["business_stars", "user_average_stars", "review_stars"], clusters=3, grid_size=4
    )
    outcome = clustering.fit(database, query)
    print(f"  coreset size: {clustering.coreset_size()} cells "
          f"(vs {sigma.count():.0f} join tuples); inertia {outcome.inertia:.1f}")
    for centroid in outcome.centroids:
        print(f"  centroid: {np.round(centroid, 2)}")

    print("\n-- linear SVM: is this a 4+ star review? --")
    svm = LinearSVM(
        target="high_rating",
        features=["business_stars", "user_average_stars", "useful"],
        iterations=150,
    )
    joined = query.evaluate(database)
    rows = [dict(zip(joined.schema.names, row)) for row in joined.rows()]
    features = np.array(
        [[row["business_stars"], row["user_average_stars"], row["useful"]] for row in rows],
        dtype=float,
    )
    labels = np.where(np.array([row["review_stars"] for row in rows], dtype=float) >= 4.0, 1.0, -1.0)
    svm.fit_matrix(features, labels)
    predictions = np.where(features @ svm.weights + svm.bias >= 0, 1.0, -1.0)
    print(f"  training accuracy: {(predictions == labels).mean():.2%}")


if __name__ == "__main__":
    main()
