"""repro: structure-aware machine learning over relational data.

A Python reproduction of the system landscape described in "The Relational
Data Borg is Learning" (Olteanu, VLDB 2020): factorised joins, (semi)ring
aggregate evaluation, an LMFAO-style shared batch engine, factorised
incremental view maintenance, and machine-learning models trained from
aggregate batches instead of materialised data matrices.
"""

__version__ = "1.0.0"

from repro.data import Attribute, AttributeType, Database, Relation, Schema
from repro.query import ConjunctiveQuery
from repro.aggregates import (
    Aggregate,
    AggregateBatch,
    covariance_batch,
    decision_tree_node_batch,
    kmeans_batch,
    mutual_information_batch,
)
from repro.engine import BatchResult, EngineOptions, LMFAOEngine, MaterializedJoinEngine
from repro.factorized import factorize_join

__all__ = [
    "__version__",
    "Attribute",
    "AttributeType",
    "Schema",
    "Relation",
    "Database",
    "ConjunctiveQuery",
    "Aggregate",
    "AggregateBatch",
    "covariance_batch",
    "decision_tree_node_batch",
    "mutual_information_batch",
    "kmeans_batch",
    "LMFAOEngine",
    "MaterializedJoinEngine",
    "EngineOptions",
    "BatchResult",
    "factorize_join",
]
