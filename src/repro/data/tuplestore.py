"""The array-native multiset tuple store behind :class:`~repro.data.relation.Relation`.

Until PR 5 the system of record was a Python ``dict[tuple, int]``: every
mutation paid per-row dictionary upkeep, every columnar snapshot paid a full
re-encode of all rows, and the IVM mirrors re-encoded keys per batch.  The
:class:`TupleStore` inverts that hierarchy — the *columnar* form is the
storage:

- one **dictionary-encoded code array** per attribute (``values`` in
  first-occurrence order plus an ``int64`` code per row), grown in place and
  flushed *lazily*: mutations append rows and multiplicities only, and the
  pending tail is encoded — vectorised, once — when a columnar snapshot is
  actually requested, so neither the update path nor the snapshot ever pays
  a whole-relation re-encode;
- one **float64 multiplicity array** aligned with the rows (signed —
  multiplicities live in the ring of integers, exactly representable in
  float64 far beyond any realistic count);
- a **row-key hash index** (row tuple -> slot) driving multiset *netting*:
  re-inserting a known row adjusts its multiplicity in place, and a
  multiplicity reaching zero leaves a **tombstone** that periodic
  :meth:`~TupleStore.compact` passes drop;
- an **array-slice change log**: a pure-append mutation is logged as a
  ``(start, end)`` slice of the store's own arrays instead of a materialised
  pair list, so batched ingest pays O(1) log bookkeeping.

The row tuples themselves are kept (they are the hash-index keys anyway), so
the tuple-at-a-time consumers — the interpreted/specialised executor scans,
the relational algebra, ``expanded_rows`` — read them back without decoding;
everything vectorised reads the code and multiplicity arrays directly.

Zero-copy contract
------------------
:meth:`~repro.data.colstore.ColumnStore.from_tuplestore` wraps the live
arrays of this store (codes, multiplicities, row list, value dictionaries)
without copying.  Such a snapshot is only valid while the owning relation's
``(version, epoch)`` pair is unchanged: any logical mutation bumps the
version (and may mutate a multiplicity *in place*), and a :meth:`compact`
bumps the epoch (rows move).  Every consumer already guards on the version —
the relation's cache additionally guards on the epoch — so a stale snapshot
is never read.

Snapshot pinning
----------------
The serving layer (:mod:`repro.serving`) hands zero-copy snapshots to
concurrent reader threads while a single writer keeps mutating the store.
:meth:`~TupleStore.pin` marks the *current* physical arrays as referenced by
such a snapshot generation; while any pin is held

- in-place multiplicity netting into a pinned slot first detaches the
  multiplicity buffer copy-on-write (the pinned view keeps the old buffer,
  which is never written again), and
- :meth:`~TupleStore.compact` defers (``force=True`` overrides it for the
  writer-side publish path — compaction *replaces* the row list, code and
  multiplicity arrays rather than mutating them, so pinned views stay intact).

Appends never need protection: they write at slots at or beyond every pinned
view's length, and a buffer reallocation leaves the old buffer untouched.

The module-level :data:`tuplestore_stats` counters make the storage claims
testable: ``full_encodes`` counts legacy whole-relation re-encodes (the
regression suite asserts it stays 0 across IVM streams), ``compactions``
counts tombstone sweeps.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels import get_kernels

#: The stable kernel-dispatch singleton: `set_backend` rebinds its
#: attributes in place, so a module-level binding still sees every switch
#: while the hot loops skip one function call per kernel invocation.
_KERNELS = get_kernels()

__all__ = ["TupleStore", "tuplestore_stats", "reset_tuplestore_stats"]


class StatsCounters(dict):
    """A counter mapping whose increments are lock-protected.

    Plain ``stats[key] += 1`` is a read-modify-write of three bytecodes and
    loses increments when several threads race it (serving readers all bump
    ``zero_copy_snapshots``/``full_encodes`` through their snapshot reads).
    Mutating call sites go through :meth:`bump`; reads stay plain dict
    lookups — under the GIL a lookup is atomic, and a reader observing a
    counter one bump early is fine.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._lock = threading.Lock()

    def bump(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self[key] = self.get(key, 0) + amount

    def reset(self) -> None:
        with self._lock:
            for key in self:
                self[key] = 0

    def __reduce__(self):
        # The lock is process-local; pickle the counter values and rebuild
        # (checkpointing a maintainer that embeds counters relies on this).
        return (type(self), (dict(self),))


#: Global storage-behaviour counters (see the module docstring).
tuplestore_stats: StatsCounters = StatsCounters({
    "full_encodes": 0,      # legacy ColumnStore(relation) whole-relation encodes
    "zero_copy_snapshots": 0,  # ColumnStore.from_tuplestore handoffs
    "compactions": 0,       # tombstone sweeps
    "batch_appends": 0,     # vectorised add_batch calls
    "deferred_compactions": 0,  # compactions skipped because a snapshot was pinned
    "mult_copy_on_write": 0,    # multiplicity buffers detached to protect a pin
})


def reset_tuplestore_stats() -> None:
    """Zero all counters (tests isolate their assertions this way)."""
    tuplestore_stats.reset()


#: How many recent change groups the store's log remembers.
CHANGE_LOG_LIMIT = 128

#: Compaction triggers once this many tombstones accumulate (and they make up
#: at least a quarter of the stored rows) — see :meth:`TupleStore.add_batch`.
COMPACT_MIN_ZEROS = 64


class _GrowArray:
    """An amortised-doubling numpy array (scalar/array append + zero-copy view)."""

    __slots__ = ("data", "size")

    def __init__(self, dtype, capacity: int = 16) -> None:
        self.data = np.empty(max(int(capacity), 1), dtype=dtype)
        self.size = 0

    def _reserve(self, extra: int) -> None:
        needed = self.size + extra
        capacity = self.data.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=self.data.dtype)
        grown[: self.size] = self.data[: self.size]
        self.data = grown

    def append(self, value) -> None:
        self._reserve(1)
        self.data[self.size] = value
        self.size += 1

    def extend(self, values) -> None:
        values = np.asarray(values, dtype=self.data.dtype)
        self._reserve(values.shape[0])
        self.data[self.size : self.size + values.shape[0]] = values
        self.size += values.shape[0]

    def view(self) -> np.ndarray:
        return self.data[: self.size]

    def __getstate__(self) -> Dict:
        # Checkpoint pickling: persist only the occupied prefix — the
        # amortised-doubling slack is capacity, not content.
        return {"data": self.data[: self.size].copy(), "size": self.size}

    def __setstate__(self, state: Dict) -> None:
        stored = state["data"]
        self.size = state["size"]
        self.data = np.empty(max(self.size, 1), dtype=stored.dtype)
        self.data[: self.size] = stored[: self.size]


class _ColumnCodes:
    """One attribute's dictionary encoding, grown in place on every insert.

    ``values`` lists the distinct values in first-occurrence order, ``index``
    inverts it, and ``codes`` carries one ``int64`` dictionary code per stored
    row.  The dictionary only ever grows (values of tombstoned rows linger as
    unused entries — harmless: consumers treat the cardinality as an upper
    bound and derive exact distinct counts from the codes).
    """

    __slots__ = ("values", "index", "codes")

    def __init__(self) -> None:
        self.values: List[object] = []
        self.index: Dict[object, int] = {}
        self.codes = _GrowArray(np.int64)

    def code_of(self, value) -> int:
        code = self.index.get(value)
        if code is None:
            code = len(self.values)
            self.index[value] = code
            self.values.append(value)
        return code

    def append_value(self, value) -> None:
        self.codes.append(self.code_of(value))

    def __getstate__(self) -> Dict:
        # The inverse index is derivable; rebuilding on load halves the
        # dictionary bytes a checkpoint carries per column.
        return {"values": self.values, "codes": self.codes}

    def __setstate__(self, state: Dict) -> None:
        self.values = state["values"]
        self.codes = state["codes"]
        self.index = {value: position for position, value in enumerate(self.values)}

    def extend_values(self, raw: Sequence[object]) -> None:
        """Vectorised bulk encode: one ``np.unique`` + one dictionary probe
        per *distinct* value, then a single gather for the code array."""
        count = len(raw)
        if count == 0:
            return
        if count <= 32:
            # Small tails (per-batch flushes under streaming updates, and
            # per-publish flushes in the serving layer) are dominated by the
            # fixed np.unique/asarray overhead below — plain dictionary
            # probes win by an order of magnitude at this size.
            code_of = self.code_of
            self.codes.extend([code_of(value) for value in raw])
            return
        kinds = set(map(type, raw))
        try:
            if kinds <= {int, bool} or kinds == {str} or (
                kinds <= {int, bool, float}
                and not _ints_exceed_float64_precision(raw)
            ):
                if kinds <= {int, bool}:
                    array = np.asarray(raw, dtype=np.int64)
                    distinct, inverse = np.unique(array, return_inverse=True)
                    distinct_values: List[object] = [
                        int(value) for value in distinct.tolist()
                    ]
                elif kinds == {str}:
                    distinct, inverse = np.unique(np.asarray(raw), return_inverse=True)
                    distinct_values = distinct.tolist()
                else:
                    array = np.asarray(raw, dtype=np.float64)
                    distinct, inverse = np.unique(array, return_inverse=True)
                    distinct_values = distinct.tolist()
                mapping = np.empty(len(distinct_values), dtype=np.int64)
                for position, value in enumerate(distinct_values):
                    mapping[position] = self.code_of(value)
                self.codes.extend(mapping[inverse.reshape(-1)])
                return
        except (TypeError, ValueError, OverflowError):
            pass
        # Mixed or non-primitive column: per-value dictionary probes.
        code_of = self.code_of
        self.codes.extend(
            np.fromiter((code_of(value) for value in raw), dtype=np.int64, count=count)
        )


def _ints_exceed_float64_precision(values) -> bool:
    """True when an int in ``values`` would lose identity as a float64."""
    return any(
        isinstance(value, int) and not isinstance(value, bool) and (
            value > 2 ** 53 or value < -(2 ** 53)
        )
        for value in values
    )


class _LogGroup:
    """One logged mutation group: explicit pairs or an array slice.

    A pure-append mutation (every row new) is recorded as the ``[start, end)``
    slot range it appended — decoding reads the store's own rows and
    multiplicities.  Anything that netted into an existing slot is recorded
    as explicit ``(row, signed delta)`` pairs, because the in-place
    multiplicity no longer equals the applied delta.
    """

    __slots__ = ("version", "pairs", "start", "end")

    def __init__(self, version: int, pairs=None, start: int = -1, end: int = -1) -> None:
        self.version = version
        self.pairs: Optional[List[Tuple[Tuple, int]]] = pairs
        self.start = start
        self.end = end

    @property
    def is_slice(self) -> bool:
        return self.pairs is None


class TupleStore:
    """Array-native multiset storage for one relation (see module docstring)."""

    __slots__ = ("schema", "_rows", "_row_index", "_mults", "_columns",
                 "_encoded_count", "live", "zeros", "total", "version", "epoch",
                 "_log", "_log_floor", "_slice_floor",
                 "pins", "_pin_floor", "_cow_pending", "_compact_deferred")

    def __init__(self, schema) -> None:
        self.schema = schema
        self._rows: List[Tuple] = []
        self._row_index: Dict[Tuple, int] = {}
        self._mults = _GrowArray(np.float64)
        self._columns: List[_ColumnCodes] = [_ColumnCodes() for _ in schema.names]
        # Rows below this position are dictionary-encoded; the tail is
        # pending and encoded in one vectorised pass on the next snapshot.
        self._encoded_count = 0
        self.live = 0               # distinct rows with non-zero multiplicity
        self.zeros = 0              # tombstones awaiting compaction
        self.total = 0.0            # running sum of multiplicities
        self.version = 0            # logical mutation counter
        self.epoch = 0              # physical layout counter (bumped by compact)
        self._log: List[_LogGroup] = []
        self._log_floor = 0
        # Smallest slot a live slice group references; netting at or above it
        # forces slice groups down to explicit pairs (their in-place
        # multiplicities would otherwise stop matching the applied deltas).
        self._slice_floor: Optional[int] = None
        # Snapshot pinning (see the module docstring): how many snapshot
        # generations reference this store's buffers, whether the *current*
        # multiplicity buffer is among the referenced ones (netting below
        # the pin floor must then detach it copy-on-write), and whether a
        # compaction was deferred while pins were held.
        self.pins = 0
        self._pin_floor = 0
        self._cow_pending = False
        self._compact_deferred = False

    # -- basic reads -------------------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Stored rows including tombstones (the code/multiplicity array length)."""
        return len(self._rows)

    def multiplicity(self, row: Tuple) -> int:
        slot = self._row_index.get(row)
        if slot is None:
            return 0
        return int(self._mults.data[slot])

    def __contains__(self, row: Tuple) -> bool:
        slot = self._row_index.get(row)
        return slot is not None and self._mults.data[slot] != 0.0

    def iter_rows(self) -> Iterator[Tuple]:
        """Live rows (non-zero multiplicity), in storage order."""
        if self.zeros == 0:
            return iter(self._rows)
        mults = self._mults.data
        return (row for slot, row in enumerate(self._rows) if mults[slot] != 0.0)

    def iter_items(self) -> Iterator[Tuple[Tuple, int]]:
        """Live ``(row, multiplicity)`` pairs, in storage order."""
        mults = self._mults.data
        if self.zeros == 0:
            for slot, row in enumerate(self._rows):
                yield row, int(mults[slot])
        else:
            for slot, row in enumerate(self._rows):
                multiplicity = mults[slot]
                if multiplicity != 0.0:
                    yield row, int(multiplicity)

    # -- zero-copy accessors (consumed by ColumnStore.from_tuplestore) ------------------

    def rows_list(self) -> List[Tuple]:
        """The raw row list (tombstones included — compact first for snapshots)."""
        return self._rows

    def multiplicities_view(self) -> np.ndarray:
        return self._mults.view()

    def column_values(self, position: int) -> List[object]:
        self.flush_encodings()
        return self._columns[position].values

    def column_codes_view(self, position: int) -> np.ndarray:
        self.flush_encodings()
        return self._columns[position].codes.view()

    # -- snapshot pinning (consumed by repro.serving.SnapshotManager) -------------------

    def pin(self) -> None:
        """Mark the current physical arrays as referenced by a pinned snapshot.

        Writer-side only (call under whatever serializes mutations).  While
        pins are held, netting into a slot below the pin floor detaches the
        multiplicity buffer copy-on-write and non-forced compaction defers,
        so every array a pinned :class:`~repro.data.colstore.ColumnStore`
        aliases stays bit-identical to its pin-time content.
        """
        self.pins += 1
        self._cow_pending = True
        self._pin_floor = self._mults.size

    def unpin(self) -> None:
        """Release one pin.  Safe from any thread holding the manager's lock.

        Deliberately does *not* run a deferred compaction — that would move
        physical work onto a reader thread racing the writer; the writer's
        next mutation (or forced publish-time compaction) picks it up via
        :meth:`_maybe_compact`.
        """
        if self.pins <= 0:
            raise RuntimeError("TupleStore.unpin without a matching pin")
        self.pins -= 1
        if self.pins == 0:
            self._cow_pending = False
            self._pin_floor = 0

    def _detach_mults(self) -> None:
        """Copy-on-write detach of the multiplicity buffer.

        Every pinned snapshot keeps (and continues to read) the old buffer,
        which is never written again; netting proceeds on the fresh copy.
        """
        current = self._mults
        detached = _GrowArray(np.float64, capacity=max(current.data.shape[0], 1))
        detached.extend(current.view())
        self._mults = detached
        self._cow_pending = False
        self._pin_floor = 0
        tuplestore_stats.bump("mult_copy_on_write")

    def flush_encodings(self) -> None:
        """Encode the pending row tail into the per-column code arrays.

        One transpose of the pending rows plus one vectorised dictionary
        merge per column — the cost is proportional to the rows appended
        since the last flush, never to the relation size, and update-only
        phases (IVM streams propagating through mirrors) never pay it at
        all.
        """
        start = self._encoded_count
        count = len(self._rows)
        if start >= count:
            return
        pending = self._rows[start:count]
        if len(pending) == 1:
            row = pending[0]
            for position, column in enumerate(self._columns):
                column.append_value(row[position])
        else:
            columns = list(zip(*pending))
            for position, column in enumerate(self._columns):
                column.extend_values(columns[position])
        self._encoded_count = count

    # -- mutation ----------------------------------------------------------------------

    def add(self, row: Tuple, multiplicity: int) -> None:
        """Net one signed row delta into the store (one version bump + log entry)."""
        self.version += 1
        self._apply_one(row, multiplicity)
        self._log_pairs(self.version, [(row, multiplicity)])
        self._maybe_compact()

    def add_batch(self, rows: Sequence[Tuple], multiplicities: Sequence[int]) -> None:
        """Apply one signed delta in a single pass (one version bump, one log group).

        The rows are resolved against the row index once: brand-new rows
        are bulk-appended with vectorised per-column encoding (and logged
        as an array slice when the whole delta was a pure append of
        distinct rows), while rows netting into existing slots go through
        the active kernel backend's ``net_deltas`` — one vectorised pass
        with the zero-crossing live/tombstone/total bookkeeping folded in,
        replacing the per-row scalar fallback of PR 5.
        """
        self.version += 1
        get_slot = self._row_index.get
        start = len(self._rows)
        pairs: List[Tuple[Tuple, int]] = []
        new_rows: List[Tuple] = []
        new_mults: List[float] = []
        new_position: Dict[Tuple, int] = {}
        existing_slots: List[int] = []
        existing_deltas: List[float] = []
        for row, multiplicity in zip(rows, multiplicities):
            if multiplicity == 0:
                continue
            pairs.append((row, multiplicity))
            slot = get_slot(row)
            if slot is None:
                position = new_position.get(row)
                if position is None:
                    new_position[row] = len(new_rows)
                    new_rows.append(row)
                    new_mults.append(float(multiplicity))
                else:
                    # The same new row repeated inside one delta nets into
                    # its pending append entry (it may net out to a
                    # tombstone, exactly as the scalar path left it).
                    new_mults[position] += multiplicity
            else:
                existing_slots.append(slot)
                existing_deltas.append(float(multiplicity))
        if new_rows:
            mult_array = np.asarray(new_mults, dtype=np.float64)
            self._append_rows(new_rows, mult_array)
            netted_out = int((mult_array == 0.0).sum())
            if netted_out:
                self.live -= netted_out
                self.zeros += netted_out
        if existing_slots:
            slots = np.asarray(existing_slots, dtype=np.int64)
            floor = self._slice_floor
            if floor is not None and int(slots.max()) >= floor:
                self._materialise_slices()
            if self._cow_pending and int(slots.min()) < self._pin_floor:
                # A netted slot is visible to a pinned snapshot; writing it
                # in place would tear that snapshot's multiplicities.
                self._detach_mults()
            live_delta, zeros_delta, total_delta = _KERNELS.net_deltas(
                self._mults.data, slots, np.asarray(existing_deltas, dtype=np.float64)
            )
            self.live += live_delta
            self.zeros += zeros_delta
            self.total += total_delta
        if pairs:
            if not existing_slots and len(new_rows) == len(pairs):
                tuplestore_stats.bump("batch_appends")
                self._log_slice(self.version, start, start + len(new_rows))
            elif len(pairs) >= CHANGE_LOG_LIMIT:
                # A delta this large exceeds what any log consumer would
                # replay; drop coverage instead of pinning it in memory.
                self._drop_log()
            else:
                self._log_pairs(self.version, pairs)
        self._maybe_compact()

    def clear(self) -> None:
        """Drop every row; not representable as a small delta, so log coverage goes."""
        self.version += 1
        self.epoch += 1
        self._rows = []
        self._row_index = {}
        self._mults = _GrowArray(np.float64)
        self._columns = [_ColumnCodes() for _ in self.schema.names]
        self._encoded_count = 0
        self.live = 0
        self.zeros = 0
        self.total = 0.0
        # All buffers were replaced: pinned snapshots keep the old (now
        # immutable) ones, and nothing references the fresh arrays yet.
        self._cow_pending = False
        self._pin_floor = 0
        self._compact_deferred = False
        self._drop_log()

    def _apply_one(self, row: Tuple, multiplicity: int) -> None:
        slot = self._row_index.get(row)
        if slot is None:
            self._row_index[row] = len(self._rows)
            self._rows.append(row)
            self._mults.append(float(multiplicity))
            self.live += 1
        else:
            floor = self._slice_floor
            if floor is not None and slot >= floor:
                self._materialise_slices()
            if self._cow_pending and slot < self._pin_floor:
                # The slot is visible to a pinned snapshot; writing it in
                # place would tear that snapshot's multiplicities.
                self._detach_mults()
            mults = self._mults.data
            before = mults[slot]
            updated = before + multiplicity
            mults[slot] = updated
            if before == 0.0 and updated != 0.0:
                self.zeros -= 1
                self.live += 1
            elif before != 0.0 and updated == 0.0:
                self.zeros += 1
                self.live -= 1
        self.total += multiplicity

    def _append_rows(self, rows: List[Tuple], multiplicities: np.ndarray) -> None:
        """Bulk append of brand-new rows (encoding deferred to the next flush)."""
        base = len(self._rows)
        row_index = self._row_index
        for offset, row in enumerate(rows):
            row_index[row] = base + offset
        self._rows.extend(rows)
        self._mults.extend(multiplicities)
        self.live += len(rows)
        self.total += float(multiplicities.sum())

    # -- compaction --------------------------------------------------------------------

    def _maybe_compact(self) -> None:
        if self._compact_deferred and not self.pins:
            self.compact()
            return
        if self.zeros >= COMPACT_MIN_ZEROS and self.zeros * 4 >= len(self._rows):
            self.compact()

    def compact(self, force: bool = False) -> None:
        """Drop tombstoned rows, preserving storage order of the survivors.

        Physical reorganisation only — the logical content (and therefore the
        version) is unchanged, but slots move, so the epoch is bumped and any
        slice-form log groups are first materialised to explicit pairs.

        While snapshot pins are held the sweep is deferred (recorded in
        ``tuplestore_stats["deferred_compactions"]``) unless ``force`` is
        given.  Forcing is safe for the pinned snapshots themselves — the
        sweep *replaces* the row list, multiplicity buffer and code arrays
        rather than mutating them, so pinned views keep reading their
        original arrays — but only the writer-side publish path should do it
        (it wants dense arrays for the next generation's snapshot).
        """
        if self.zeros == 0:
            return
        if self.pins and not force:
            if not self._compact_deferred:
                self._compact_deferred = True
                tuplestore_stats.bump("deferred_compactions")
            return
        self._materialise_slices()
        self.flush_encodings()
        mults = self._mults.view()
        keep = _KERNELS.compact_keep(mults)
        rows = self._rows
        self._rows = [rows[slot] for slot in keep.tolist()]
        self._row_index = {row: slot for slot, row in enumerate(self._rows)}
        kept_mults = _GrowArray(np.float64, capacity=max(keep.size, 1))
        kept_mults.extend(mults[keep])
        self._mults = kept_mults
        for column in self._columns:
            codes = _GrowArray(np.int64, capacity=max(keep.size, 1))
            codes.extend(column.codes.view()[keep])
            column.codes = codes
        self._encoded_count = len(self._rows)
        self.zeros = 0
        self.epoch += 1
        # The fresh buffers are not referenced by any pinned snapshot (the
        # pins keep the pre-sweep arrays, which are immutable from here on).
        self._cow_pending = False
        self._pin_floor = 0
        self._compact_deferred = False
        tuplestore_stats.bump("compactions")

    # -- the change log ----------------------------------------------------------------

    def _log_pairs(self, version: int, pairs: List[Tuple[Tuple, int]]) -> None:
        self._log_push(_LogGroup(version, pairs=pairs))

    def _log_slice(self, version: int, start: int, end: int) -> None:
        if end - start >= CHANGE_LOG_LIMIT:
            self._drop_log()
            return
        if self._slice_floor is None or start < self._slice_floor:
            self._slice_floor = start
        self._log_push(_LogGroup(version, start=start, end=end))

    def _log_push(self, group: _LogGroup) -> None:
        log = self._log
        if len(log) >= CHANGE_LOG_LIMIT:
            evicted = log.pop(0)
            self._log_floor = max(self._log_floor, evicted.version)
            if evicted.is_slice:
                self._refresh_slice_floor()
        log.append(group)

    def _drop_log(self) -> None:
        self._log.clear()
        self._log_floor = self.version
        self._slice_floor = None

    def _refresh_slice_floor(self) -> None:
        starts = [group.start for group in self._log if group.is_slice]
        self._slice_floor = min(starts) if starts else None

    def _materialise_slices(self) -> None:
        """Convert slice-form log groups into explicit pairs.

        Required before any operation that would desynchronise a slice from
        the deltas it recorded: netting into a slot the slice covers, or a
        compaction moving slots.
        """
        if self._slice_floor is None:
            return
        mults = self._mults.data
        rows = self._rows
        for group in self._log:
            if group.is_slice:
                group.pairs = [
                    (rows[slot], int(mults[slot]))
                    for slot in range(group.start, group.end)
                ]
                group.start = group.end = -1
        self._slice_floor = None

    def changes_since(self, version: int) -> Optional[List[Tuple[Tuple, int]]]:
        """The signed row changes applied after ``version``, oldest first.

        None when the log cannot reconstruct them (coverage was dropped or
        the requested version predates the bounded log).
        """
        if version < self._log_floor:
            return None
        if version >= self.version:
            return []
        out: List[Tuple[Tuple, int]] = []
        mults = self._mults.data
        rows = self._rows
        for group in self._log:
            if group.version <= version:
                continue
            if group.is_slice:
                out.extend(
                    (rows[slot], int(mults[slot]))
                    for slot in range(group.start, group.end)
                )
            else:
                out.extend(group.pairs)  # type: ignore[arg-type]
        return out

    # -- checkpoint pickling -----------------------------------------------------------

    def __getstate__(self) -> Dict:
        """Persist logical content; shed process-local machinery.

        Snapshot pins are reader bookkeeping of *this* process — a restored
        store has no readers, so the pin state resets.  The row index is
        derivable from the row list and rebuilt on load.
        """
        state = {name: getattr(self, name) for name in self.__slots__}
        del state["_row_index"]
        state["pins"] = 0
        state["_pin_floor"] = 0
        state["_cow_pending"] = False
        state["_compact_deferred"] = False
        return state

    def __setstate__(self, state: Dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._row_index = {row: slot for slot, row in enumerate(self._rows)}

    # -- copying -----------------------------------------------------------------------

    def take(self, slots: np.ndarray) -> "TupleStore":
        """A new store holding exactly the given slots' rows, in slot order.

        The partitioned-construction primitive behind
        :meth:`repro.data.relation.Relation.partition`: the child's per-column
        code arrays are *slices* of this store's arrays (one vectorised gather
        per column) and the dictionaries are shallow list/dict copies — one
        probe per **distinct** value, never a per-row re-encode — so carving a
        shard out of a parent relation costs O(selected + distinct), not
        O(selected × arity) dictionary work.  The row tuples are shared by
        reference (they are immutable).  Tombstoned slots may be passed; they
        carry over as tombstones.
        """
        self.flush_encodings()
        slots = np.asarray(slots, dtype=np.int64)
        clone = TupleStore(self.schema)
        rows = self._rows
        clone._rows = [rows[slot] for slot in slots.tolist()]
        clone._row_index = {row: slot for slot, row in enumerate(clone._rows)}
        picked = self._mults.view()[slots]
        clone._mults = _GrowArray(np.float64, capacity=max(slots.size, 1))
        clone._mults.extend(picked)
        for position, column in enumerate(self._columns):
            child = clone._columns[position]
            child.values = list(column.values)
            child.index = dict(column.index)
            child.codes = _GrowArray(np.int64, capacity=max(slots.size, 1))
            child.codes.extend(column.codes.view()[slots])
        clone._encoded_count = len(clone._rows)
        clone.live = int((picked != 0.0).sum())
        clone.zeros = slots.size - clone.live
        clone.total = float(picked.sum())
        return clone

    def copy(self) -> "TupleStore":
        """An independent store with the same live content (log not carried)."""
        clone = TupleStore(self.schema)
        rows: List[Tuple] = []
        multiplicities: List[int] = []
        for row, multiplicity in self.iter_items():
            rows.append(row)
            multiplicities.append(multiplicity)
        if rows:
            clone._append_rows(rows, np.asarray(multiplicities, dtype=np.float64))
        return clone

    # -- introspection -----------------------------------------------------------------

    def memory_footprint(self, sample: int = 256) -> int:
        """Approximate resident bytes of the store (``sys.getsizeof`` sampling).

        Array buffers are counted exactly; the row tuples and dictionary
        values are sampled (``sample`` of each) and extrapolated, which keeps
        the estimate cheap on large relations.
        """
        import sys as _sys

        total = _sys.getsizeof(self._rows) + _sys.getsizeof(self._row_index)
        total += self._mults.data.nbytes
        row_count = len(self._rows)
        if row_count:
            step = max(row_count // max(sample, 1), 1)
            sampled = self._rows[::step]
            per_row = sum(
                _sys.getsizeof(row) + sum(_sys.getsizeof(value) for value in row)
                for row in sampled
            ) / len(sampled)
            total += int(per_row * row_count)
        for column in self._columns:
            total += column.codes.data.nbytes
            total += _sys.getsizeof(column.values) + _sys.getsizeof(column.index)
        return total
