"""CSV import/export for relations.

Values are parsed as ``int`` when possible, then ``float``, otherwise kept as
strings.  Categorical attributes always keep their raw string form so category
identity is stable regardless of lexical shape.

Import is columnar: the parsed rows are handed to the relation's array-native
store in one :meth:`~repro.data.relation.Relation.add_batch` — a single
version bump and one vectorised dictionary encode per column — instead of a
per-row ``add`` loop.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.data.attribute import Schema
from repro.data.relation import Relation

PathLike = Union[str, Path]


def _parse_value(text: str) -> object:
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def read_csv(
    path: PathLike,
    name: Optional[str] = None,
    schema: Optional[Schema] = None,
    categorical: Optional[Iterable[str]] = None,
    delimiter: str = ",",
    has_header: bool = True,
) -> Relation:
    """Load a relation from a CSV file.

    If ``schema`` is not given, a schema is inferred from the header row with
    the attributes in ``categorical`` marked categorical and the rest
    continuous.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = list(reader)
    if not rows:
        raise ValueError(f"empty CSV file: {path}")

    if has_header:
        header, data_rows = rows[0], rows[1:]
    else:
        if schema is None:
            raise ValueError("schema is required when the CSV has no header")
        header, data_rows = list(schema.names), rows

    if schema is None:
        schema = Schema.from_names(header, categorical)

    categorical_mask = [schema.is_categorical(column) for column in schema.names]
    parsed_rows = [
        tuple(
            raw_value.strip() if is_categorical else _parse_value(raw_value)
            for raw_value, is_categorical in zip(raw_row, categorical_mask)
        )
        for raw_row in data_rows
        if raw_row
    ]
    # One batched ingest straight into the relation's column arrays.
    return Relation(name or path.stem, schema, rows=parsed_rows)


def write_csv(relation: Relation, path: PathLike, delimiter: str = ",",
              expand_multiplicities: bool = True) -> None:
    """Write a relation to CSV.

    With ``expand_multiplicities`` each tuple is repeated according to its
    multiplicity; otherwise a trailing ``__multiplicity`` column is written.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        if expand_multiplicities:
            writer.writerow(relation.schema.names)
            for row in relation.expanded_rows():
                writer.writerow(row)
        else:
            writer.writerow(list(relation.schema.names) + ["__multiplicity"])
            for row, multiplicity in relation.items():
                writer.writerow(list(row) + [multiplicity])
