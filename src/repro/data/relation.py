"""Multiset relations: tuples mapped to integer multiplicities.

A :class:`Relation` is a thin façade over the array-native
:class:`~repro.data.tuplestore.TupleStore`: per-attribute dictionary-encoded
code arrays, one signed multiplicity array, and a row-key hash index.
Multiplicities live in the ring of integers, which gives the uniform
treatment of inserts (+1) and deletes (-1) described in Section 3.1 of the
paper — a natural join multiplies multiplicities while a union adds them,
and a multiplicity netting to zero deletes the tuple (physically dropped by
the store's periodic compaction).

The columnar view (:meth:`column_store`) is a zero-copy wrapper over the
store's own arrays, not a snapshot re-encode; the tuple-at-a-time protocol
(``items``, ``expanded_rows`` & co.) survives as iterators over the stored
row tuples for the interpreted/naive engines and the algebra layer.
"""

from __future__ import annotations

import random
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.data.attribute import Attribute, AttributeType, Schema, SchemaError
from repro.data.tuplestore import TupleStore

Row = Tuple
RowValue = object

#: How many recent changes a relation remembers (see :meth:`Relation.changes_since`).
from repro.data.tuplestore import CHANGE_LOG_LIMIT  # noqa: E402  (re-export)


class RelationError(ValueError):
    """Raised on malformed relation operations."""


class Relation:
    """A named multiset relation over a :class:`Schema`.

    The relation maps each distinct tuple (a Python tuple aligned with the
    schema's attribute order) to a non-zero integer multiplicity, stored
    array-natively (see :mod:`repro.data.tuplestore`).
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Optional[Iterable[Sequence[RowValue]]] = None,
        multiplicities: Optional[Mapping[Row, int]] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self._store = TupleStore(schema)
        self._column_store = None
        self._column_store_key: Tuple[int, int] = (-1, -1)
        if multiplicities is not None:
            items = [(tuple(row), int(m)) for row, m in multiplicities.items()]
            self.add_batch([row for row, _m in items], [m for _r, m in items])
        if rows is not None:
            tuples = [tuple(row) for row in rows]
            self.add_batch(tuples, [1] * len(tuples))

    # -- basic protocol ---------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.schema)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return self.schema.names

    def __len__(self) -> int:
        """Number of distinct tuples (with non-zero multiplicity)."""
        return self._store.live

    def total_multiplicity(self) -> int:
        """Sum of multiplicities over all tuples."""
        return int(self._store.total)

    def __iter__(self) -> Iterator[Row]:
        return self._store.iter_rows()

    def __contains__(self, row: Sequence[RowValue]) -> bool:
        return tuple(row) in self._store

    def items(self) -> Iterator[Tuple[Row, int]]:
        return self._store.iter_items()

    def multiplicity(self, row: Sequence[RowValue]) -> int:
        return self._store.multiplicity(tuple(row))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema.names == other.schema.names and dict(self.items()) == dict(
            other.items()
        )

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {self.schema}, {len(self)} tuples)"

    # -- mutation ---------------------------------------------------------------

    def add(self, row: Sequence[RowValue], multiplicity: int = 1) -> None:
        """Add ``multiplicity`` copies of ``row`` (negative values delete)."""
        if len(row) != self.arity:
            raise RelationError(
                f"row arity {len(row)} does not match schema arity {self.arity} "
                f"of relation {self.name!r}"
            )
        if multiplicity == 0:
            return
        self._store.add(tuple(row), multiplicity)

    def remove(self, row: Sequence[RowValue], multiplicity: int = 1) -> None:
        """Remove ``multiplicity`` copies of ``row``."""
        self.add(row, -multiplicity)

    def add_batch(
        self,
        rows: Sequence[Row],
        multiplicities: Sequence[int],
        validated: bool = False,
    ) -> None:
        """Apply one signed delta (rows + multiplicities) in a single pass.

        Semantically a loop of :meth:`add` — the per-row arity check included
        — but with one version bump for the whole delta (downstream caches
        see a single mutation) and vectorised column encoding for appends.
        ``validated=True`` skips the arity pre-check and tuple coercion for
        callers that already pass checked tuple rows (the IVM batch path
        validates while netting).
        """
        arity = self.arity
        if not validated:
            # Validate (and coerce, exactly like ``add``) everything before
            # mutating anything: a mid-batch failure must not leave rows
            # applied under an unbumped version (every version-guarded cache
            # would then serve stale state as fresh).
            coerced = []
            for row in rows:
                if len(row) != arity:
                    raise RelationError(
                        f"row arity {len(row)} does not match schema arity {arity} "
                        f"of relation {self.name!r}"
                    )
                coerced.append(tuple(row))
            rows = coerced
        self._store.add_batch(rows, multiplicities)

    def insert_all(self, rows: Iterable[Sequence[RowValue]]) -> None:
        tuples = [tuple(row) for row in rows]
        self.add_batch(tuples, [1] * len(tuples))

    def clear(self) -> None:
        self._store.clear()

    def changes_since(self, version: int) -> Optional[List[Tuple[Row, int]]]:
        """The signed row changes applied after ``version``, oldest first.

        Returns None when the store's bounded change log cannot reconstruct
        them — the requested version predates its coverage, or a ``clear``
        happened since.  Consumers (the engine's delta-aware view cache) then
        fall back to a full recompute.
        """
        return self._store.changes_since(version)

    # -- columnar view -----------------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter; bumped on every change to the stored tuples."""
        return self._store.version

    @property
    def storage_key(self) -> Tuple[int, int]:
        """The ``(version, epoch)`` pair guarding zero-copy snapshots."""
        store = self._store
        return (store.version, store.epoch)

    # -- snapshot pinning (the serving layer's epoch generations) ----------------

    def pin(self) -> None:
        """Pin the store's current arrays for an epoch-stable snapshot.

        See :meth:`repro.data.tuplestore.TupleStore.pin`; the serving
        layer's :class:`~repro.serving.SnapshotManager` pins every relation
        of a published generation and releases the pins when the generation
        retires.
        """
        self._store.pin()

    def unpin(self) -> None:
        """Release one snapshot pin (never runs physical work)."""
        self._store.unpin()

    def compact_storage(self) -> None:
        """Force a tombstone sweep even while snapshot pins are held.

        The publish path wants dense arrays for the next generation's
        snapshot; the sweep replaces (never mutates) the stored arrays, so
        already-pinned generations keep reading their original buffers.
        """
        if self._store.zeros:
            self._store.compact(force=True)

    def column_store(self):
        """The cached dictionary-encoded columnar view of this relation.

        A zero-copy wrapper over the tuple store's live code, multiplicity
        and dictionary arrays — building one never re-encodes the relation.
        Tombstoned rows are compacted away first, so the view is dense; any
        later mutation bumps :attr:`version` and the next call re-wraps the
        (already encoded) arrays.  See :mod:`repro.data.colstore`.
        """
        from repro.data.colstore import ColumnStore

        store = self._store
        key = (store.version, store.epoch)
        cached = self._column_store
        if cached is not None and self._column_store_key == key:
            return cached
        if store.zeros:
            store.compact()
            key = (store.version, store.epoch)
        snapshot = ColumnStore.from_tuplestore(self.name, self.schema, store)
        self._column_store = snapshot
        self._column_store_key = key
        return snapshot

    def cached_column_store(self):
        """The cached store only if it is current — never triggers a rebuild.

        Update-heavy code (the batched IVM propagation) asks this first: a
        fresh store means the vectorised CSR path over the full encoding is
        free, while ``None`` means the caller should fall back to its
        incrementally maintained indexes.
        """
        store = self._store
        if (
            self._column_store is not None
            and self._column_store_key == (store.version, store.epoch)
        ):
            return self._column_store
        return None

    # -- checkpoint pickling -------------------------------------------------------

    def __getstate__(self) -> Dict:
        """Drop the zero-copy column-store cache: it aliases live buffers of
        this process and is rebuilt lazily (and cheaply) after a restore."""
        state = self.__dict__.copy()
        state["_column_store"] = None
        state["_column_store_key"] = (-1, -1)
        return state

    # -- derived views -----------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Relation":
        clone = Relation(name or self.name, self.schema)
        clone._store = self._store.copy()
        return clone

    def empty_like(self, name: Optional[str] = None) -> "Relation":
        return Relation(name or self.name, self.schema)

    @staticmethod
    def from_store(name: str, store: TupleStore) -> "Relation":
        """Wrap an existing :class:`TupleStore` (the partition path)."""
        relation = Relation(name, store.schema)
        relation._store = store
        return relation

    def partition(self, assignments, parts: int) -> List["Relation"]:
        """Split into ``parts`` relations by a per-slot assignment array.

        ``assignments`` maps each *storage slot* (post-compaction order, the
        order :meth:`column_store` exposes) to a part in ``[0, parts)``.
        Each child is built through :meth:`TupleStore.take` — code arrays
        gathered, dictionaries shallow-copied, row tuples shared by reference
        — so no child ever re-materialises or re-encodes its rows.  Tombstones
        are compacted away first so slots align with the live rows.
        """
        import numpy as np

        store = self._store
        if store.zeros:
            store.compact()
        store.flush_encodings()
        assignments = np.asarray(assignments, dtype=np.int64)
        if assignments.shape[0] != store.row_count:
            raise RelationError(
                f"partition of {self.name!r}: {assignments.shape[0]} assignments "
                f"for {store.row_count} stored rows"
            )
        return [
            Relation.from_store(
                self.name, store.take(np.nonzero(assignments == part)[0])
            )
            for part in range(parts)
        ]

    def rows(self) -> List[Row]:
        """All distinct rows (multiplicity ignored)."""
        return list(self._store.iter_rows())

    def _canonical_rows(self) -> List[Row]:
        """Live rows in a deterministic order independent of mutation history.

        Sorted by the row values themselves (falling back to a repr key for
        rows that are not mutually comparable), so equivalence tests and
        samplers see the same order however the multiset was built.
        """
        rows = list(self._store.iter_rows())
        try:
            rows.sort()
        except TypeError:
            rows.sort(key=lambda row: tuple(repr(value) for value in row))
        return rows

    def expanded_rows(self) -> Iterator[Row]:
        """Iterate rows with positive multiplicity, repeated per multiplicity.

        The order is canonical (sorted by row value), independent of the
        insertion/deletion history that produced the multiset.
        """
        multiplicity_of = self._store.multiplicity
        for row in self._canonical_rows():
            multiplicity = multiplicity_of(row)
            if multiplicity < 0:
                raise RelationError(
                    "cannot expand a relation with negative multiplicities"
                )
            for _ in range(multiplicity):
                yield row

    def column(self, name: str) -> List[RowValue]:
        """Distinct-row values of one attribute (multiplicity ignored)."""
        index = self.schema.index_of(name)
        return [row[index] for row in self._store.iter_rows()]

    def active_domain(self, name: str) -> List[RowValue]:
        """Sorted distinct values of one attribute."""
        index = self.schema.index_of(name)
        return sorted({row[index] for row in self._store.iter_rows()})

    def row_dicts(self) -> Iterator[Dict[str, RowValue]]:
        names = self.schema.names
        for row in self._store.iter_rows():
            yield dict(zip(names, row))

    def sample_rows(self, count: int, seed: int = 0) -> List[Row]:
        """Sample ``count`` distinct rows without replacement.

        Deterministic in ``seed`` *and* independent of insertion history: the
        population is the canonical (value-sorted) row order.
        """
        rng = random.Random(seed)
        rows = self._canonical_rows()
        if count >= len(rows):
            return rows
        return rng.sample(rows, count)

    def head(self, count: int = 5) -> List[Row]:
        out = []
        for row in self._store.iter_rows():
            out.append(row)
            if len(out) >= count:
                break
        return out

    # -- convenience constructors -------------------------------------------------

    @staticmethod
    def from_dicts(
        name: str,
        schema: Schema,
        dict_rows: Iterable[Mapping[str, RowValue]],
    ) -> "Relation":
        names = schema.names
        rows = [
            tuple(mapping[column] for column in names) for mapping in dict_rows
        ]
        return Relation(name, schema, rows=rows)

    @staticmethod
    def from_columns(
        name: str,
        schema: Schema,
        columns: Mapping[str, Sequence[RowValue]],
    ) -> "Relation":
        names = schema.names
        missing = [column for column in names if column not in columns]
        if missing:
            raise RelationError(f"missing columns {missing} for relation {name!r}")
        lengths = {len(columns[column]) for column in names}
        if len(lengths) > 1:
            raise RelationError(f"columns have inconsistent lengths: {lengths}")
        rows = list(zip(*(columns[column] for column in names))) if names else []
        return Relation(name, schema, rows=rows)

    # -- pretty printing -----------------------------------------------------------

    def to_table(self, limit: int = 10) -> str:
        """ASCII rendering of (up to ``limit``) rows, for examples and docs."""
        header = " | ".join(self.schema.names)
        separator = "-" * len(header)
        lines = [header, separator]
        for position, (row, multiplicity) in enumerate(self.items()):
            if position >= limit:
                lines.append(f"... ({len(self) - limit} more rows)")
                break
            rendered = " | ".join(str(value) for value in row)
            if multiplicity != 1:
                rendered += f"  (x{multiplicity})"
            lines.append(rendered)
        return "\n".join(lines)


def relation_from_rows(
    name: str,
    attribute_names: Sequence[str],
    rows: Iterable[Sequence[RowValue]],
    categorical: Optional[Iterable[str]] = None,
) -> Relation:
    """Convenience: build a relation from attribute names and row sequences."""
    schema = Schema.from_names(list(attribute_names), categorical)
    return Relation(name, schema, rows=rows)
