"""Multiset relations: tuples mapped to integer multiplicities.

A :class:`Relation` stores its rows in a dictionary ``tuple -> multiplicity``.
Multiplicities live in the ring of integers, which gives the uniform treatment
of inserts (+1) and deletes (-1) described in Section 3.1 of the paper, and
means that a natural join multiplies multiplicities while a union adds them.
Tuples whose multiplicity reaches zero are dropped from the map.
"""

from __future__ import annotations

import random
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.data.attribute import Attribute, AttributeType, Schema, SchemaError

Row = Tuple
RowValue = object

#: How many recent changes a relation remembers (see :meth:`Relation.changes_since`).
CHANGE_LOG_LIMIT = 128


class RelationError(ValueError):
    """Raised on malformed relation operations."""


class Relation:
    """A named multiset relation over a :class:`Schema`.

    The relation maps each distinct tuple (a Python tuple aligned with the
    schema's attribute order) to a non-zero integer multiplicity.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Optional[Iterable[Sequence[RowValue]]] = None,
        multiplicities: Optional[Mapping[Row, int]] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self._data: Dict[Row, int] = {}
        self._version = 0
        self._column_store = None
        # The cheap changed-rows log: one *group* per mutation — a list of
        # (row, signed multiplicity) pairs tagged with the version after the
        # change — bounded to CHANGE_LOG_LIMIT groups (an ``add_batch`` logs
        # one group for the whole delta instead of one entry per row, so
        # batched IVM streams pay one deque append per batch).  ``_log_floor``
        # is the oldest version the log can still reconstruct changes from.
        self._change_log: Deque[Tuple[int, List[Tuple[Row, int]]]] = deque(
            maxlen=CHANGE_LOG_LIMIT
        )
        self._log_floor = 0
        if multiplicities is not None:
            for row, multiplicity in multiplicities.items():
                self.add(tuple(row), multiplicity)
        if rows is not None:
            for row in rows:
                self.add(tuple(row), 1)

    # -- basic protocol ---------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.schema)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return self.schema.names

    def __len__(self) -> int:
        """Number of distinct tuples (with non-zero multiplicity)."""
        return len(self._data)

    def total_multiplicity(self) -> int:
        """Sum of multiplicities over all tuples."""
        return sum(self._data.values())

    def __iter__(self) -> Iterator[Row]:
        return iter(self._data)

    def __contains__(self, row: Sequence[RowValue]) -> bool:
        return tuple(row) in self._data

    def items(self) -> Iterator[Tuple[Row, int]]:
        return iter(self._data.items())

    def multiplicity(self, row: Sequence[RowValue]) -> int:
        return self._data.get(tuple(row), 0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema.names == other.schema.names and self._data == other._data

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {self.schema}, {len(self)} tuples)"

    # -- mutation ---------------------------------------------------------------

    def add(self, row: Sequence[RowValue], multiplicity: int = 1) -> None:
        """Add ``multiplicity`` copies of ``row`` (negative values delete)."""
        if len(row) != self.arity:
            raise RelationError(
                f"row arity {len(row)} does not match schema arity {self.arity} "
                f"of relation {self.name!r}"
            )
        if multiplicity == 0:
            return
        key = tuple(row)
        updated = self._data.get(key, 0) + multiplicity
        if updated == 0:
            self._data.pop(key, None)
        else:
            self._data[key] = updated
        self._version += 1
        self._log_change(self._version, key, multiplicity)

    def remove(self, row: Sequence[RowValue], multiplicity: int = 1) -> None:
        """Remove ``multiplicity`` copies of ``row``."""
        self.add(row, -multiplicity)

    def add_batch(
        self,
        rows: Sequence[Row],
        multiplicities: Sequence[int],
        validated: bool = False,
    ) -> None:
        """Apply one signed delta (rows + multiplicities) in a single pass.

        Semantically a loop of :meth:`add` — the per-row arity check included
        — but with one version bump for the whole delta, which is what the
        batched IVM path wants: downstream caches see a single mutation.
        ``validated=True`` skips the arity pre-check for callers that already
        checked every row (the IVM batch path validates while netting).
        """
        arity = self.arity
        if not validated:
            # Validate everything before mutating anything: a mid-batch
            # failure must not leave rows applied under an unbumped version
            # (every version-guarded cache would then serve stale state as
            # fresh).
            for row in rows:
                if len(row) != arity:
                    raise RelationError(
                        f"row arity {len(row)} does not match schema arity {arity} "
                        f"of relation {self.name!r}"
                    )
        data = self._data
        logged: List[Tuple[Row, int]] = []
        for row, multiplicity in zip(rows, multiplicities):
            if multiplicity == 0:
                continue
            key = tuple(row)
            updated = data.get(key, 0) + multiplicity
            if updated == 0:
                data.pop(key, None)
            else:
                data[key] = updated
            logged.append((key, multiplicity))
        self._version += 1
        if logged:
            maxlen = self._change_log.maxlen or 0
            if len(logged) >= maxlen:
                # A delta this large exceeds what any log consumer would
                # replay (they cap far below CHANGE_LOG_LIMIT); drop coverage
                # instead of pinning the whole batch in memory.
                self._change_log.clear()
                self._log_floor = self._version
            else:
                self._log_group(self._version, logged)

    def insert_all(self, rows: Iterable[Sequence[RowValue]]) -> None:
        for row in rows:
            self.add(row, 1)

    def clear(self) -> None:
        self._data.clear()
        self._version += 1
        # A clear is not representable as a small delta: drop log coverage.
        self._change_log.clear()
        self._log_floor = self._version

    def _log_change(self, version: int, row: Row, multiplicity: int) -> None:
        self._log_group(version, [(row, multiplicity)])

    def _log_group(self, version: int, changes: List[Tuple[Row, int]]) -> None:
        log = self._change_log
        if len(log) == log.maxlen:
            # Evicting the oldest group loses coverage of its version.
            self._log_floor = max(self._log_floor, log[0][0])
        log.append((version, changes))

    def changes_since(self, version: int) -> Optional[List[Tuple[Row, int]]]:
        """The signed row changes applied after ``version``, oldest first.

        Returns None when the log cannot reconstruct them — the requested
        version predates the bounded log's coverage, or a ``clear`` happened
        since.  Consumers (the engine's delta-aware view cache) then fall
        back to a full recompute.
        """
        if version < self._log_floor:
            return None
        if version >= self._version:
            return []
        out: List[Tuple[Row, int]] = []
        for logged_version, changes in self._change_log:
            if logged_version > version:
                out.extend(changes)
        return out

    # -- columnar view -----------------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter; bumped on every change to the stored tuples."""
        return self._version

    def column_store(self):
        """The cached dictionary-encoded columnar view of this relation.

        The store snapshots the current tuples; any mutation (``add``,
        ``remove``, ``clear`` — including IVM deltas applied through them)
        bumps :attr:`version` and invalidates the cache, so the next call
        re-encodes.  See :mod:`repro.data.colstore`.
        """
        from repro.data.colstore import ColumnStore

        store = self._column_store
        if store is None or store.version != self._version:
            store = ColumnStore(self, version=self._version)
            self._column_store = store
        return store

    def cached_column_store(self):
        """The cached store only if it is current — never triggers a rebuild.

        Update-heavy code (the batched IVM propagation) asks this first: a
        fresh store means the vectorised CSR path over the full encoding is
        free, while ``None`` means re-encoding would cost O(rows) and the
        caller should fall back to its incrementally maintained indexes.
        """
        store = self._column_store
        if store is not None and store.version == self._version:
            return store
        return None

    # -- derived views -----------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Relation":
        clone = Relation(name or self.name, self.schema)
        clone._data = dict(self._data)
        return clone

    def empty_like(self, name: Optional[str] = None) -> "Relation":
        return Relation(name or self.name, self.schema)

    def rows(self) -> List[Row]:
        """All distinct rows (multiplicity ignored)."""
        return list(self._data)

    def expanded_rows(self) -> Iterator[Row]:
        """Iterate rows with positive multiplicity, repeated per multiplicity."""
        for row, multiplicity in self._data.items():
            if multiplicity < 0:
                raise RelationError(
                    "cannot expand a relation with negative multiplicities"
                )
            for _ in range(multiplicity):
                yield row

    def column(self, name: str) -> List[RowValue]:
        """Distinct-row values of one attribute (multiplicity ignored)."""
        index = self.schema.index_of(name)
        return [row[index] for row in self._data]

    def active_domain(self, name: str) -> List[RowValue]:
        """Sorted distinct values of one attribute."""
        index = self.schema.index_of(name)
        return sorted({row[index] for row in self._data})

    def row_dicts(self) -> Iterator[Dict[str, RowValue]]:
        names = self.schema.names
        for row in self._data:
            yield dict(zip(names, row))

    def sample_rows(self, count: int, seed: int = 0) -> List[Row]:
        """Sample ``count`` distinct rows without replacement (deterministic)."""
        rng = random.Random(seed)
        rows = list(self._data)
        if count >= len(rows):
            return rows
        return rng.sample(rows, count)

    def head(self, count: int = 5) -> List[Row]:
        out = []
        for row in self._data:
            out.append(row)
            if len(out) >= count:
                break
        return out

    # -- convenience constructors -------------------------------------------------

    @staticmethod
    def from_dicts(
        name: str,
        schema: Schema,
        dict_rows: Iterable[Mapping[str, RowValue]],
    ) -> "Relation":
        relation = Relation(name, schema)
        names = schema.names
        for mapping in dict_rows:
            relation.add(tuple(mapping[column] for column in names))
        return relation

    @staticmethod
    def from_columns(
        name: str,
        schema: Schema,
        columns: Mapping[str, Sequence[RowValue]],
    ) -> "Relation":
        names = schema.names
        missing = [column for column in names if column not in columns]
        if missing:
            raise RelationError(f"missing columns {missing} for relation {name!r}")
        lengths = {len(columns[column]) for column in names}
        if len(lengths) > 1:
            raise RelationError(f"columns have inconsistent lengths: {lengths}")
        relation = Relation(name, schema)
        length = lengths.pop() if lengths else 0
        for position in range(length):
            relation.add(tuple(columns[column][position] for column in names))
        return relation

    # -- pretty printing -----------------------------------------------------------

    def to_table(self, limit: int = 10) -> str:
        """ASCII rendering of (up to ``limit``) rows, for examples and docs."""
        header = " | ".join(self.schema.names)
        separator = "-" * len(header)
        lines = [header, separator]
        for position, (row, multiplicity) in enumerate(self._data.items()):
            if position >= limit:
                lines.append(f"... ({len(self) - limit} more rows)")
                break
            rendered = " | ".join(str(value) for value in row)
            if multiplicity != 1:
                rendered += f"  (x{multiplicity})"
            lines.append(rendered)
        return "\n".join(lines)


def relation_from_rows(
    name: str,
    attribute_names: Sequence[str],
    rows: Iterable[Sequence[RowValue]],
    categorical: Optional[Iterable[str]] = None,
) -> Relation:
    """Convenience: build a relation from attribute names and row sequences."""
    schema = Schema.from_names(list(attribute_names), categorical)
    return Relation(name, schema, rows=rows)
