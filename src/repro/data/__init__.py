"""Multiset relational substrate.

This package implements the in-memory relational layer that every other
subsystem builds on.  Relations map tuples to integer multiplicities (the
ring-of-integers view of Section 3.1 of the paper), which gives a uniform
treatment of inserts and deletes and makes joins a sum-product computation.
Storage is array-native: a relation is a façade over the dictionary-encoded
:class:`~repro.data.tuplestore.TupleStore`, and columnar snapshots wrap its
arrays zero-copy.
"""

from repro.data.attribute import Attribute, AttributeType, Schema
from repro.data.relation import Relation
from repro.data.colstore import ColumnEncoding, ColumnStore
from repro.data.database import Database, FunctionalDependency
from repro.data.tuplestore import TupleStore, tuplestore_stats
from repro.data import algebra
from repro.data.csv_io import read_csv, write_csv

__all__ = [
    "Attribute",
    "AttributeType",
    "Schema",
    "Relation",
    "ColumnEncoding",
    "ColumnStore",
    "TupleStore",
    "tuplestore_stats",
    "Database",
    "FunctionalDependency",
    "algebra",
    "read_csv",
    "write_csv",
]
