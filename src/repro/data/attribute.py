"""Attributes and schemas.

An :class:`Attribute` is a named column with a type that matters for the
learning layer: continuous attributes participate in sums of products, while
categorical attributes participate through group-by keys (the sparse-tensor
encoding of one-hot features described in Section 2.1 of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Tuple


class AttributeType(enum.Enum):
    """The type of an attribute as seen by the aggregate/learning layers."""

    CONTINUOUS = "continuous"
    CATEGORICAL = "categorical"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AttributeType.{self.name}"


@dataclass(frozen=True)
class Attribute:
    """A named, typed column.

    Parameters
    ----------
    name:
        Column name, unique within a schema (and, by convention, within a
        database: natural joins connect equally named attributes).
    attribute_type:
        Whether the values are treated as continuous numbers or as categories.
    """

    name: str
    attribute_type: AttributeType = AttributeType.CONTINUOUS

    @property
    def is_continuous(self) -> bool:
        return self.attribute_type is AttributeType.CONTINUOUS

    @property
    def is_categorical(self) -> bool:
        return self.attribute_type is AttributeType.CATEGORICAL

    def __str__(self) -> str:
        return self.name


def continuous(name: str) -> Attribute:
    """Shorthand constructor for a continuous attribute."""
    return Attribute(name, AttributeType.CONTINUOUS)


def categorical(name: str) -> Attribute:
    """Shorthand constructor for a categorical attribute."""
    return Attribute(name, AttributeType.CATEGORICAL)


class SchemaError(ValueError):
    """Raised when a schema is malformed or attribute lookups fail."""


@dataclass(frozen=True)
class Schema:
    """An ordered collection of attributes with unique names."""

    attributes: Tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [attribute.name for attribute in self.attributes]
        if len(names) != len(set(names)):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise SchemaError(f"duplicate attribute names in schema: {duplicates}")

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def of(*attributes: Attribute) -> "Schema":
        return Schema(tuple(attributes))

    @staticmethod
    def from_names(
        names: Sequence[str],
        categorical_names: Optional[Iterable[str]] = None,
    ) -> "Schema":
        """Build a schema from attribute names.

        ``categorical_names`` selects which of them are categorical; the rest
        default to continuous.
        """
        categorical_set = set(categorical_names or ())
        unknown = categorical_set - set(names)
        if unknown:
            raise SchemaError(f"categorical names not in schema: {sorted(unknown)}")
        return Schema(
            tuple(
                Attribute(
                    name,
                    AttributeType.CATEGORICAL
                    if name in categorical_set
                    else AttributeType.CONTINUOUS,
                )
                for name in names
            )
        )

    # -- lookups ---------------------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(attribute.name for attribute in self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        if isinstance(name, Attribute):
            return name in self.attributes
        return name in self.names

    def attribute(self, name: str) -> Attribute:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"no attribute named {name!r} in schema {self.names}")

    def index_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError as exc:
            raise SchemaError(
                f"no attribute named {name!r} in schema {self.names}"
            ) from exc

    def indices_of(self, names: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.index_of(name) for name in names)

    def is_categorical(self, name: str) -> bool:
        return self.attribute(name).is_categorical

    def is_continuous(self, name: str) -> bool:
        return self.attribute(name).is_continuous

    # -- schema algebra ---------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a new schema restricted to ``names``, in the given order."""
        return Schema(tuple(self.attribute(name) for name in names))

    def rename(self, mapping: dict) -> "Schema":
        """Return a schema with attributes renamed according to ``mapping``."""
        return Schema(
            tuple(
                Attribute(mapping.get(attribute.name, attribute.name), attribute.attribute_type)
                for attribute in self.attributes
            )
        )

    def union(self, other: "Schema") -> "Schema":
        """Concatenate two schemas, keeping the first occurrence of shared names.

        Shared names must agree on the attribute type.
        """
        result = list(self.attributes)
        seen = {attribute.name: attribute for attribute in result}
        for attribute in other.attributes:
            existing = seen.get(attribute.name)
            if existing is None:
                result.append(attribute)
                seen[attribute.name] = attribute
            elif existing.attribute_type is not attribute.attribute_type:
                raise SchemaError(
                    f"attribute {attribute.name!r} has conflicting types: "
                    f"{existing.attribute_type} vs {attribute.attribute_type}"
                )
        return Schema(tuple(result))

    def common_names(self, other: "Schema") -> Tuple[str, ...]:
        """Names shared with ``other``, in this schema's order."""
        other_names = set(other.names)
        return tuple(name for name in self.names if name in other_names)

    def __str__(self) -> str:
        parts = ", ".join(
            f"{attribute.name}:{'cat' if attribute.is_categorical else 'num'}"
            for attribute in self.attributes
        )
        return f"({parts})"
