"""Relational-algebra operators over multiset relations.

All operators respect multiplicities: selection and projection keep them
(projection adds them up per surviving tuple), joins multiply them, union adds
them, and difference subtracts them.  These are exactly the semantics of the
relational semiring / integer-ring view used throughout the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.data.attribute import Attribute, AttributeType, Schema, SchemaError
from repro.data.relation import Relation, RelationError, Row


def select(relation: Relation, predicate: Callable[[Dict[str, object]], bool],
           name: Optional[str] = None) -> Relation:
    """Keep tuples for which ``predicate`` holds (predicate sees a dict row)."""
    result = Relation(name or f"select({relation.name})", relation.schema)
    names = relation.schema.names
    for row, multiplicity in relation.items():
        if predicate(dict(zip(names, row))):
            result.add(row, multiplicity)
    return result


def select_equals(relation: Relation, attribute: str, value: object,
                  name: Optional[str] = None) -> Relation:
    """Selection ``attribute = value`` (fast path, no dict construction)."""
    index = relation.schema.index_of(attribute)
    result = Relation(name or f"select({relation.name})", relation.schema)
    for row, multiplicity in relation.items():
        if row[index] == value:
            result.add(row, multiplicity)
    return result


def project(relation: Relation, names: Sequence[str],
            name: Optional[str] = None) -> Relation:
    """Multiset projection onto ``names`` (multiplicities accumulate)."""
    schema = relation.schema.project(names)
    indices = relation.schema.indices_of(names)
    result = Relation(name or f"project({relation.name})", schema)
    for row, multiplicity in relation.items():
        result.add(tuple(row[index] for index in indices), multiplicity)
    return result


def rename(relation: Relation, mapping: Mapping[str, str],
           name: Optional[str] = None) -> Relation:
    """Rename attributes according to ``mapping``."""
    schema = relation.schema.rename(dict(mapping))
    result = Relation(name or relation.name, schema)
    for row, multiplicity in relation.items():
        result.add(row, multiplicity)
    return result


def union(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Multiset union: multiplicities add up."""
    if left.schema.names != right.schema.names:
        raise SchemaError(
            f"union requires identical schemas: {left.schema.names} vs {right.schema.names}"
        )
    result = left.copy(name or f"union({left.name},{right.name})")
    for row, multiplicity in right.items():
        result.add(row, multiplicity)
    return result


def difference(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Multiset difference: subtract multiplicities (may go negative)."""
    if left.schema.names != right.schema.names:
        raise SchemaError(
            f"difference requires identical schemas: {left.schema.names} vs {right.schema.names}"
        )
    result = left.copy(name or f"difference({left.name},{right.name})")
    for row, multiplicity in right.items():
        result.add(row, -multiplicity)
    return result


def cartesian_product(left: Relation, right: Relation,
                      name: Optional[str] = None) -> Relation:
    """Cartesian product (schemas must be disjoint); multiplicities multiply."""
    shared = set(left.schema.names) & set(right.schema.names)
    if shared:
        raise SchemaError(f"cartesian product requires disjoint schemas, shared: {sorted(shared)}")
    schema = left.schema.union(right.schema)
    result = Relation(name or f"product({left.name},{right.name})", schema)
    for left_row, left_multiplicity in left.items():
        for right_row, right_multiplicity in right.items():
            result.add(left_row + right_row, left_multiplicity * right_multiplicity)
    return result


def natural_join(left: Relation, right: Relation,
                 name: Optional[str] = None) -> Relation:
    """Hash-based natural join on all shared attribute names."""
    shared = left.schema.common_names(right.schema)
    if not shared:
        return cartesian_product(left, right, name)
    schema = left.schema.union(right.schema)
    left_shared = left.schema.indices_of(shared)
    right_shared = right.schema.indices_of(shared)
    right_extra_names = [column for column in right.schema.names if column not in shared]
    right_extra = right.schema.indices_of(right_extra_names)

    # Build the hash table on the smaller relation for fewer probe misses.
    index: Dict[Tuple, List[Tuple[Row, int]]] = {}
    for row, multiplicity in right.items():
        key = tuple(row[position] for position in right_shared)
        index.setdefault(key, []).append((row, multiplicity))

    result = Relation(name or f"join({left.name},{right.name})", schema)
    for row, multiplicity in left.items():
        key = tuple(row[position] for position in left_shared)
        for other_row, other_multiplicity in index.get(key, ()):  # type: ignore[arg-type]
            combined = row + tuple(other_row[position] for position in right_extra)
            result.add(combined, multiplicity * other_multiplicity)
    return result


def natural_join_all(relations: Sequence[Relation], name: Optional[str] = None) -> Relation:
    """Left-deep natural join of a sequence of relations."""
    if not relations:
        raise RelationError("natural_join_all requires at least one relation")
    result = relations[0].copy()
    for relation in relations[1:]:
        result = natural_join(result, relation)
    result.name = name or "join(" + ",".join(relation.name for relation in relations) + ")"
    return result


def semi_join(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Keep tuples of ``left`` that join with at least one tuple of ``right``."""
    shared = left.schema.common_names(right.schema)
    if not shared:
        return left.copy(name)
    left_shared = left.schema.indices_of(shared)
    right_shared = right.schema.indices_of(shared)
    keys = {tuple(row[position] for position in right_shared) for row in right}
    result = Relation(name or f"semijoin({left.name},{right.name})", left.schema)
    for row, multiplicity in left.items():
        if tuple(row[position] for position in left_shared) in keys:
            result.add(row, multiplicity)
    return result


def group_by_aggregate(
    relation: Relation,
    group_by: Sequence[str],
    aggregate: Callable[[Dict[str, object]], float],
    aggregate_name: str = "agg",
    use_multiplicity: bool = True,
    name: Optional[str] = None,
) -> Relation:
    """SUM-style group-by aggregate.

    For each group (projection of the tuple onto ``group_by``) the result holds
    the sum of ``aggregate(row) * multiplicity`` over the group's tuples.  The
    output schema is ``group_by + (aggregate_name,)`` with the aggregate column
    continuous.
    """
    names = relation.schema.names
    group_indices = relation.schema.indices_of(group_by)
    totals: Dict[Tuple, float] = {}
    for row, multiplicity in relation.items():
        value = aggregate(dict(zip(names, row)))
        weight = multiplicity if use_multiplicity else 1
        key = tuple(row[index] for index in group_indices)
        totals[key] = totals.get(key, 0.0) + value * weight

    schema = Schema(
        tuple(relation.schema.attribute(column) for column in group_by)
        + (Attribute(aggregate_name, AttributeType.CONTINUOUS),)
    )
    result = Relation(name or f"groupby({relation.name})", schema)
    for key, total in totals.items():
        result.add(key + (total,))
    return result


def aggregate_scalar(
    relation: Relation,
    aggregate: Callable[[Dict[str, object]], float],
    use_multiplicity: bool = True,
) -> float:
    """SUM of ``aggregate(row) * multiplicity`` over the whole relation."""
    names = relation.schema.names
    total = 0.0
    for row, multiplicity in relation.items():
        weight = multiplicity if use_multiplicity else 1
        total += aggregate(dict(zip(names, row))) * weight
    return total


def count_rows(relation: Relation) -> int:
    """Total multiplicity of the relation (SUM(1))."""
    return relation.total_multiplicity()
