"""Dictionary-encoded columnar storage for relations.

A :class:`ColumnStore` is the vectorised view of a :class:`Relation`: every
attribute becomes a *dictionary encoding* — a small array of distinct values
plus an integer code per row — and the multiplicities become one float array.
All of the engine's hot operations (connection keys, group-by keys, filter
masks, join-key alignment against child views) then reduce to integer array
manipulation: combined keys are built by mixing per-attribute codes
arithmetically (or via ``np.unique(axis=0)`` when the cardinality product
would overflow), filters are evaluated once per *distinct* value and gathered
through the codes, and numeric columns are decoded through the dictionary.

Stores are cached on the relation (see :meth:`Relation.column_store`) and
invalidated by the relation's mutation counter, so repeated batch evaluations
— gradient descent steps, decision-tree node splits, IVM refreshes — reuse
the encodings instead of rebuilding per-row Python state every time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.tuplestore import (
    _GrowArray,
    _ints_exceed_float64_precision,
    tuplestore_stats,
)

__all__ = ["ColumnEncoding", "ColumnStore", "DeltaColumnStore", "combine_codes"]

#: Cap on the mixed-radix cardinality product; above it combined keys fall
#: back to row-wise ``np.unique(axis=0)`` to avoid int64 overflow.
_MIX_LIMIT = 2 ** 62


class ColumnEncoding:
    """One dictionary-encoded column: distinct values + one int64 code per row."""

    __slots__ = ("values", "codes", "_float_values", "_float_ready",
                 "_sortable", "_sortable_ready")

    def __init__(self, values: List[object], codes: np.ndarray) -> None:
        self.values = values                      # python values, in code order
        self.codes = codes                        # int64, one per row
        self._float_values: Optional[np.ndarray] = None
        self._float_ready = False
        self._sortable: Optional[np.ndarray] = None
        self._sortable_ready = False

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def float_values(self) -> Optional[np.ndarray]:
        """The dictionary decoded to float64 (None when not numeric).

        The lazy fill computes first and publishes the ready flag *last*:
        pinned snapshots are shared by concurrent serving readers, and a
        flag set before the value would let a second reader observe
        ``ready`` with the value still unset (misread as "not numeric").
        Racing fills at worst duplicate the work — both results are equal.
        """
        if not self._float_ready:
            try:
                decoded: Optional[np.ndarray] = np.asarray(
                    [float(value) for value in self.values], dtype=np.float64
                )
            except (TypeError, ValueError):
                decoded = None
            self._float_values = decoded
            self._float_ready = True
        return self._float_values

    def sortable_values(self) -> Optional[np.ndarray]:
        """The dictionary as a typed numpy array (None when not comparable).

        Same publish-last ordering as :meth:`float_values` for concurrent
        readers sharing a pinned snapshot.
        """
        if not self._sortable_ready:
            self._sortable = as_sortable_array(self.values)
            self._sortable_ready = True
        return self._sortable


def as_sortable_array(values: Sequence[object]) -> Optional[np.ndarray]:
    """A numeric or string numpy array over ``values``, or None.

    Used for vectorised (searchsorted) join-key matching and filter masks:
    both sides must reduce to the same comparable dtype kind.  Mixed-type
    columns return None — ``np.asarray`` would silently *stringify* them,
    which would equate e.g. ``3`` with ``"3"`` against Python semantics.
    """
    kinds = set(map(type, values))
    try:
        if kinds <= {int, bool}:
            # Keep pure-integer dictionaries exact: casting to float64 would
            # equate distinct values beyond 2**53.
            array = np.asarray(values, dtype=np.int64)
        elif kinds <= {int, bool, float}:
            if _ints_exceed_float64_precision(values):
                return None
            array = np.asarray(values, dtype=np.float64)
        elif kinds == {str}:
            array = np.asarray(values)
        else:
            return None
    except (TypeError, ValueError, OverflowError):
        return None
    if array.ndim != 1 or array.dtype.kind not in "iufU":
        return None
    return array


def _encode_values(raw: List[object]) -> ColumnEncoding:
    """Dictionary-encode one column of python values."""
    count = len(raw)
    if count == 0:
        return ColumnEncoding([], np.empty(0, dtype=np.int64))
    kinds = set(map(type, raw))
    try:
        if kinds <= {int, bool}:
            array = np.asarray(raw, dtype=np.int64)
            values_array, codes = np.unique(array, return_inverse=True)
            values = [int(value) for value in values_array.tolist()]
        elif kinds <= {int, bool, float}:
            if _ints_exceed_float64_precision(raw):
                # float64 would merge distinct huge ints into one code;
                # the first-occurrence encoder keeps Python equality.
                raise TypeError("ints beyond float64 precision")
            array = np.asarray(raw, dtype=np.float64)
            values_array, codes = np.unique(array, return_inverse=True)
            values = values_array.tolist()
        elif kinds == {str}:
            values_array, codes = np.unique(np.asarray(raw), return_inverse=True)
            values = values_array.tolist()
        else:
            raise TypeError("mixed or non-primitive column")
    except (TypeError, ValueError, OverflowError):
        # Generic fallback: first-occurrence encoding through a dictionary.
        index: Dict[object, int] = {}
        values = []
        codes = np.empty(count, dtype=np.int64)
        for position, value in enumerate(raw):
            code = index.get(value)
            if code is None:
                code = len(values)
                index[value] = code
                values.append(value)
            codes[position] = code
        return ColumnEncoding(values, codes)
    return ColumnEncoding(values, codes.reshape(-1).astype(np.int64, copy=False))


def combine_codes(
    columns: Sequence[np.ndarray], cardinalities: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Combine per-attribute code columns into one code per distinct combination.

    Returns ``(codes, combos)`` where ``codes[i]`` indexes the rows of the
    ``(distinct, len(columns))`` matrix ``combos``, whose entries are the
    per-column dictionary indices of each distinct combination.
    """
    if not columns:
        return np.empty(0, dtype=np.int64), np.empty((0, 0), dtype=np.int64)
    if len(columns) == 1:
        uniques, inverse = np.unique(columns[0], return_inverse=True)
        return (
            inverse.reshape(-1).astype(np.int64, copy=False),
            uniques.astype(np.int64, copy=False).reshape(-1, 1),
        )

    radices = [max(int(card), 1) for card in cardinalities]
    product = 1
    for radix in radices:
        product *= radix
    if 0 < product <= _MIX_LIMIT:
        mixed = columns[0].astype(np.int64, copy=True)
        for column, radix in zip(columns[1:], radices[1:]):
            mixed *= radix
            mixed += column
        uniques, inverse = np.unique(mixed, return_inverse=True)
        combos = np.empty((uniques.size, len(columns)), dtype=np.int64)
        remainder = uniques
        for position in range(len(columns) - 1, 0, -1):
            remainder, combos[:, position] = np.divmod(remainder, radices[position])
        combos[:, 0] = remainder
        return inverse.reshape(-1).astype(np.int64, copy=False), combos

    stacked = np.stack(columns, axis=1)
    unique_rows, inverse = np.unique(stacked, axis=0, return_inverse=True)
    return (
        inverse.reshape(-1).astype(np.int64, copy=False),
        unique_rows.astype(np.int64, copy=False),
    )


class ColumnStore:
    """The columnar, dictionary-encoded snapshot of one relation.

    Encodings are built lazily per attribute; combined key codes (for any
    tuple of attributes) are cached, so connection keys, child join keys and
    group-by keys each pay their cost once per store lifetime.
    """

    def __init__(self, relation, version: Optional[int] = None) -> None:
        # The legacy snapshot constructor: materialise and re-encode every
        # row.  Relation.column_store() takes the zero-copy
        # :meth:`from_tuplestore` path instead; anything still landing here
        # pays the full encode and is counted so regressions are visible.
        tuplestore_stats.bump("full_encodes")
        rows: List[Tuple] = []
        multiplicities: List[float] = []
        for row, multiplicity in relation.items():
            rows.append(row)
            multiplicities.append(float(multiplicity))
        self._init_from(
            relation.name,
            relation.schema,
            rows,
            np.asarray(multiplicities, dtype=np.float64),
            relation.version if version is None else version,
        )

    def _init_from(self, name, schema, rows, multiplicities, version) -> None:
        self.relation_name: str = name
        self.schema = schema
        self.version = version
        self.rows = rows
        self.row_count = len(rows)
        self.multiplicities = multiplicities
        self._encodings: Dict[int, ColumnEncoding] = {}
        self._float_columns: Dict[str, Optional[np.ndarray]] = {}
        self._key_cache: Dict[
            Tuple[str, ...],
            Tuple[np.ndarray, List[Tuple], Optional[List[Optional[np.ndarray]]]],
        ] = {}
        self._key_indexes: Dict[Tuple[str, ...], Dict[Tuple, int]] = {}
        self._distinct_counts: Dict[Tuple[str, ...], int] = {}

    @classmethod
    def from_tuplestore(cls, name: str, schema, store) -> "ColumnStore":
        """Zero-copy columnar view over a :class:`~repro.data.tuplestore.TupleStore`.

        The encodings alias the store's live value dictionaries and code
        arrays, the multiplicities alias its multiplicity array, and ``rows``
        aliases its row list — nothing is re-encoded or copied.  The caller
        (``Relation.column_store``) compacts tombstones away first and guards
        the wrapper by the store's ``(version, epoch)`` pair: a snapshot must
        not be read once the owning relation mutated again (in-place
        multiplicity netting writes through the aliased arrays).
        """
        tuplestore_stats.bump("zero_copy_snapshots")
        snapshot = cls.__new__(cls)
        snapshot._init_from(
            name,
            schema,
            store.rows_list(),
            store.multiplicities_view(),
            store.version,
        )
        for position in range(len(schema.names)):
            snapshot._encodings[position] = ColumnEncoding(
                store.column_values(position),
                store.column_codes_view(position),
            )
        return snapshot

    @classmethod
    def from_rows(
        cls,
        name: str,
        schema,
        rows: Sequence[Tuple],
        multiplicities,
        version: int = 0,
    ) -> "ColumnStore":
        """A store over explicit rows — the *delta relation* constructor.

        The batched IVM path encodes an update batch (rows plus signed
        multiplicities, no backing :class:`Relation`) this way, so a delta
        flows through the same dictionary encodings, combined key codes and
        float columns as any base relation.
        """
        store = cls.__new__(cls)
        store._init_from(
            name,
            schema,
            list(rows),
            np.asarray(multiplicities, dtype=np.float64),
            version,
        )
        return store

    def __len__(self) -> int:
        return self.row_count

    # -- per-attribute encodings ---------------------------------------------------------

    def encoding(self, attribute: str) -> ColumnEncoding:
        position = self.schema.index_of(attribute)
        encoding = self._encodings.get(position)
        if encoding is None:
            encoding = _encode_values([row[position] for row in self.rows])
            self._encodings[position] = encoding
        return encoding

    def float_column(self, attribute: str) -> Optional[np.ndarray]:
        """Per-row float64 values of one attribute (None when not numeric)."""
        if attribute not in self._float_columns:
            encoding = self.encoding(attribute)
            decoded = encoding.float_values()
            self._float_columns[attribute] = (
                None if decoded is None else decoded[encoding.codes]
            )
        return self._float_columns[attribute]

    # -- combined keys -------------------------------------------------------------------

    def _key_data(
        self, key: Tuple[str, ...]
    ) -> Tuple[np.ndarray, List[Tuple], Optional[List[Optional[np.ndarray]]]]:
        cached = self._key_cache.get(key)
        if cached is not None:
            return cached
        if not key:
            result: Tuple[np.ndarray, List[Tuple], Optional[List[Optional[np.ndarray]]]] = (
                np.zeros(self.row_count, dtype=np.int64),
                [()],
                [],
            )
        else:
            encodings = [self.encoding(attribute) for attribute in key]
            codes, combos = combine_codes(
                [encoding.codes for encoding in encodings],
                [encoding.cardinality for encoding in encodings],
            )
            tuples = [
                tuple(
                    encoding.values[index]
                    for encoding, index in zip(encodings, combo)
                )
                for combo in combos.tolist()
            ]
            columns: Optional[List[Optional[np.ndarray]]] = []
            for position, encoding in enumerate(encodings):
                typed = encoding.sortable_values()
                columns.append(None if typed is None else typed[combos[:, position]])
            result = (codes, tuples, columns)
        self._key_cache[key] = result
        return result

    def codes_for(self, attributes: Sequence[str]) -> Tuple[np.ndarray, List[Tuple]]:
        """Row codes and distinct value tuples for a combination of attributes.

        ``codes_for(())`` maps every row to the single empty tuple, which lets
        scalar (ungrouped, connectionless) aggregates share the same machinery.
        """
        codes, tuples, _columns = self._key_data(tuple(attributes))
        return codes, tuples

    def distinct_count(self, attributes: Sequence[str]) -> int:
        """Number of distinct value combinations of ``attributes``.

        This is the size of the dictionary :meth:`codes_for` would build —
        the statistic behind the engine's cost-based join-tree rooting (see
        :mod:`repro.engine.statistics`): a child view keyed on these
        attributes has exactly this many entries.  When the combined key data
        is already cached it is reused; otherwise the count is derived from
        the code arrays alone (one ``np.unique``), without materialising the
        distinct value tuples a planner never reads.
        """
        key = tuple(attributes)
        cached = self._key_cache.get(key)
        if cached is not None:
            return len(cached[1])
        count = self._distinct_counts.get(key)
        if count is not None:
            return count
        if not key:
            count = 1
        elif len(key) == 1:
            count = int(np.unique(self.encoding(key[0]).codes).size)
        else:
            encodings = [self.encoding(attribute) for attribute in key]
            _codes, combos = combine_codes(
                [encoding.codes for encoding in encodings],
                [encoding.cardinality for encoding in encodings],
            )
            count = int(combos.shape[0])
        self._distinct_counts[key] = count
        return count

    def key_index(self, attributes: Sequence[str]) -> Dict[Tuple, int]:
        """Distinct key tuple -> key code, cached per attribute combination.

        The inverse of :meth:`codes_for`'s tuple list; the delta-propagation
        machinery probes it to align arbitrary key tuples (e.g. the keys of a
        payload view or a delta block) with this store's code space.
        """
        key = tuple(attributes)
        index = self._key_indexes.get(key)
        if index is None:
            _codes, tuples, _columns = self._key_data(key)
            index = {value: code for code, value in enumerate(tuples)}
            self._key_indexes[key] = index
        return index

    def key_columns(self, attributes: Sequence[str]) -> Optional[List[np.ndarray]]:
        """Typed per-attribute value arrays aligned with ``codes_for``'s tuples.

        None when any attribute's dictionary is not a comparable typed array
        (vectorised join-key matching then falls back to dictionary probing).
        """
        _codes, _tuples, columns = self._key_data(tuple(attributes))
        if columns is None or any(column is None for column in columns):
            return None
        return columns  # type: ignore[return-value]


class _DeltaKey:
    """One registered key of a :class:`DeltaColumnStore`.

    Holds the key dictionary (tuple -> code), the per-entry code array, and
    one growable *bucket* of entry positions per code — the incrementally
    maintained CSR the batched IVM propagation joins against.
    """

    __slots__ = ("positions", "index", "keys", "codes", "buckets",
                 "track_buckets", "scalar", "_bucket_arrays")

    def __init__(self, positions: List[int], track_buckets: bool = True) -> None:
        self.positions = positions
        # Single-attribute keys (the common case) are probed by their bare
        # value — no tuple construction per row; ``keys`` still lists tuples.
        self.scalar = len(positions) == 1
        self.index: Dict[object, int] = {}
        self.keys: List[Tuple] = []
        self.codes = _GrowArray(np.int64)
        # Buckets are plain int lists (appends are just list ops); the array
        # form is cached per bucket and rebuilt only when the bucket grew
        # since it was last read — cost proportional to the rows actually
        # joined, never to the store size.  Keys registered for grouping only
        # (``track_buckets=False``) skip the bucket bookkeeping entirely.
        self.track_buckets = track_buckets
        self.buckets: List[List[int]] = []
        self._bucket_arrays: Dict[int, np.ndarray] = {}

    def probe(self, key: Tuple) -> Optional[int]:
        """The code of a key *tuple* (None when unseen)."""
        return self.index.get(key[0] if self.scalar else key)

    def append_one(self, row: Tuple, entry: int) -> None:
        """Single-row :meth:`extend` without per-call array machinery."""
        if self.scalar:
            probe = row[self.positions[0]]
            key = (probe,)
        else:
            probe = key = tuple(row[position] for position in self.positions)
        code = self.index.get(probe)
        if code is None:
            code = len(self.keys)
            self.index[probe] = code
            self.keys.append(key)
            self.buckets.append([])
        self.codes.append(code)
        if self.track_buckets:
            self.buckets[code].append(entry)

    def extend(self, columns: Sequence[Sequence], count: int, base: int) -> None:
        """Encode ``count`` new entries (``base..``) from transposed columns.

        ``columns`` is the caller's one-time ``zip(*rows)`` transpose, shared
        by every registered key and float column of the store — probing reads
        whole C-level columns instead of indexing each row tuple per key.
        """
        index = self.index
        keys = self.keys
        buckets = self.buckets
        positions = self.positions
        track = self.track_buckets
        if not positions:
            # The empty key (a root's connection key): every row codes to 0.
            if not keys:
                index[()] = 0
                keys.append(())
                buckets.append([])
            self.codes.extend([0] * count)
            if track:
                buckets[0].extend(range(base, base + count))
            return
        codes: List[int] = []
        scalar = self.scalar
        if scalar:
            probes: Sequence = columns[positions[0]]
        else:
            probes = list(zip(*(columns[position] for position in positions)))
        for offset, probe in enumerate(probes):
            code = index.get(probe)
            if code is None:
                code = len(keys)
                index[probe] = code
                keys.append((probe,) if scalar else probe)
                buckets.append([])
            codes.append(code)
            if track:
                buckets[code].append(base + offset)
        self.codes.extend(codes)

    def bucket_array(self, code: int) -> np.ndarray:
        bucket = self.buckets[code]
        cached = self._bucket_arrays.get(code)
        if cached is None or cached.shape[0] != len(bucket):
            cached = np.asarray(bucket, dtype=np.int64)
            self._bucket_arrays[code] = cached
        return cached


class DeltaColumnStore:
    """An append-only dictionary-encoded log of signed tuple deltas.

    Where :class:`ColumnStore` snapshots a relation (and is invalidated by
    any mutation), this store *grows*: update batches append entries with
    signed multiplicities, and every registered decoding — float columns,
    key codes, per-key row buckets — is extended in place, so consumers
    never pay an O(rows) re-encode after a mutation.  Deletes append
    negative entries instead of mutating: all consumers (ring lifts, delta
    joins) are linear in the multiplicity, so a cancelling +1/-1 pair of
    entries contributes exactly zero.

    The batched IVM path maintains one such store per base relation as its
    columnar mirror: a propagation hop is then a bucket concatenation plus
    pure array gathers, independent of the relation's total size.

    Columns and keys must be registered before the first append (the store
    keeps no raw rows to backfill from).
    """

    def __init__(self, name: str, schema) -> None:
        self.name = name
        self.schema = schema
        self.entry_count = 0
        self._multiplicities = _GrowArray(np.float64)
        self._floats: Dict[str, Tuple[int, _GrowArray]] = {}
        self._keys: Dict[Tuple[str, ...], _DeltaKey] = {}
        # Appends are buffered here and encoded on the next read: the
        # per-tuple IVM path appends one row per update but only a fraction
        # of updates ever hop through a given mirror, so eager per-row
        # encoding (one dictionary probe per registered key per row) was
        # pure overhead for the rest.  Flushing in batches also reuses the
        # vectorised multi-row transpose.
        self._pending_rows: List[Tuple] = []
        self._pending_multiplicities: List[float] = []

    def __len__(self) -> int:
        return self.entry_count + len(self._pending_rows)

    # -- registration --------------------------------------------------------------------

    def _check_empty(self) -> None:
        if self.entry_count or self._pending_rows:
            raise ValueError(
                "register columns and keys before the first append; "
                "the delta store keeps no raw rows to backfill from"
            )

    def register_float(self, attribute: str) -> None:
        if attribute in self._floats:
            return
        self._check_empty()
        self._floats[attribute] = (
            self.schema.index_of(attribute),
            _GrowArray(np.float64),
        )

    def register_key(self, attributes: Sequence[str], track_buckets: bool = True) -> None:
        key = tuple(attributes)
        state = self._keys.get(key)
        if state is not None:
            # Re-registration only ever widens: a grouping-only key asked for
            # again with buckets starts tracking them.  Widening after rows
            # were appended would leave the buckets silently incomplete, so
            # it falls under the same registration-before-append rule.
            if track_buckets and not state.track_buckets:
                self._check_empty()
                state.track_buckets = True
            return
        self._check_empty()
        self._keys[key] = _DeltaKey(
            [self.schema.index_of(attribute) for attribute in key], track_buckets
        )

    # -- appends -------------------------------------------------------------------------

    def append_rows(self, rows: Sequence[Tuple], multiplicities) -> None:
        """Append one delta (rows + signed multiplicities); encoded lazily.

        The rows are buffered and reach the encodings on the next read (see
        :meth:`_flush`), so a stream of single-row appends between reads
        pays one vectorised encode instead of per-row dictionary probes.
        """
        self._pending_rows.extend(rows)
        self._pending_multiplicities.extend(
            float(multiplicity) for multiplicity in multiplicities
        )

    def _flush(self) -> None:
        if not self._pending_rows:
            return
        rows = self._pending_rows
        multiplicities = self._pending_multiplicities
        self._pending_rows = []
        self._pending_multiplicities = []
        self._append_encoded(rows, multiplicities)

    def _append_encoded(self, rows: Sequence[Tuple], multiplicities) -> None:
        base = self.entry_count
        if not rows:
            return
        if len(rows) == 1:
            # The per-tuple update path: scalar appends, no array round-trips.
            row = rows[0]
            self._multiplicities.append(float(multiplicities[0]))
            for attribute, (position, values) in self._floats.items():
                values.append(float(row[position]))
            for state in self._keys.values():
                state.append_one(row, base)
            self.entry_count = base + 1
            return
        columns = list(zip(*rows))
        self._multiplicities.extend(np.asarray(multiplicities, dtype=np.float64))
        for attribute, (position, values) in self._floats.items():
            values.extend(np.asarray(columns[position], dtype=np.float64))
        for state in self._keys.values():
            state.extend(columns, len(rows), base)
        self.entry_count = base + len(rows)

    # -- columnar access -----------------------------------------------------------------

    @property
    def multiplicities(self) -> np.ndarray:
        self._flush()
        return self._multiplicities.view()

    def float_column(self, attribute: str) -> np.ndarray:
        self._flush()
        return self._floats[attribute][1].view()

    def key_codes(self, attributes: Sequence[str]) -> Tuple[np.ndarray, List[Tuple]]:
        """Per-entry key code plus the distinct key tuples, in code order."""
        self._flush()
        state = self._keys[tuple(attributes)]
        return state.codes.view(), state.keys

    def buckets_for(
        self, attributes: Sequence[str], keys: Sequence[Tuple]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Entry positions per requested key, concatenated in CSR form.

        Returns ``(offsets, positions)``: ``positions[offsets[i] :
        offsets[i + 1]]`` are the store entries whose key equals ``keys[i]``
        — the incremental counterpart of grouping a snapshot store's key
        codes, at cost O(matched entries) per call.
        """
        self._flush()
        state = self._keys[tuple(attributes)]
        probe = state.probe
        views: List[np.ndarray] = []
        offsets = np.zeros(len(keys) + 1, dtype=np.int64)
        total = 0
        for position, key in enumerate(keys):
            code = probe(key)
            if code is not None:
                view = state.bucket_array(code)
                views.append(view)
                total += view.shape[0]
            offsets[position + 1] = total
        if not views:
            return offsets, np.empty(0, dtype=np.int64)
        return offsets, np.concatenate(views)
