"""Dictionary-encoded columnar storage for relations.

A :class:`ColumnStore` is the vectorised view of a :class:`Relation`: every
attribute becomes a *dictionary encoding* — a small array of distinct values
plus an integer code per row — and the multiplicities become one float array.
All of the engine's hot operations (connection keys, group-by keys, filter
masks, join-key alignment against child views) then reduce to integer array
manipulation: combined keys are built by mixing per-attribute codes
arithmetically (or via ``np.unique(axis=0)`` when the cardinality product
would overflow), filters are evaluated once per *distinct* value and gathered
through the codes, and numeric columns are decoded through the dictionary.

Stores are cached on the relation (see :meth:`Relation.column_store`) and
invalidated by the relation's mutation counter, so repeated batch evaluations
— gradient descent steps, decision-tree node splits, IVM refreshes — reuse
the encodings instead of rebuilding per-row Python state every time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ColumnEncoding", "ColumnStore", "combine_codes"]

#: Cap on the mixed-radix cardinality product; above it combined keys fall
#: back to row-wise ``np.unique(axis=0)`` to avoid int64 overflow.
_MIX_LIMIT = 2 ** 62


class ColumnEncoding:
    """One dictionary-encoded column: distinct values + one int64 code per row."""

    __slots__ = ("values", "codes", "_float_values", "_float_ready",
                 "_sortable", "_sortable_ready")

    def __init__(self, values: List[object], codes: np.ndarray) -> None:
        self.values = values                      # python values, in code order
        self.codes = codes                        # int64, one per row
        self._float_values: Optional[np.ndarray] = None
        self._float_ready = False
        self._sortable: Optional[np.ndarray] = None
        self._sortable_ready = False

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def float_values(self) -> Optional[np.ndarray]:
        """The dictionary decoded to float64 (None when not numeric)."""
        if not self._float_ready:
            self._float_ready = True
            try:
                self._float_values = np.asarray(
                    [float(value) for value in self.values], dtype=np.float64
                )
            except (TypeError, ValueError):
                self._float_values = None
        return self._float_values

    def sortable_values(self) -> Optional[np.ndarray]:
        """The dictionary as a typed numpy array (None when not comparable)."""
        if not self._sortable_ready:
            self._sortable_ready = True
            self._sortable = as_sortable_array(self.values)
        return self._sortable


def as_sortable_array(values: Sequence[object]) -> Optional[np.ndarray]:
    """A numeric or string numpy array over ``values``, or None.

    Used for vectorised (searchsorted) join-key matching and filter masks:
    both sides must reduce to the same comparable dtype kind.  Mixed-type
    columns return None — ``np.asarray`` would silently *stringify* them,
    which would equate e.g. ``3`` with ``"3"`` against Python semantics.
    """
    kinds = set(map(type, values))
    try:
        if kinds <= {int, bool}:
            # Keep pure-integer dictionaries exact: casting to float64 would
            # equate distinct values beyond 2**53.
            array = np.asarray(values, dtype=np.int64)
        elif kinds <= {int, bool, float}:
            if _ints_exceed_float64_precision(values):
                return None
            array = np.asarray(values, dtype=np.float64)
        elif kinds == {str}:
            array = np.asarray(values)
        else:
            return None
    except (TypeError, ValueError, OverflowError):
        return None
    if array.ndim != 1 or array.dtype.kind not in "iufU":
        return None
    return array


def _ints_exceed_float64_precision(values) -> bool:
    """True when an int in ``values`` would lose identity as a float64."""
    return any(
        isinstance(value, int) and not isinstance(value, bool) and (
            value > 2 ** 53 or value < -(2 ** 53)
        )
        for value in values
    )


def _encode_values(raw: List[object]) -> ColumnEncoding:
    """Dictionary-encode one column of python values."""
    count = len(raw)
    if count == 0:
        return ColumnEncoding([], np.empty(0, dtype=np.int64))
    kinds = set(map(type, raw))
    try:
        if kinds <= {int, bool}:
            array = np.asarray(raw, dtype=np.int64)
            values_array, codes = np.unique(array, return_inverse=True)
            values = [int(value) for value in values_array.tolist()]
        elif kinds <= {int, bool, float}:
            if _ints_exceed_float64_precision(raw):
                # float64 would merge distinct huge ints into one code;
                # the first-occurrence encoder keeps Python equality.
                raise TypeError("ints beyond float64 precision")
            array = np.asarray(raw, dtype=np.float64)
            values_array, codes = np.unique(array, return_inverse=True)
            values = values_array.tolist()
        elif kinds == {str}:
            values_array, codes = np.unique(np.asarray(raw), return_inverse=True)
            values = values_array.tolist()
        else:
            raise TypeError("mixed or non-primitive column")
    except (TypeError, ValueError, OverflowError):
        # Generic fallback: first-occurrence encoding through a dictionary.
        index: Dict[object, int] = {}
        values = []
        codes = np.empty(count, dtype=np.int64)
        for position, value in enumerate(raw):
            code = index.get(value)
            if code is None:
                code = len(values)
                index[value] = code
                values.append(value)
            codes[position] = code
        return ColumnEncoding(values, codes)
    return ColumnEncoding(values, codes.reshape(-1).astype(np.int64, copy=False))


def combine_codes(
    columns: Sequence[np.ndarray], cardinalities: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Combine per-attribute code columns into one code per distinct combination.

    Returns ``(codes, combos)`` where ``codes[i]`` indexes the rows of the
    ``(distinct, len(columns))`` matrix ``combos``, whose entries are the
    per-column dictionary indices of each distinct combination.
    """
    if not columns:
        return np.empty(0, dtype=np.int64), np.empty((0, 0), dtype=np.int64)
    if len(columns) == 1:
        uniques, inverse = np.unique(columns[0], return_inverse=True)
        return (
            inverse.reshape(-1).astype(np.int64, copy=False),
            uniques.astype(np.int64, copy=False).reshape(-1, 1),
        )

    radices = [max(int(card), 1) for card in cardinalities]
    product = 1
    for radix in radices:
        product *= radix
    if 0 < product <= _MIX_LIMIT:
        mixed = columns[0].astype(np.int64, copy=True)
        for column, radix in zip(columns[1:], radices[1:]):
            mixed *= radix
            mixed += column
        uniques, inverse = np.unique(mixed, return_inverse=True)
        combos = np.empty((uniques.size, len(columns)), dtype=np.int64)
        remainder = uniques
        for position in range(len(columns) - 1, 0, -1):
            remainder, combos[:, position] = np.divmod(remainder, radices[position])
        combos[:, 0] = remainder
        return inverse.reshape(-1).astype(np.int64, copy=False), combos

    stacked = np.stack(columns, axis=1)
    unique_rows, inverse = np.unique(stacked, axis=0, return_inverse=True)
    return (
        inverse.reshape(-1).astype(np.int64, copy=False),
        unique_rows.astype(np.int64, copy=False),
    )


class ColumnStore:
    """The columnar, dictionary-encoded snapshot of one relation.

    Encodings are built lazily per attribute; combined key codes (for any
    tuple of attributes) are cached, so connection keys, child join keys and
    group-by keys each pay their cost once per store lifetime.
    """

    def __init__(self, relation, version: Optional[int] = None) -> None:
        self.relation_name: str = relation.name
        self.schema = relation.schema
        self.version = relation.version if version is None else version
        rows: List[Tuple] = []
        multiplicities: List[float] = []
        for row, multiplicity in relation.items():
            rows.append(row)
            multiplicities.append(float(multiplicity))
        self.rows = rows
        self.row_count = len(rows)
        self.multiplicities = np.asarray(multiplicities, dtype=np.float64)
        self._encodings: Dict[int, ColumnEncoding] = {}
        self._float_columns: Dict[str, Optional[np.ndarray]] = {}
        self._key_cache: Dict[
            Tuple[str, ...],
            Tuple[np.ndarray, List[Tuple], Optional[List[Optional[np.ndarray]]]],
        ] = {}

    def __len__(self) -> int:
        return self.row_count

    # -- per-attribute encodings ---------------------------------------------------------

    def encoding(self, attribute: str) -> ColumnEncoding:
        position = self.schema.index_of(attribute)
        encoding = self._encodings.get(position)
        if encoding is None:
            encoding = _encode_values([row[position] for row in self.rows])
            self._encodings[position] = encoding
        return encoding

    def float_column(self, attribute: str) -> Optional[np.ndarray]:
        """Per-row float64 values of one attribute (None when not numeric)."""
        if attribute not in self._float_columns:
            encoding = self.encoding(attribute)
            decoded = encoding.float_values()
            self._float_columns[attribute] = (
                None if decoded is None else decoded[encoding.codes]
            )
        return self._float_columns[attribute]

    # -- combined keys -------------------------------------------------------------------

    def _key_data(
        self, key: Tuple[str, ...]
    ) -> Tuple[np.ndarray, List[Tuple], Optional[List[Optional[np.ndarray]]]]:
        cached = self._key_cache.get(key)
        if cached is not None:
            return cached
        if not key:
            result: Tuple[np.ndarray, List[Tuple], Optional[List[Optional[np.ndarray]]]] = (
                np.zeros(self.row_count, dtype=np.int64),
                [()],
                [],
            )
        else:
            encodings = [self.encoding(attribute) for attribute in key]
            codes, combos = combine_codes(
                [encoding.codes for encoding in encodings],
                [encoding.cardinality for encoding in encodings],
            )
            tuples = [
                tuple(
                    encoding.values[index]
                    for encoding, index in zip(encodings, combo)
                )
                for combo in combos.tolist()
            ]
            columns: Optional[List[Optional[np.ndarray]]] = []
            for position, encoding in enumerate(encodings):
                typed = encoding.sortable_values()
                columns.append(None if typed is None else typed[combos[:, position]])
            result = (codes, tuples, columns)
        self._key_cache[key] = result
        return result

    def codes_for(self, attributes: Sequence[str]) -> Tuple[np.ndarray, List[Tuple]]:
        """Row codes and distinct value tuples for a combination of attributes.

        ``codes_for(())`` maps every row to the single empty tuple, which lets
        scalar (ungrouped, connectionless) aggregates share the same machinery.
        """
        codes, tuples, _columns = self._key_data(tuple(attributes))
        return codes, tuples

    def distinct_count(self, attributes: Sequence[str]) -> int:
        """Number of distinct value combinations of ``attributes``.

        This is the size of the dictionary built by :meth:`codes_for` — the
        statistic behind the engine's cost-based join-tree rooting (see
        :mod:`repro.engine.statistics`): a child view keyed on these
        attributes has exactly this many entries.  The underlying key data is
        cached, so planners and the executor share one encoding.
        """
        _codes, tuples, _columns = self._key_data(tuple(attributes))
        return len(tuples)

    def key_columns(self, attributes: Sequence[str]) -> Optional[List[np.ndarray]]:
        """Typed per-attribute value arrays aligned with ``codes_for``'s tuples.

        None when any attribute's dictionary is not a comparable typed array
        (vectorised join-key matching then falls back to dictionary probing).
        """
        _codes, _tuples, columns = self._key_data(tuple(attributes))
        if columns is None or any(column is None for column in columns):
            return None
        return columns  # type: ignore[return-value]
