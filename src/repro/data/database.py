"""Databases: named relations plus integrity metadata (functional dependencies).

A :class:`Database` groups the relations referenced by a feature-extraction
query.  It also records functional dependencies, which the learning layer can
exploit to reparameterise models with fewer parameters (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.data.attribute import Schema
from repro.data.relation import Relation, RelationError
from repro.data import algebra


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``determinant -> dependent`` between attributes."""

    determinant: Tuple[str, ...]
    dependent: str

    @staticmethod
    def of(determinant, dependent: str) -> "FunctionalDependency":
        if isinstance(determinant, str):
            determinant = (determinant,)
        return FunctionalDependency(tuple(determinant), dependent)

    def __str__(self) -> str:
        return f"{','.join(self.determinant)} -> {self.dependent}"


class Database:
    """A collection of named relations with optional functional dependencies."""

    def __init__(
        self,
        relations: Optional[Iterable[Relation]] = None,
        functional_dependencies: Optional[Iterable[FunctionalDependency]] = None,
        name: str = "database",
    ) -> None:
        self.name = name
        self._relations: Dict[str, Relation] = {}
        self.functional_dependencies: List[FunctionalDependency] = list(
            functional_dependencies or ()
        )
        for relation in relations or ():
            self.add_relation(relation)

    # -- relation management -----------------------------------------------------

    def add_relation(self, relation: Relation) -> None:
        if relation.name in self._relations:
            raise RelationError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def drop_relation(self, name: str) -> None:
        if name not in self._relations:
            raise RelationError(f"no relation named {name!r}")
        del self._relations[name]

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise RelationError(
                f"no relation named {name!r}; available: {sorted(self._relations)}"
            ) from exc

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    @property
    def relations(self) -> List[Relation]:
        return list(self._relations.values())

    def copy(self, name: Optional[str] = None) -> "Database":
        return Database(
            [relation.copy() for relation in self],
            list(self.functional_dependencies),
            name or self.name,
        )

    def empty_copy(self, name: Optional[str] = None) -> "Database":
        """A database with the same schemas but no tuples (used by IVM benches)."""
        return Database(
            [relation.empty_like() for relation in self],
            list(self.functional_dependencies),
            name or self.name,
        )

    # -- metadata ------------------------------------------------------------------

    def add_functional_dependency(self, dependency: FunctionalDependency) -> None:
        self.functional_dependencies.append(dependency)

    def attribute_names(self) -> Tuple[str, ...]:
        """All attribute names across relations (first occurrence order)."""
        seen: List[str] = []
        for relation in self:
            for name in relation.schema.names:
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def relations_with_attribute(self, attribute: str) -> List[Relation]:
        return [relation for relation in self if attribute in relation.schema]

    def schema_of(self, attribute: str) -> Schema:
        for relation in self:
            if attribute in relation.schema:
                return relation.schema
        raise RelationError(f"attribute {attribute!r} not found in any relation")

    def is_categorical(self, attribute: str) -> bool:
        return self.schema_of(attribute).is_categorical(attribute)

    def total_tuples(self) -> int:
        return sum(relation.total_multiplicity() for relation in self)

    def size_summary(self) -> Dict[str, Tuple[int, int]]:
        """Map relation name -> (distinct tuples, arity)."""
        return {relation.name: (len(relation), relation.arity) for relation in self}

    # -- full join ------------------------------------------------------------------

    def natural_join(self, relation_names: Optional[Sequence[str]] = None) -> Relation:
        """Materialise the natural join of the given (or all) relations."""
        names = list(relation_names) if relation_names is not None else list(self._relations)
        relations = [self.relation(name) for name in names]
        return algebra.natural_join_all(relations, name=f"join({self.name})")

    def __repr__(self) -> str:
        summary = ", ".join(f"{relation.name}[{len(relation)}]" for relation in self)
        return f"Database({self.name!r}: {summary})"
