"""Factorised databases (Section 5.1).

A factorised representation of a join result is a DAG over union and product
nodes, modelled on a variable order.  It can be exponentially smaller than the
flat result, can be computed directly from the input relations in time
proportional to its size, and supports aggregate evaluation in a single pass
by mapping values into a (semi)ring.
"""

from repro.factorized.frepr import (
    FactorizedRelation,
    ProductNode,
    UnionNode,
    ValueLeaf,
)
from repro.factorized.factorize import factorize_join
from repro.factorized.aggregates import (
    aggregate_over_factorization,
    count_over_factorization,
    group_by_sum_over_factorization,
    sum_product_over_factorization,
)

__all__ = [
    "FactorizedRelation",
    "UnionNode",
    "ProductNode",
    "ValueLeaf",
    "factorize_join",
    "aggregate_over_factorization",
    "count_over_factorization",
    "sum_product_over_factorization",
    "group_by_sum_over_factorization",
]
