"""Aggregate evaluation over factorised joins (Figures 9 and 10).

Aggregates are computed in one bottom-up pass: each data value is lifted into
a (semi)ring element, unions map to ring addition and products to ring
multiplication.  Shared sub-DAGs of the factorisation are evaluated once.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.rings.base import Semiring
from repro.rings.covariance import CovariancePayload, CovarianceRing
from repro.rings.groupby import GroupByRing
from repro.rings.numeric import CountingSemiring, RealRing
from repro.factorized.frepr import (
    FactorizedNode,
    FactorizedRelation,
    ProductNode,
    UnionNode,
    ValueLeaf,
)

LiftFunction = Callable[[str, object], Any]


def aggregate_over_factorization(
    factorization: FactorizedRelation,
    ring: Semiring,
    lift: LiftFunction,
) -> Any:
    """Evaluate an aggregate over a factorised join in one pass.

    ``lift(variable, value)`` maps each data value into the ring; unions add,
    products multiply.  Shared nodes (the cached fragments of the DAG) are
    evaluated once thanks to memoisation on node identity.
    """
    memo: Dict[int, Any] = {}

    def evaluate(node: FactorizedNode) -> Any:
        node_id = id(node)
        if node_id in memo:
            return memo[node_id]
        if isinstance(node, ValueLeaf):
            result = lift(node.variable, node.value)
        elif isinstance(node, UnionNode):
            result = ring.zero()
            for value, child in node.children.items():
                contribution = ring.multiply(lift(node.variable, value), evaluate(child))
                result = ring.add(result, contribution)
        elif isinstance(node, ProductNode):
            result = ring.one()
            for factor in node.factors:
                result = ring.multiply(result, evaluate(factor))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown factorisation node {type(node)!r}")
        memo[node_id] = result
        return result

    return evaluate(factorization.root)


def count_over_factorization(factorization: FactorizedRelation) -> int:
    """SUM(1) (Figure 9, left): every value lifts to 1 in the counting semiring."""
    semiring = CountingSemiring()
    return aggregate_over_factorization(factorization, semiring, lambda _variable, _value: 1)


def sum_product_over_factorization(
    factorization: FactorizedRelation, variables: Sequence[str]
) -> float:
    """SUM of the product of the given continuous variables over all tuples.

    ``variables=[]`` degenerates to COUNT, ``variables=['price']`` computes
    SUM(price), ``variables=['price', 'price']`` is not supported (squares are
    handled by lifting, see :func:`sum_of_squares_over_factorization`).
    """
    wanted = set(variables)
    ring = RealRing()

    def lift(variable: str, value: object) -> float:
        return float(value) if variable in wanted else 1.0

    return aggregate_over_factorization(factorization, ring, lift)


def sum_of_squares_over_factorization(
    factorization: FactorizedRelation, variable: str
) -> float:
    """SUM(variable * variable) over all tuples of the join."""
    ring = RealRing()

    def lift(current: str, value: object) -> float:
        return float(value) ** 2 if current == variable else 1.0

    return aggregate_over_factorization(factorization, ring, lift)


def group_by_sum_over_factorization(
    factorization: FactorizedRelation,
    group_by: Sequence[str],
    sum_variables: Sequence[str] = (),
) -> Dict[Tuple, float]:
    """``SUM(prod(sum_variables)) GROUP BY group_by`` in one pass.

    Returns a map from group-by value tuples (aligned with ``group_by``) to the
    aggregate value.  This is the sparse-tensor encoding of categorical
    interactions: only co-occurring categories appear as keys.
    """
    group_set = set(group_by)
    sum_set = set(sum_variables)
    ring = GroupByRing(RealRing())

    def lift(variable: str, value: object):
        if variable in group_set:
            return ring.lift_group(variable, value)
        if variable in sum_set:
            return ring.lift_value(float(value))
        return ring.one()

    keyed = aggregate_over_factorization(factorization, ring, lift)
    result: Dict[Tuple, float] = {}
    for key, value in keyed.items():
        assignment = dict(key)
        result[tuple(assignment[attribute] for attribute in group_by)] = value
    return result


def covariance_over_factorization(
    factorization: FactorizedRelation, features: Sequence[str]
) -> CovariancePayload:
    """SUM(1), SUM(x_i) and SUM(x_i*x_j) for all feature pairs in one pass.

    Evaluates the factorisation in the covariance ring (Section 5.2); the
    result's ``sums``/``moments`` are indexed by the position of each feature
    in ``features``.
    """
    ring = CovarianceRing(len(features))
    index_of = {feature: position for position, feature in enumerate(features)}

    def lift(variable: str, value: object) -> CovariancePayload:
        position = index_of.get(variable)
        if position is None:
            return ring.one()
        return ring.lift(position, float(value))

    return aggregate_over_factorization(factorization, ring, lift)
