"""Computing the factorised join directly from the input relations.

The construction follows the variable order top-down.  At a node for variable
``X`` the candidate values are the intersection, over the relations containing
``X``, of the ``X`` values consistent with the ancestor assignments; below each
value the children of ``X`` are built recursively and branches with an empty
child are pruned.  Sub-factorisations are cached on the node's *key* (the
ancestors its subtree actually depends on), which is what shares, e.g., the
price fragment across dishes in the paper's example.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.variable_order import VariableOrder, build_variable_order
from repro.factorized.frepr import (
    FactorizedRelation,
    FactorizedNode,
    ProductNode,
    UnionNode,
)


def _sort_key(value: object) -> Tuple[str, str]:
    """Deterministic ordering for heterogeneous value domains."""
    return (type(value).__name__, str(value))


class _RelationIndex:
    """Per-(relation, variable) index: ancestor values -> set of variable values."""

    def __init__(self, relation: Relation, variable: str, ancestor_attributes: Sequence[str]):
        self.ancestor_attributes = tuple(ancestor_attributes)
        variable_position = relation.schema.index_of(variable)
        ancestor_positions = relation.schema.indices_of(self.ancestor_attributes)
        self.values_by_key: Dict[Tuple, Set[object]] = {}
        for row in relation:
            key = tuple(row[position] for position in ancestor_positions)
            self.values_by_key.setdefault(key, set()).add(row[variable_position])

    def lookup(self, context: Dict[str, object]) -> Set[object]:
        key = tuple(context[attribute] for attribute in self.ancestor_attributes)
        return self.values_by_key.get(key, set())


class FactorizationBuilder:
    """Builds a :class:`FactorizedRelation` for a query over a database."""

    def __init__(self, database: Database, order: VariableOrder) -> None:
        self.database = database
        self.order = order
        self._indexes: Dict[Tuple[str, str], _RelationIndex] = {}
        self._cache: Dict[Tuple[int, Tuple], FactorizedNode] = {}
        self.cache_hits = 0

    # -- index management --------------------------------------------------------------

    def _index(self, relation_name: str, node: VariableOrder) -> _RelationIndex:
        key = (relation_name, node.variable)
        index = self._indexes.get(key)
        if index is None:
            relation = self.database.relation(relation_name)
            ancestors = [
                attribute
                for attribute in node.ancestors()
                if attribute in relation.schema
            ]
            index = _RelationIndex(relation, node.variable, ancestors)
            self._indexes[key] = index
        return index

    # -- construction --------------------------------------------------------------------

    def build(self) -> FactorizedRelation:
        root_node = self._build_node(self.order, {})
        variables = tuple(self.order.variables())
        factorization = FactorizedRelation(
            root=root_node,
            variables=variables,
            cache_hits=self.cache_hits,
            cache_entries=len(self._cache),
        )
        return factorization

    def _build_node(self, node: VariableOrder, context: Dict[str, object]) -> FactorizedNode:
        cache_key = (
            id(node),
            tuple(sorted((attribute, context[attribute]) for attribute in node.key)),
        )
        cached = self._cache.get(cache_key)
        if cached is not None:
            self.cache_hits += 1
            return cached

        candidates: Optional[Set[object]] = None
        for relation_name in sorted(node.relations):
            index = self._index(relation_name, node)
            values = index.lookup(context)
            candidates = set(values) if candidates is None else candidates & values
        if candidates is None:
            # Variable not bound by any relation (cannot happen for well-formed
            # queries); treat as empty.
            candidates = set()

        union = UnionNode(node.variable)
        for value in sorted(candidates, key=_sort_key):
            child_context = dict(context)
            child_context[node.variable] = value
            factors: List[FactorizedNode] = []
            empty_branch = False
            for child in node.children:
                sub_factorization = self._build_node(child, child_context)
                if isinstance(sub_factorization, UnionNode) and not sub_factorization.children:
                    empty_branch = True
                    break
                factors.append(sub_factorization)
            if not empty_branch:
                union.children[value] = ProductNode(factors)

        self._cache[cache_key] = union
        return union


def factorize_join(
    query: ConjunctiveQuery,
    database: Database,
    order: Optional[VariableOrder] = None,
    root_relation: Optional[str] = None,
) -> FactorizedRelation:
    """Compute the factorised join of ``query`` over ``database``.

    ``order`` may supply an explicit variable order; otherwise one is derived
    from a join tree of the (acyclic) query, optionally rooted at
    ``root_relation``.
    """
    if order is None:
        order = build_variable_order(query, database, root_relation=root_relation)
    builder = FactorizationBuilder(database, order)
    return builder.build()
