"""Factorised representations: union/product/value DAGs.

The representation mirrors Figure 8 of the paper: a union node groups the
values of one variable; below each value sits a product node whose factors are
the sub-factorisations of the variable's children in the variable order.
Caching (the ``price`` sub-tree cached per ``item`` in the paper) turns the
tree into a DAG, which is what makes factorisations succinct.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class FactorizedNode:
    """Base class for nodes of a factorised representation."""

    __slots__ = ()

    def value_count(self, _seen=None) -> int:
        """Number of data values in the representation (shared nodes count once)."""
        raise NotImplementedError

    def tuple_count(self) -> int:
        """Number of flat tuples represented."""
        raise NotImplementedError


@dataclass
class ValueLeaf(FactorizedNode):
    """A single data value of one variable."""

    variable: str
    value: object

    def value_count(self, seen=None) -> int:
        seen = seen if seen is not None else set()
        if id(self) in seen:
            return 0
        seen.add(id(self))
        return 1

    def tuple_count(self) -> int:
        return 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.variable}={self.value}"


@dataclass
class ProductNode(FactorizedNode):
    """Cartesian product of independent sub-factorisations."""

    factors: List[FactorizedNode] = field(default_factory=list)

    def value_count(self, seen=None) -> int:
        seen = seen if seen is not None else set()
        if id(self) in seen:
            return 0
        seen.add(id(self))
        return sum(factor.value_count(seen) for factor in self.factors)

    def tuple_count(self) -> int:
        count = 1
        for factor in self.factors:
            count *= factor.tuple_count()
        return count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " x ".join(repr(factor) for factor in self.factors) + ")"


@dataclass
class UnionNode(FactorizedNode):
    """Union over the values of one variable.

    ``children`` maps each value of ``variable`` to the product node
    representing the rest of the tuple fragment below that value.
    """

    variable: str
    children: Dict[object, FactorizedNode] = field(default_factory=dict)

    def value_count(self, seen=None) -> int:
        seen = seen if seen is not None else set()
        if id(self) in seen:
            return 0
        seen.add(id(self))
        total = len(self.children)  # one value per child branch
        for child in self.children.values():
            total += child.value_count(seen)
        return total

    def tuple_count(self) -> int:
        return sum(child.tuple_count() for child in self.children.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{value}->{child!r}" for value, child in self.children.items())
        return f"U[{self.variable}]({parts})"


@dataclass
class FactorizedRelation:
    """A factorised join result: the root node plus bookkeeping metadata."""

    root: FactorizedNode
    variables: Tuple[str, ...]
    cache_hits: int = 0
    cache_entries: int = 0

    # -- size measures -----------------------------------------------------------------

    def size(self) -> int:
        """Number of values in the factorisation (shared sub-DAGs count once)."""
        return self.root.value_count(set())

    def flat_size(self) -> int:
        """Number of tuples the factorisation represents."""
        return self.root.tuple_count()

    def flat_value_count(self) -> int:
        """Number of values of the equivalent flat (tabular) representation."""
        return self.flat_size() * len(self.variables)

    def compression_ratio(self) -> float:
        """Flat value count divided by factorised value count (>= 1 for joins)."""
        size = self.size()
        if size == 0:
            return 1.0
        return self.flat_value_count() / size

    # -- enumeration --------------------------------------------------------------------

    def tuples(self) -> Iterator[Tuple]:
        """Enumerate the flat tuples (each as a tuple aligned with ``variables``)."""
        order = {variable: index for index, variable in enumerate(self.variables)}

        def enumerate_node(node: FactorizedNode) -> Iterator[Dict[str, object]]:
            if isinstance(node, ValueLeaf):
                yield {node.variable: node.value}
            elif isinstance(node, UnionNode):
                for value, child in node.children.items():
                    for assignment in enumerate_node(child):
                        combined = dict(assignment)
                        combined[node.variable] = value
                        yield combined
            elif isinstance(node, ProductNode):
                if not node.factors:
                    yield {}
                    return
                factor_assignments = [list(enumerate_node(factor)) for factor in node.factors]
                for combination in itertools.product(*factor_assignments):
                    combined: Dict[str, object] = {}
                    for assignment in combination:
                        combined.update(assignment)
                    yield combined
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown node type {type(node)!r}")

        for assignment in enumerate_node(self.root):
            yield tuple(assignment.get(variable) for variable in self.variables)

    def to_rows(self) -> List[Tuple]:
        return list(self.tuples())

    def __len__(self) -> int:
        return self.flat_size()

    def render(self, max_depth: int = 12) -> str:
        """ASCII rendering of the factorisation (for examples/documentation)."""
        lines: List[str] = []

        def visit(node: FactorizedNode, depth: int) -> None:
            indent = "  " * depth
            if depth > max_depth:
                lines.append(indent + "...")
                return
            if isinstance(node, ValueLeaf):
                lines.append(f"{indent}{node.variable}={node.value}")
            elif isinstance(node, UnionNode):
                lines.append(f"{indent}∪ {node.variable}")
                for value, child in node.children.items():
                    lines.append(f"{indent}  {node.variable}={value} ×")
                    visit(child, depth + 2)
            elif isinstance(node, ProductNode):
                for factor in node.factors:
                    visit(factor, depth)

        visit(self.root, 0)
        return "\n".join(lines)
