"""Epoch-aligned checkpoints of the full maintainer state.

A checkpoint captures the complete :class:`~repro.ivm.base.CovarianceMaintainer`
— every relation's TupleStore (code arrays, dictionaries, multiplicities,
change log) plus the maintainer's view/payload state — as of a journal
sequence number.  Recovery loads the newest valid checkpoint and replays the
journal tail *after* that sequence through the maintainer's own grouped
apply path, which converges bit-identically to the pre-crash state.

The serialized object graph relies on ``__getstate__`` hooks in the pickled
classes to shed process-local machinery: the maintainer drops its writer
RLock, TupleStores reset their reader-pin bookkeeping, Relations drop their
zero-copy column-store caches, and grow-arrays trim their slack capacity.
Because the payload is a plain pickle taken under the writer gate while
readers only touch *pinned* (refcounted, copy-on-write-protected) snapshot
state, checkpointing never blocks readers.

On-disk format: ``<MAGIC><Q seq><Q prefix><I crc32><Q payload_len><payload>``
written to a temp file, fsync'd, then atomically ``os.replace``\\ d into
``checkpoint-{seq:012d}.ckpt``.  A crash at any point leaves either the
previous checkpoint set intact or a stray ``*.tmp`` that loaders ignore.
``latest()`` scans newest-first and skips files with bad magic, short
payloads, or CRC mismatches, so a corrupt newest checkpoint degrades to the
one before it rather than failing recovery.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Union

from repro.durability.faults import fault_point

__all__ = [
    "CHECKPOINT_MAGIC",
    "CheckpointError",
    "Checkpoint",
    "CheckpointStore",
]

CHECKPOINT_MAGIC = b"REPROCK1"

_HEADER = struct.Struct("<QQIQ")  # seq, prefix, crc32(payload), payload_len


class CheckpointError(RuntimeError):
    """Raised on invalid checkpoint-store operations."""


@dataclass(frozen=True)
class Checkpoint:
    """One loaded checkpoint: the maintainer plus its journal alignment."""

    maintainer: Any
    seq: int       # highest journal seq folded into this state (-1: none)
    prefix: int    # number of batches applied (the serving epoch/prefix)
    path: Path


class CheckpointStore:
    """Writes, prunes, and loads atomic checkpoint files in one directory."""

    def __init__(self, directory: Union[str, Path], keep: int = 2) -> None:
        if keep < 1:
            raise CheckpointError("keep must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.written = 0
        self.last_write_seconds = 0.0
        self.last_size_bytes = 0

    # -- writing -----------------------------------------------------------------------

    def _path_for(self, seq: int) -> Path:
        # seq -1 (a seed checkpoint taken before any batch) maps to slot 0;
        # the real seq is stored in the header, the name only orders files.
        return self.directory / f"checkpoint-{seq + 1:012d}.ckpt"

    def write(self, maintainer: Any, seq: int, prefix: int) -> Path:
        """Checkpoint ``maintainer`` as of journal ``seq``; atomic publish."""
        fault_point("checkpoint.write")
        import time

        started = time.perf_counter()
        payload = pickle.dumps(maintainer, protocol=4)
        header = _HEADER.pack(seq + 1, prefix, zlib.crc32(payload), len(payload))
        final = self._path_for(seq)
        tmp = final.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            handle.write(CHECKPOINT_MAGIC)
            handle.write(header)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        fault_point("checkpoint.publish")
        os.replace(tmp, final)
        self.written += 1
        self.last_write_seconds = time.perf_counter() - started
        self.last_size_bytes = len(CHECKPOINT_MAGIC) + _HEADER.size + len(payload)
        self._prune()
        return final

    def _prune(self) -> None:
        files = sorted(self.directory.glob("checkpoint-*.ckpt"))
        for stale in files[: -self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass

    # -- loading -----------------------------------------------------------------------

    def _load(self, path: Path) -> Optional[Checkpoint]:
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        magic_len = len(CHECKPOINT_MAGIC)
        if blob[:magic_len] != CHECKPOINT_MAGIC:
            return None
        if len(blob) < magic_len + _HEADER.size:
            return None
        stored_seq, prefix, crc, length = _HEADER.unpack_from(blob, magic_len)
        payload = blob[magic_len + _HEADER.size :]
        if len(payload) != length or zlib.crc32(payload) != crc:
            return None
        try:
            maintainer = pickle.loads(payload)
        except Exception:
            return None
        return Checkpoint(maintainer, stored_seq - 1, prefix, path)

    def latest(self) -> Optional[Checkpoint]:
        """The newest checkpoint that validates; corrupt files are skipped."""
        for path in sorted(self.directory.glob("checkpoint-*.ckpt"), reverse=True):
            checkpoint = self._load(path)
            if checkpoint is not None:
                return checkpoint
        return None

    def checkpoints(self) -> List[Path]:
        return sorted(self.directory.glob("checkpoint-*.ckpt"))
