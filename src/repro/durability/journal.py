"""The write-ahead batch journal: an append-only on-disk log of netted batches.

Every committed ``apply_batch`` is journaled *before* it propagates: the
record carries the batch's netted per-relation groups exactly as the
maintainer applies them — ``(relation_name, rows, multiplicities)`` in
first-seen order — so a replay through
:meth:`repro.ivm.base.CovarianceMaintainer.apply_groups` retraces the
original computation bit for bit (``apply_batch`` itself is defined as
netting followed by that same grouped path).

Record framing
--------------
The file starts with an 8-byte magic (:data:`FILE_MAGIC`).  Each record is::

    <Q seq> <B kind> <I payload_len> <I crc32> <payload bytes>

``seq`` is the journal's own monotonically increasing record number (aborted
batches burn a sequence number too), ``kind`` is :data:`KIND_BATCH` or
:data:`KIND_ABORT`, and the CRC covers the header prefix *and* the payload,
so a torn header is as detectable as a torn payload.  Batch payloads are the
pickled group list; an abort payload is the 8-byte sequence number of the
batch it voids (a poison batch that was journaled but failed propagation —
recovery must not replay it).

Torn-tail detection
-------------------
Opening an existing journal scans it record by record; the first record that
cannot be decoded — short header, short payload, CRC mismatch, out-of-order
sequence — marks the *torn tail* left by a crash mid-append, and the file is
truncated back to the last whole record.  Everything before the tear is
intact by construction (records are only ever appended).

Sync policy
-----------
``sync="none"`` leaves records in the process's write buffer (a crash can
lose the buffered tail — recovery then resumes from an earlier prefix);
``"batch"`` flushes to the OS page cache per append (survives the process
dying, not the machine); ``"fsync"`` additionally ``os.fsync``\\ s (survives
power loss).  The fault points ``journal.append`` (before the write) and
``journal.sync`` (after the write, before flushing) let the fault-matrix
suite kill the process on both sides of the durability boundary.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.durability.faults import fault_point

__all__ = [
    "FILE_MAGIC",
    "KIND_BATCH",
    "KIND_ABORT",
    "SYNC_POLICIES",
    "BatchGroups",
    "JournalError",
    "JournalRecord",
    "BatchJournal",
    "encode_record",
    "decode_record",
]

#: Identifies a journal file (and its format version).
FILE_MAGIC = b"REPROJL1"

#: Record kinds.
KIND_BATCH = 0
KIND_ABORT = 1

#: The supported sync policies, weakest first.
SYNC_POLICIES = ("none", "batch", "fsync")

_HEADER = struct.Struct("<QBII")

#: A netted batch: ``(relation_name, rows, multiplicities)`` per touched
#: relation, exactly the shape ``CovarianceMaintainer.net_updates`` produces
#: and ``apply_groups`` consumes.
BatchGroups = List[Tuple[str, List[Tuple], List[int]]]


class JournalError(RuntimeError):
    """Raised on malformed journal operations (never on a torn tail)."""


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record."""

    seq: int
    kind: int
    groups: Optional[BatchGroups]   # None for abort records
    aborts: Optional[int] = None    # the voided seq, for abort records

    @property
    def is_batch(self) -> bool:
        return self.kind == KIND_BATCH


def encode_record(seq: int, kind: int, payload: bytes) -> bytes:
    """Frame one record: header (seq, kind, length, crc) + payload."""
    prefix = struct.pack("<QBI", seq, kind, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(prefix))
    return _HEADER.pack(seq, kind, len(payload), crc) + payload


def decode_record(buffer: bytes, offset: int) -> Optional[Tuple[JournalRecord, int]]:
    """Decode the record at ``offset``; None when the tail is torn/short.

    Returns ``(record, next_offset)`` for a whole, checksum-valid record.
    Any inconsistency — a truncated header, a payload shorter than its
    declared length, a CRC mismatch, an unknown kind, an undecodable batch
    payload — reads as a torn tail, never as an exception: the journal's
    recovery contract is "replay every whole record, drop the tear".
    """
    end = offset + _HEADER.size
    if end > len(buffer):
        return None
    seq, kind, length, crc = _HEADER.unpack_from(buffer, offset)
    payload_end = end + length
    if payload_end > len(buffer):
        return None
    payload = buffer[end:payload_end]
    prefix = struct.pack("<QBI", seq, kind, length)
    if zlib.crc32(payload, zlib.crc32(prefix)) != crc:
        return None
    if kind == KIND_BATCH:
        try:
            groups = pickle.loads(payload)
        except Exception:
            return None
        return JournalRecord(seq, kind, groups), payload_end
    if kind == KIND_ABORT:
        if length != 8:
            return None
        (aborted,) = struct.unpack("<Q", payload)
        return JournalRecord(seq, kind, None, aborts=aborted), payload_end
    return None


class BatchJournal:
    """An append-only write-ahead log of netted update batches (one writer).

    Opening an existing file validates the whole record chain and truncates
    any torn tail (see the module docstring).  All appends go through the
    single writer thread — the journal has no internal locking.
    """

    def __init__(self, path: Union[str, Path], sync: str = "batch") -> None:
        if sync not in SYNC_POLICIES:
            raise JournalError(
                f"unknown sync policy {sync!r}; expected one of {SYNC_POLICIES}"
            )
        self.path = Path(path)
        self.sync = sync
        #: Highest committed (non-aborted, non-voided) batch seq, -1 when none.
        self.last_seq = -1
        self._next_seq = 0
        self._aborted: set = set()
        self.appended = 0       # batch records appended by this handle
        self.aborts = 0         # abort records appended by this handle
        self.truncated_bytes = 0  # torn tail dropped at open
        self._open()

    # -- opening / torn-tail recovery --------------------------------------------------

    def _open(self) -> None:
        exists = self.path.exists()
        if not exists:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "w+b")
            self._file.write(FILE_MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())
            return
        buffer = self.path.read_bytes()
        valid = len(FILE_MAGIC)
        if buffer[:valid] != FILE_MAGIC:
            raise JournalError(
                f"{self.path} is not a batch journal (bad magic "
                f"{buffer[:valid]!r})"
            )
        offset = valid
        expected = 0
        while True:
            decoded = decode_record(buffer, offset)
            if decoded is None:
                break
            record, offset = decoded
            if record.seq != expected:
                # A sequence discontinuity can only come from a tear that
                # happens to checksum (vanishingly unlikely) or file-level
                # corruption; either way nothing after it is trustworthy.
                break
            expected = record.seq + 1
            valid = offset
            if record.kind == KIND_ABORT:
                self._aborted.add(record.aborts)
            elif record.seq not in self._aborted:
                self.last_seq = record.seq
        self._next_seq = expected
        self.truncated_bytes = len(buffer) - valid
        self._file = open(self.path, "r+b")
        if self.truncated_bytes:
            self._file.truncate(valid)
        self._file.seek(valid)

    # -- the writer side ---------------------------------------------------------------

    def append(self, groups: BatchGroups) -> int:
        """Journal one netted batch; returns its sequence number.

        The record is written (and synced per policy) *before* the caller
        propagates the batch — write-ahead by construction.
        """
        fault_point("journal.append")
        seq = self._next_seq
        payload = pickle.dumps(groups, protocol=4)
        self._file.write(encode_record(seq, KIND_BATCH, payload))
        self._next_seq = seq + 1
        self.appended += 1
        self._sync()
        self.last_seq = seq
        return seq

    def abort(self, seq: int) -> int:
        """Void a journaled batch whose propagation failed (poison quarantine).

        Recovery (and this handle's own bookkeeping) will skip the voided
        record.  The abort itself burns a sequence number and is synced
        with the same policy as batch records.
        """
        fault_point("journal.append")
        abort_seq = self._next_seq
        self._file.write(encode_record(abort_seq, KIND_ABORT, struct.pack("<Q", seq)))
        self._next_seq = abort_seq + 1
        self.aborts += 1
        self._aborted.add(seq)
        if self.last_seq == seq:
            self.last_seq = self._highest_committed()
        self._sync()
        return abort_seq

    def _highest_committed(self) -> int:
        for record in reversed(list(self.records())):
            if record.is_batch and record.seq not in self._aborted:
                return record.seq
        return -1

    def _sync(self) -> None:
        fault_point("journal.sync")
        if self.sync == "none":
            return
        self._file.flush()
        if self.sync == "fsync":
            os.fsync(self._file.fileno())

    # -- the reader side ---------------------------------------------------------------

    def records(self) -> Iterator[JournalRecord]:
        """Every whole record on disk plus this handle's unflushed tail.

        Reads through a fresh handle so the writer's position is untouched;
        the writer's own buffered (not yet flushed) records are decoded from
        the buffer state by flushing first — a single-writer journal may
        always flush its own buffer.
        """
        self._file.flush()
        buffer = self.path.read_bytes()
        offset = len(FILE_MAGIC)
        expected = 0
        while True:
            decoded = decode_record(buffer, offset)
            if decoded is None:
                return
            record, offset = decoded
            if record.seq != expected:
                return
            expected = record.seq + 1
            yield record

    def replay(self, after_seq: int = -1) -> Iterator[JournalRecord]:
        """Committed batch records with ``seq > after_seq``, aborted ones skipped."""
        aborted = {
            record.aborts for record in self.records() if record.kind == KIND_ABORT
        }
        for record in self.records():
            if record.is_batch and record.seq > after_seq and record.seq not in aborted:
                yield record

    # -- introspection / lifecycle -----------------------------------------------------

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def size_bytes(self) -> int:
        """Bytes written so far (buffered tail included)."""
        return self._file.tell()

    def close(self) -> None:
        file = getattr(self, "_file", None)
        if file is not None and not file.closed:
            if self.sync != "none":
                file.flush()
            file.close()

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchJournal({str(self.path)!r}, sync={self.sync!r}, "
            f"last_seq={self.last_seq})"
        )
