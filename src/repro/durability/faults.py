"""Deterministic fault injection for the durability and serving layers.

The durability code paths (journal append, checkpoint write, snapshot
publish, reader execution) each consult a *labeled fault point* via
:func:`fault_point`.  In production the call is a module-global load plus a
``None`` check — no locks, no dictionary probes — so the hooks cost nothing
on the hot write path.  Tests install a process-global :class:`FaultPlan`
that counts every consultation per label and *fires* at a chosen call
number, either raising :class:`FaultInjected` (to exercise in-process error
containment: quarantine, pin release, gate recovery) or delivering
``SIGKILL`` to the process (to exercise crash recovery: the fault-matrix
suite kill-9s a subprocess at every labeled point and proves the journal +
checkpoint recovery converges bit-identically).

Determinism is the whole point: a :class:`FaultSpec` names the label and the
Nth consultation it fires on, so the same plan against the same update
stream crashes at exactly the same machine state every run.
"""

from __future__ import annotations

import os
import signal
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "FAULT_POINTS",
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "fault_point",
    "install_fault_plan",
    "clear_fault_plan",
    "active_fault_plan",
]

#: The labeled trigger points consulted by the shipped code.  Plans may name
#: additional ad-hoc labels (tests sometimes add their own around a fixture),
#: so this tuple documents rather than restricts.
FAULT_POINTS = (
    "journal.append",     # BatchJournal.append, before the record is written
    "journal.sync",       # BatchJournal, after the write, before flush/fsync
    "checkpoint.write",   # CheckpointStore.write, before the temp file exists
    "checkpoint.publish", # CheckpointStore.write, before the atomic rename
    "snapshot.publish",   # SnapshotManager.publish, before the generation cut
    "reader.query",       # QueryServer read execution, after the pin
)

#: Actions a spec may request when it fires.
_ACTIONS = ("raise", "kill")


class FaultInjected(RuntimeError):
    """Raised by a fired ``action="raise"`` fault spec."""

    def __init__(self, point: str, call: int) -> None:
        super().__init__(f"injected fault at {point!r} (call {call})")
        self.point = point
        self.call = call


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire at the ``at_call``-th consultation of ``point``.

    ``action="raise"`` raises :class:`FaultInjected` on the consulting
    thread; ``action="kill"`` delivers ``SIGKILL`` to the process — the
    hardest crash a single machine can produce, nothing (buffers, atexit
    handlers, finally blocks) runs afterwards.
    """

    point: str
    at_call: int = 1
    action: str = "raise"

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {_ACTIONS}"
            )
        if self.at_call < 1:
            raise ValueError("at_call counts from 1")


class FaultPlan:
    """A deterministic schedule of faults over the labeled trigger points.

    Thread-safe: consultations from reader threads and the writer thread
    share one lock, so call numbers are totally ordered and a plan fires
    exactly once per matching ``(point, at_call)`` spec.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self._specs: Dict[str, List[FaultSpec]] = {}
        for spec in specs:
            self._specs.setdefault(spec.point, []).append(spec)
        self._lock = threading.Lock()
        self.calls: Dict[str, int] = {}
        #: ``(point, call)`` pairs that actually fired (kill faults never
        #: record — the process is gone).
        self.fired: List[Tuple[str, int]] = []

    def check(self, point: str) -> None:
        """Count one consultation of ``point`` and fire any matching spec."""
        with self._lock:
            call = self.calls.get(point, 0) + 1
            self.calls[point] = call
            matched = None
            for spec in self._specs.get(point, ()):
                if spec.at_call == call:
                    matched = spec
                    break
            if matched is not None:
                self.fired.append((point, call))
        if matched is None:
            return
        if matched.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        raise FaultInjected(point, call)


_PLAN: Optional[FaultPlan] = None


def install_fault_plan(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-globally (replacing any previous plan)."""
    global _PLAN
    _PLAN = plan
    return plan


def clear_fault_plan() -> None:
    """Remove the installed plan; every fault point reverts to a no-op."""
    global _PLAN
    _PLAN = None


def active_fault_plan() -> Optional[FaultPlan]:
    return _PLAN


def fault_point(point: str) -> None:
    """Consult one labeled trigger point (no-op unless a plan is installed)."""
    plan = _PLAN
    if plan is not None:
        plan.check(point)
