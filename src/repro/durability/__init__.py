"""Durability and fault recovery for the maintained engine state (PR 9).

Three pieces (see the module docstrings for the contracts):

- :mod:`repro.durability.journal` — the write-ahead batch journal: every
  netted ``apply_batch`` group hits an append-only on-disk log *before*
  propagation, with checksummed framing, torn-tail truncation on open, and
  a configurable sync policy;
- :mod:`repro.durability.checkpoint` — epoch-aligned checkpoints of the
  whole maintainer (relations' TupleStores + view payload state) at a
  journal sequence number, written atomically and validated on load;
- :mod:`repro.durability.faults` — the deterministic fault-injection
  harness: labeled trigger points the durability/serving code consults,
  firing a raise or a SIGKILL on the Nth call per an installed
  :class:`~repro.durability.faults.FaultPlan`.

:func:`repro.durability.recovery.recover` ties them together: newest valid
checkpoint + journal-tail replay through the maintainer's own grouped apply
path, converging bit-identically to the pre-crash state.
"""

from repro.durability.checkpoint import Checkpoint, CheckpointError, CheckpointStore
from repro.durability.faults import (
    FAULT_POINTS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    clear_fault_plan,
    fault_point,
    install_fault_plan,
)
from repro.durability.journal import (
    SYNC_POLICIES,
    BatchJournal,
    JournalError,
    JournalRecord,
    decode_record,
    encode_record,
)
from repro.durability.recovery import DurabilityOptions, RecoveryResult, recover

__all__ = [
    "BatchJournal",
    "JournalError",
    "JournalRecord",
    "SYNC_POLICIES",
    "encode_record",
    "decode_record",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "FAULT_POINTS",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "fault_point",
    "install_fault_plan",
    "clear_fault_plan",
    "active_fault_plan",
    "DurabilityOptions",
    "RecoveryResult",
    "recover",
]
