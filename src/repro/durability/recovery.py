"""Crash recovery: latest valid checkpoint + journal-tail replay.

The recovery contract (proved by ``tests/test_fault_matrix.py``): for a
maintainer journaling every batch write-ahead and checkpointing at journal
sequence numbers, a process killed at *any* instant recovers to a state
bit-identical to some prefix of the committed batch sequence — exactly the
batches whose journal records survived per the sync policy — by loading the
newest valid checkpoint and replaying the journal tail through
:meth:`~repro.ivm.base.CovarianceMaintainer.apply_groups` (the same code
path the original ``apply_batch`` ran).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, List, Optional, Union

from repro.durability.checkpoint import CheckpointStore
from repro.durability.journal import BatchJournal, SYNC_POLICIES, JournalError

__all__ = ["DurabilityOptions", "RecoveryResult", "recover"]


@dataclass(frozen=True)
class DurabilityOptions:
    """Configuration of the journal + checkpoint pair under one directory.

    ``directory`` holds ``journal.wal`` and the ``checkpoint-*.ckpt`` files.
    ``checkpoint_interval`` is in committed batches (0 disables periodic
    checkpoints; the seed checkpoint at server start is always written, so
    recovery always has a base state).
    """

    directory: Union[str, Path]
    sync: str = "batch"
    checkpoint_interval: int = 0
    keep_checkpoints: int = 2

    def __post_init__(self) -> None:
        if self.sync not in SYNC_POLICIES:
            raise JournalError(
                f"unknown sync policy {self.sync!r}; expected one of {SYNC_POLICIES}"
            )
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")

    @property
    def journal_path(self) -> Path:
        return Path(self.directory) / "journal.wal"

    @property
    def checkpoint_directory(self) -> Path:
        return Path(self.directory)


@dataclass
class RecoveryResult:
    """What :func:`recover` reconstructed."""

    maintainer: Any
    prefix: int               # committed batches folded into the state
    journal_seq: int          # highest journal seq applied (-1: none)
    checkpoint_seq: int       # seq of the checkpoint the replay started from
    replayed_batches: int     # journal records replayed on top of it
    quarantined: List[int] = field(default_factory=list)  # seqs skipped on replay error


def recover(
    options: DurabilityOptions,
    maintainer_factory: Optional[Callable[[], Any]] = None,
    journal: Optional[BatchJournal] = None,
) -> RecoveryResult:
    """Reconstruct the maintainer from the durability directory.

    Loads the newest checkpoint that validates (corrupt ones are skipped);
    without any checkpoint, ``maintainer_factory`` must build the empty
    maintainer the journal's full history replays into.  Journal records at
    or before the checkpoint's sequence are already folded into its state
    and are skipped; the tail replays in order through ``apply_groups``.

    A record whose replay raises (a poison batch journaled before its
    propagation failed, with no surviving abort record) may have mutated the
    maintainer *partially* before raising, so tolerance cannot just skip and
    continue: the replay restarts from the checkpoint with the poison
    sequence excluded.  The excluded sequences are listed in ``quarantined``
    — the offline mirror of the server's live quarantine.
    """
    store = CheckpointStore(
        options.checkpoint_directory, keep=options.keep_checkpoints
    )

    def base() -> tuple:
        checkpoint = store.latest()
        if checkpoint is not None:
            return checkpoint.maintainer, checkpoint.prefix, checkpoint.seq
        if maintainer_factory is None:
            raise JournalError(
                f"no checkpoint under {options.checkpoint_directory} and no "
                "maintainer_factory to replay the journal into"
            )
        return maintainer_factory(), 0, -1

    owns_journal = journal is None
    if owns_journal:
        journal = BatchJournal(options.journal_path, sync=options.sync)
    try:
        records = list(journal.replay())
        quarantined: List[int] = []
        while True:
            maintainer, prefix, base_seq = base()
            checkpoint_seq = base_seq
            replayed = 0
            applied_seq = base_seq
            poison = None
            for record in records:
                if record.seq <= base_seq or record.seq in quarantined:
                    continue
                try:
                    maintainer.apply_groups(record.groups)
                except Exception:
                    poison = record.seq
                    break
                replayed += 1
                prefix += 1
                applied_seq = record.seq
            if poison is None:
                break
            quarantined.append(poison)
    finally:
        if owns_journal:
            journal.close()
    return RecoveryResult(
        maintainer=maintainer,
        prefix=prefix,
        journal_seq=applied_seq,
        checkpoint_seq=checkpoint_seq,
        replayed_batches=replayed,
        quarantined=quarantined,
    )
