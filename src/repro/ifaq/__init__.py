"""IFAQ: a miniature iterative-functional-aggregate-queries compiler (Section 5.3).

Programs mixing database and ML workloads (here: gradient descent for linear
regression over a join) are expressed in a small functional IR over
dictionaries, sums and loops.  Equivalence-preserving transformations —
loop-invariant code motion, static memoisation, loop unrolling / schema
specialisation, aggregate pushdown and fusion — rewrite the program from a
per-iteration scan over the join into a one-off aggregate batch followed by a
cheap convergence loop.  An instrumented interpreter counts operations so the
effect of every stage is measurable.
"""

from repro.ifaq.expr import (
    BinOp,
    Const,
    DictOver,
    FieldOf,
    GroupSum,
    IterateLoop,
    Let,
    Lookup,
    MakeDict,
    MakeRecord,
    OperationCounter,
    Record,
    SumOver,
    Var,
    evaluate,
)
from repro.ifaq.transforms import (
    factor_out_invariant,
    hoist_invariant_lets,
    specialize_field_access,
)
from repro.ifaq.gradient_program import (
    GradientProgramStages,
    build_stage_programs,
    join_as_dictionary,
)
from repro.ifaq.compile import CompilationReport, compile_and_run

__all__ = [
    "Const",
    "Var",
    "Record",
    "MakeRecord",
    "MakeDict",
    "GroupSum",
    "FieldOf",
    "Lookup",
    "BinOp",
    "SumOver",
    "DictOver",
    "Let",
    "IterateLoop",
    "OperationCounter",
    "evaluate",
    "factor_out_invariant",
    "hoist_invariant_lets",
    "specialize_field_access",
    "GradientProgramStages",
    "build_stage_programs",
    "join_as_dictionary",
    "CompilationReport",
    "compile_and_run",
]
