"""The IFAQ expression IR and its instrumented interpreter.

The IR supports the constructs used by the paper's Section 5.3 walk-through:
dictionaries (finite maps), records with static fields, summation over the
support of a dictionary, dictionary construction, let bindings and a bounded
iteration loop (the gradient-descent convergence loop).  The interpreter
counts arithmetic operations, dynamic dictionary lookups and static field
accesses, so the benefit of each compilation stage can be quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple


class Record:
    """An immutable record: hashable, with both dynamic and static access."""

    __slots__ = ("fields", "values")

    def __init__(self, mapping: Mapping[str, Any]) -> None:
        self.fields: Tuple[str, ...] = tuple(mapping)
        self.values: Tuple[Any, ...] = tuple(mapping.values())

    def dynamic_get(self, name: str) -> Any:
        for position, fieldname in enumerate(self.fields):
            if fieldname == name:
                return self.values[position]
        raise KeyError(name)

    def static_get(self, position: int) -> Any:
        return self.values[position]

    def position_of(self, name: str) -> int:
        return self.fields.index(name)

    def as_dict(self) -> Dict[str, Any]:
        return dict(zip(self.fields, self.values))

    def __hash__(self) -> int:
        return hash((self.fields, self.values))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self.fields == other.fields and self.values == other.values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{name}={value!r}" for name, value in zip(self.fields, self.values))
        return f"Record({parts})"


@dataclass
class OperationCounter:
    """Counts the work done by the interpreter."""

    arithmetic: int = 0
    dynamic_lookups: int = 0
    static_accesses: int = 0
    loop_iterations: int = 0

    @property
    def total(self) -> int:
        return self.arithmetic + self.dynamic_lookups + self.static_accesses

    def as_dict(self) -> Dict[str, int]:
        return {
            "arithmetic": self.arithmetic,
            "dynamic_lookups": self.dynamic_lookups,
            "static_accesses": self.static_accesses,
            "loop_iterations": self.loop_iterations,
            "total": self.total,
        }


class Expr:
    """Base class of IR expressions."""

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def rebuild(self, children: Sequence["Expr"]) -> "Expr":
        return self

    def free_variables(self) -> frozenset:
        names = frozenset()
        for child in self.children():
            names |= child.free_variables()
        return names


@dataclass
class Const(Expr):
    value: Any

    def free_variables(self) -> frozenset:
        return frozenset()


@dataclass
class Var(Expr):
    name: str

    def free_variables(self) -> frozenset:
        return frozenset({self.name})


@dataclass
class Lookup(Expr):
    """Dynamic access ``container(key)`` — dictionary lookup or record field."""

    container: Expr
    key: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.container, self.key)

    def rebuild(self, children: Sequence[Expr]) -> "Lookup":
        return Lookup(children[0], children[1])


@dataclass
class FieldOf(Expr):
    """Static field access ``record.field`` resolved to a position at compile time."""

    record: Expr
    field_name: str
    position: Optional[int] = None

    def children(self) -> Tuple[Expr, ...]:
        return (self.record,)

    def rebuild(self, children: Sequence[Expr]) -> "FieldOf":
        return FieldOf(children[0], self.field_name, self.position)


@dataclass
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def rebuild(self, children: Sequence[Expr]) -> "BinOp":
        return BinOp(self.op, children[0], children[1])


@dataclass
class MakeRecord(Expr):
    entries: Tuple[Tuple[str, Expr], ...]

    def __init__(self, mapping: Mapping[str, Expr]) -> None:
        self.entries = tuple(mapping.items())

    def children(self) -> Tuple[Expr, ...]:
        return tuple(expr for _name, expr in self.entries)

    def rebuild(self, children: Sequence[Expr]) -> "MakeRecord":
        return MakeRecord({name: child for (name, _old), child in zip(self.entries, children)})


@dataclass
class SumOver(Expr):
    """``Σ_{variable ∈ sup(domain)} body`` — iterate over a dictionary's keys."""

    variable: str
    domain: Expr
    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.domain, self.body)

    def rebuild(self, children: Sequence[Expr]) -> "SumOver":
        return SumOver(self.variable, children[0], children[1])

    def free_variables(self) -> frozenset:
        return self.domain.free_variables() | (self.body.free_variables() - {self.variable})


@dataclass
class DictOver(Expr):
    """``λ_{variable ∈ sup(domain)} body`` — build a dictionary keyed by the domain."""

    variable: str
    domain: Expr
    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.domain, self.body)

    def rebuild(self, children: Sequence[Expr]) -> "DictOver":
        return DictOver(self.variable, children[0], children[1])

    def free_variables(self) -> frozenset:
        return self.domain.free_variables() | (self.body.free_variables() - {self.variable})


@dataclass
class MakeDict(Expr):
    """A dictionary literal with statically known keys and expression values."""

    entries: Tuple[Tuple[Any, Expr], ...]

    def __init__(self, mapping: Mapping[Any, Expr]) -> None:
        self.entries = tuple(mapping.items())

    def children(self) -> Tuple[Expr, ...]:
        return tuple(expr for _key, expr in self.entries)

    def rebuild(self, children: Sequence[Expr]) -> "MakeDict":
        return MakeDict({key: child for (key, _old), child in zip(self.entries, children)})


@dataclass
class GroupSum(Expr):
    """``Σ_{variable ∈ sup(domain)} {key(variable) -> value(variable)}``.

    Builds a dictionary by grouping: for every element of the domain the key
    expression selects the group and the value expression is summed within it.
    This is the IR form of the partial-aggregate views V_R / V_I of Section 5.3.
    """

    variable: str
    domain: Expr
    key: Expr
    value: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.domain, self.key, self.value)

    def rebuild(self, children: Sequence[Expr]) -> "GroupSum":
        return GroupSum(self.variable, children[0], children[1], children[2])

    def free_variables(self) -> frozenset:
        bound = {self.variable}
        return self.domain.free_variables() | (
            (self.key.free_variables() | self.value.free_variables()) - bound
        )


@dataclass
class Let(Expr):
    name: str
    bound: Expr
    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.bound, self.body)

    def rebuild(self, children: Sequence[Expr]) -> "Let":
        return Let(self.name, children[0], children[1])

    def free_variables(self) -> frozenset:
        return self.bound.free_variables() | (self.body.free_variables() - {self.name})


@dataclass
class IterateLoop(Expr):
    """Bounded iteration: ``state = init; repeat count times: state = step``.

    The step expression sees the current state under ``state_name``.  This is
    the convergence loop of gradient descent with a fixed iteration budget.
    """

    state_name: str
    init: Expr
    count: int
    step: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.init, self.step)

    def rebuild(self, children: Sequence[Expr]) -> "IterateLoop":
        return IterateLoop(self.state_name, children[0], self.count, children[1])

    def free_variables(self) -> frozenset:
        return self.init.free_variables() | (self.step.free_variables() - {self.state_name})


_ARITHMETIC = {
    "+": lambda left, right: left + right,
    "-": lambda left, right: left - right,
    "*": lambda left, right: left * right,
    "/": lambda left, right: left / right,
    "==": lambda left, right: 1.0 if left == right else 0.0,
}


def evaluate(expression: Expr, environment: Mapping[str, Any],
             counter: Optional[OperationCounter] = None) -> Any:
    """Evaluate an expression, counting operations in ``counter``."""
    counter = counter if counter is not None else OperationCounter()
    return _evaluate(expression, dict(environment), counter)


def _evaluate(expression: Expr, environment: Dict[str, Any], counter: OperationCounter) -> Any:
    if isinstance(expression, Const):
        return expression.value
    if isinstance(expression, Var):
        try:
            return environment[expression.name]
        except KeyError as exc:
            raise NameError(f"unbound variable {expression.name!r}") from exc
    if isinstance(expression, Lookup):
        container = _evaluate(expression.container, environment, counter)
        key = _evaluate(expression.key, environment, counter)
        counter.dynamic_lookups += 1
        if isinstance(container, Record):
            return container.dynamic_get(key)
        return container[key]
    if isinstance(expression, FieldOf):
        record = _evaluate(expression.record, environment, counter)
        counter.static_accesses += 1
        if isinstance(record, Record):
            if expression.position is not None:
                return record.static_get(expression.position)
            return record.dynamic_get(expression.field_name)
        return record[expression.field_name]
    if isinstance(expression, BinOp):
        left = _evaluate(expression.left, environment, counter)
        right = _evaluate(expression.right, environment, counter)
        counter.arithmetic += 1
        return _ARITHMETIC[expression.op](left, right)
    if isinstance(expression, MakeRecord):
        return Record(
            {name: _evaluate(child, environment, counter) for name, child in expression.entries}
        )
    if isinstance(expression, SumOver):
        domain = _evaluate(expression.domain, environment, counter)
        total = 0.0
        keys = domain.keys() if isinstance(domain, dict) else domain
        for key in keys:
            environment[expression.variable] = key
            total = total + _evaluate(expression.body, environment, counter)
            counter.arithmetic += 1
        environment.pop(expression.variable, None)
        return total
    if isinstance(expression, DictOver):
        domain = _evaluate(expression.domain, environment, counter)
        keys = domain.keys() if isinstance(domain, dict) else domain
        result = {}
        for key in keys:
            environment[expression.variable] = key
            result[key] = _evaluate(expression.body, environment, counter)
        environment.pop(expression.variable, None)
        return result
    if isinstance(expression, MakeDict):
        return {
            key: _evaluate(child, environment, counter) for key, child in expression.entries
        }
    if isinstance(expression, GroupSum):
        domain = _evaluate(expression.domain, environment, counter)
        keys = domain.keys() if isinstance(domain, dict) else domain
        grouped: Dict[Any, Any] = {}
        for element in keys:
            environment[expression.variable] = element
            group = _evaluate(expression.key, environment, counter)
            value = _evaluate(expression.value, environment, counter)
            counter.arithmetic += 1
            grouped[group] = grouped.get(group, 0.0) + value
        environment.pop(expression.variable, None)
        return grouped
    if isinstance(expression, Let):
        environment[expression.name] = _evaluate(expression.bound, environment, counter)
        value = _evaluate(expression.body, environment, counter)
        environment.pop(expression.name, None)
        return value
    if isinstance(expression, IterateLoop):
        state = _evaluate(expression.init, environment, counter)
        for _iteration in range(expression.count):
            counter.loop_iterations += 1
            environment[expression.state_name] = state
            state = _evaluate(expression.step, environment, counter)
        environment.pop(expression.state_name, None)
        return state
    raise TypeError(f"unknown expression type {type(expression)!r}")
