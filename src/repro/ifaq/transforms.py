"""Equivalence-preserving IFAQ transformations.

Three of the rewrites from Figure 11 are implemented generically over the IR:

* :func:`hoist_invariant_lets` — loop-invariant code motion: a ``Let`` at the
  top of a loop body whose bound expression does not depend on the loop state
  is moved out of the loop;
* :func:`factor_out_invariant` — distributivity: multiplicative factors that do
  not depend on a summation variable are pulled out of the ``SumOver``;
* :func:`specialize_field_access` — schema specialisation: dynamic record
  lookups with statically known keys become static field accesses with
  resolved positions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ifaq.expr import (
    BinOp,
    Const,
    DictOver,
    Expr,
    FieldOf,
    IterateLoop,
    Let,
    Lookup,
    SumOver,
    Var,
)


def _transform_bottom_up(expression: Expr, rule: Callable[[Expr], Expr]) -> Expr:
    """Apply ``rule`` to every node, children first."""
    children = expression.children()
    if children:
        rebuilt = expression.rebuild(
            [_transform_bottom_up(child, rule) for child in children]
        )
    else:
        rebuilt = expression
    return rule(rebuilt)


# -- loop-invariant code motion ------------------------------------------------------------------


def hoist_invariant_lets(expression: Expr) -> Expr:
    """Move loop-invariant ``Let`` bindings out of ``IterateLoop`` bodies."""

    def rule(node: Expr) -> Expr:
        if not isinstance(node, IterateLoop):
            return node
        loop = node
        hoisted: List[Tuple[str, Expr]] = []
        step = loop.step
        while isinstance(step, Let) and loop.state_name not in step.bound.free_variables():
            hoisted.append((step.name, step.bound))
            step = step.body
        if not hoisted:
            return node
        result: Expr = IterateLoop(loop.state_name, loop.init, loop.count, step)
        for name, bound in reversed(hoisted):
            result = Let(name, bound, result)
        return result

    return _transform_bottom_up(expression, rule)


# -- distributivity / factoring ---------------------------------------------------------------------


def _flatten_product(expression: Expr) -> List[Expr]:
    if isinstance(expression, BinOp) and expression.op == "*":
        return _flatten_product(expression.left) + _flatten_product(expression.right)
    return [expression]


def _rebuild_product(factors: Sequence[Expr]) -> Expr:
    if not factors:
        return Const(1.0)
    result = factors[0]
    for factor in factors[1:]:
        result = BinOp("*", result, factor)
    return result


def factor_out_invariant(expression: Expr) -> Expr:
    """Pull factors independent of the summation variable out of ``SumOver``."""

    def rule(node: Expr) -> Expr:
        if not isinstance(node, SumOver):
            return node
        factors = _flatten_product(node.body)
        if len(factors) < 2:
            return node
        dependent = [factor for factor in factors if node.variable in factor.free_variables()]
        independent = [factor for factor in factors if node.variable not in factor.free_variables()]
        if not independent:
            return node
        inner: Expr = SumOver(node.variable, node.domain, _rebuild_product(dependent))
        return BinOp("*", _rebuild_product(independent), inner)

    return _transform_bottom_up(expression, rule)


# -- schema specialisation -----------------------------------------------------------------------------


def specialize_field_access(expression: Expr, field_order: Sequence[str],
                            record_variables: Sequence[str]) -> Expr:
    """Turn ``Lookup(Var(x), Const(field))`` into a positional ``FieldOf`` access.

    ``field_order`` is the statically known record layout and
    ``record_variables`` the loop variables bound to records of that layout.
    """
    positions: Dict[str, int] = {name: position for position, name in enumerate(field_order)}
    record_set = set(record_variables)

    def rule(node: Expr) -> Expr:
        if (
            isinstance(node, Lookup)
            and isinstance(node.container, Var)
            and node.container.name in record_set
            and isinstance(node.key, Const)
            and node.key.value in positions
        ):
            return FieldOf(node.container, str(node.key.value), positions[str(node.key.value)])
        return node

    return _transform_bottom_up(expression, rule)
