"""The Section 5.3 gradient-descent program at its successive compilation stages.

The running example learns a linear regression model over the join
``Q = S(i, s, u) ⋈ R(s, c) ⋈ I(i, p)`` with features ``{i, s, c, p}`` and
response ``u``.  Five stages of the same program are provided; every stage is
an IR expression that evaluates to the parameter dictionary θ, and each stage
does strictly less interpreter work than the previous one:

0. ``naive``            — every gradient-descent iteration scans sup(Q);
1. ``memoised``         — the covariance dictionary M and the correlation
                          vector C are named (static memoisation) but still
                          recomputed inside the loop;
2. ``hoisted``          — loop-invariant code motion moves M and C out of the
                          loop (derived from stage 1 by
                          :func:`repro.ifaq.transforms.hoist_invariant_lets`);
3. ``specialised``      — record accesses become static field accesses
                          (derived from stage 2 by
                          :func:`repro.ifaq.transforms.specialize_field_access`);
4. ``pushed_down``      — M and C are computed by sum-product expressions over
                          the base relations (aggregate pushdown past the
                          join), so sup(Q) is never enumerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.data.database import Database
from repro.ifaq.expr import (
    BinOp,
    Const,
    DictOver,
    Expr,
    GroupSum,
    IterateLoop,
    Let,
    Lookup,
    MakeDict,
    Record,
    SumOver,
    Var,
)
from repro.ifaq.transforms import hoist_invariant_lets, specialize_field_access
from repro.query.conjunctive import ConjunctiveQuery

#: The features of the Section 5.3 example (the response ``u`` is excluded).
EXAMPLE_FEATURES: Tuple[str, ...] = ("i", "s", "c", "p")
EXAMPLE_RESPONSE: str = "u"
EXAMPLE_FIELD_ORDER: Tuple[str, ...] = ("i", "s", "u", "c", "p")


def join_as_dictionary(
    database: Database, query: ConjunctiveQuery, fields: Sequence[str] = EXAMPLE_FIELD_ORDER
) -> Dict[Record, int]:
    """Materialise the join as an IFAQ dictionary mapping records to multiplicities."""
    joined = query.evaluate(database)
    names = joined.schema.names
    result: Dict[Record, int] = {}
    for row, multiplicity in joined.items():
        assignment = dict(zip(names, row))
        record = Record({field: float(assignment[field]) for field in fields})
        result[record] = result.get(record, 0) + multiplicity
    return result


def relation_as_dictionary(database: Database, relation_name: str) -> Dict[Record, int]:
    """One base relation as an IFAQ dictionary (numeric fields only)."""
    relation = database.relation(relation_name)
    names = relation.schema.names
    result: Dict[Record, int] = {}
    for row, multiplicity in relation.items():
        record = Record({name: float(value) for name, value in zip(names, row)})
        result[record] = result.get(record, 0) + multiplicity
    return result


# -- building blocks --------------------------------------------------------------------------------


def _lookup(container: str, key: Expr) -> Lookup:
    return Lookup(Var(container), key)


def _x(field: str) -> Expr:
    """Dynamic record access ``x(field)``."""
    return Lookup(Var("x"), Const(field))


def _error_term(features: Sequence[str], response: str) -> Expr:
    """``Σ_{f2} θ(f2) * x(f2) - x(response)`` — the residual of one tuple."""
    weighted = SumOver(
        "f2",
        Const(list(features)),
        BinOp("*", Lookup(Var("theta"), Var("f2")), Lookup(Var("x"), Var("f2"))),
    )
    return BinOp("-", weighted, _x(response))


def _theta_update(gradient_of_f1: Expr, learning_rate: float) -> DictOver:
    """``θ = λ_{f1∈F} θ(f1) - α * gradient(f1)``."""
    return DictOver(
        "f1",
        Const(list(EXAMPLE_FEATURES)),
        BinOp(
            "-",
            Lookup(Var("theta"), Var("f1")),
            BinOp("*", Const(learning_rate), gradient_of_f1),
        ),
    )


def _initial_theta() -> Const:
    return Const({feature: 0.0 for feature in EXAMPLE_FEATURES})


# -- stage constructors --------------------------------------------------------------------------------


def naive_program(iterations: int, learning_rate: float) -> Expr:
    """Stage 0: every iteration scans sup(Q) and recomputes the inner sums."""
    gradient = SumOver(
        "x",
        Var("Q"),
        BinOp(
            "*",
            BinOp("*", _lookup("Q", Var("x")), _error_term(EXAMPLE_FEATURES, EXAMPLE_RESPONSE)),
            _x_dynamic_f1(),
        ),
    )
    return IterateLoop("theta", _initial_theta(), iterations, _theta_update(gradient, learning_rate))


def _x_dynamic_f1() -> Expr:
    return Lookup(Var("x"), Var("f1"))


def _covariance_dictionary() -> DictOver:
    """``M = λ f1 λ f2 Σ_x Q(x) * x(f1) * x(f2)``."""
    return DictOver(
        "f1",
        Const(list(EXAMPLE_FEATURES)),
        DictOver(
            "f2",
            Const(list(EXAMPLE_FEATURES)),
            SumOver(
                "x",
                Var("Q"),
                BinOp(
                    "*",
                    BinOp("*", _lookup("Q", Var("x")), Lookup(Var("x"), Var("f1"))),
                    Lookup(Var("x"), Var("f2")),
                ),
            ),
        ),
    )


def _correlation_dictionary() -> DictOver:
    """``C = λ f1 Σ_x Q(x) * x(f1) * x(u)``."""
    return DictOver(
        "f1",
        Const(list(EXAMPLE_FEATURES)),
        SumOver(
            "x",
            Var("Q"),
            BinOp(
                "*",
                BinOp("*", _lookup("Q", Var("x")), Lookup(Var("x"), Var("f1"))),
                _x(EXAMPLE_RESPONSE),
            ),
        ),
    )


def _gradient_from_statistics() -> Expr:
    """``Σ_{f2} θ(f2) * M(f1)(f2) - C(f1)`` — the gradient built from M and C."""
    return BinOp(
        "-",
        SumOver(
            "f2",
            Const(list(EXAMPLE_FEATURES)),
            BinOp(
                "*",
                Lookup(Var("theta"), Var("f2")),
                Lookup(Lookup(Var("M"), Var("f1")), Var("f2")),
            ),
        ),
        Lookup(Var("C"), Var("f1")),
    )


def memoised_program(iterations: int, learning_rate: float) -> Expr:
    """Stage 1: M and C are named but still live inside the convergence loop."""
    step = Let(
        "M",
        _covariance_dictionary(),
        Let("C", _correlation_dictionary(), _theta_update(_gradient_from_statistics(), learning_rate)),
    )
    return IterateLoop("theta", _initial_theta(), iterations, step)


def hoisted_program(iterations: int, learning_rate: float) -> Expr:
    """Stage 2: derived from stage 1 by loop-invariant code motion."""
    return hoist_invariant_lets(memoised_program(iterations, learning_rate))


def specialised_program(iterations: int, learning_rate: float) -> Expr:
    """Stage 3: derived from stage 2 by static field-access specialisation.

    Only the accesses with statically known field names (``x(u)``) specialise;
    the accesses keyed by the loop variables ``f1``/``f2`` stay dynamic, as in
    the paper they are removed by loop unrolling, which the interpreter models
    with the same dictionary layout.
    """
    return specialize_field_access(
        hoisted_program(iterations, learning_rate),
        EXAMPLE_FIELD_ORDER,
        record_variables=["x"],
    )


#: Which base relation owns each field of the example schema.
_FIELD_OWNER: Dict[str, str] = {"i": "S", "s": "S", "u": "S", "c": "R", "p": "I"}
#: The join key of each dimension relation (looked up from the S tuple).
_DIMENSION_KEY: Dict[str, str] = {"R": "s", "I": "i"}


def _partial_view(relation: str, fields: Tuple[str, ...]) -> GroupSum:
    """``V = Σ_{x∈relation} {x.key -> relation(x) * Π fields}`` (a keyed partial aggregate)."""
    variable = f"x{relation.lower()}"
    key_field = _DIMENSION_KEY[relation]
    value: Expr = Lookup(Var(relation), Var(variable))
    for field in fields:
        value = BinOp("*", value, Lookup(Var(variable), Const(field)))
    return GroupSum(
        variable,
        Var(relation),
        Lookup(Var(variable), Const(key_field)),
        value,
    )


def _pushed_down_entry(left_field: str, right_field: str) -> Expr:
    """One sigma entry computed by aggregate pushdown with keyed partial views.

    The entry ``Σ_Q Q(x) * x(left) * x(right)`` becomes a single scan of S that
    multiplies the locally available factors with lookups into the partial
    views of R and I (grouped by their join keys), exactly as in the paper's
    V_R / V_I rewriting of Section 5.3.
    """
    dimension_fields: Dict[str, List[str]] = {"R": [], "I": []}
    local_fields: List[str] = []
    for field in (left_field, right_field):
        owner = _FIELD_OWNER[field]
        if owner == "S":
            local_fields.append(field)
        else:
            dimension_fields[owner].append(field)

    lets: List[Tuple[str, Expr]] = []
    body: Expr = _lookup("S", Var("xs"))
    for field in local_fields:
        body = BinOp("*", body, Lookup(Var("xs"), Const(field)))
    for relation in ("R", "I"):
        fields = tuple(dimension_fields[relation])
        view_name = f"V_{relation}_{'_'.join(fields) if fields else 'count'}"
        lets.append((view_name, _partial_view(relation, fields)))
        key_field = _DIMENSION_KEY[relation]
        body = BinOp(
            "*", body, Lookup(Var(view_name), Lookup(Var("xs"), Const(key_field)))
        )

    entry: Expr = SumOver("xs", Var("S"), body)
    for name, bound in reversed(lets):
        entry = Let(name, bound, entry)
    return entry


def pushed_down_program(iterations: int, learning_rate: float) -> Expr:
    """Stage 4: M and C computed over the base relations (aggregate pushdown).

    The join dictionary Q is never referenced: every sigma entry scans S once
    and probes keyed partial aggregates of R and I.
    """
    covariance = MakeDict(
        {
            left: MakeDict(
                {right: _pushed_down_entry(left, right) for right in EXAMPLE_FEATURES}
            )
            for left in EXAMPLE_FEATURES
        }
    )
    correlation = MakeDict(
        {feature: _pushed_down_entry(feature, EXAMPLE_RESPONSE) for feature in EXAMPLE_FEATURES}
    )

    step = _theta_update(_gradient_from_statistics(), learning_rate)
    loop = IterateLoop("theta", _initial_theta(), iterations, step)
    return Let("M", covariance, Let("C", correlation, loop))


# -- stage registry ----------------------------------------------------------------------------------------


@dataclass
class GradientProgramStages:
    """All compilation stages of the Section 5.3 program."""

    iterations: int
    learning_rate: float
    stages: Dict[str, Expr]

    def names(self) -> List[str]:
        return list(self.stages)


def build_stage_programs(iterations: int = 10, learning_rate: float = 0.05) -> GradientProgramStages:
    """Build the five stages of the gradient-descent program."""
    return GradientProgramStages(
        iterations=iterations,
        learning_rate=learning_rate,
        stages={
            "0_naive": naive_program(iterations, learning_rate),
            "1_memoised": memoised_program(iterations, learning_rate),
            "2_hoisted": hoisted_program(iterations, learning_rate),
            "3_specialised": specialised_program(iterations, learning_rate),
            "4_pushed_down": pushed_down_program(iterations, learning_rate),
        },
    )
