"""Running the IFAQ compilation stages and measuring their cost.

``compile_and_run`` evaluates every stage of the Section 5.3 gradient-descent
program on the same database, checks that all stages compute the same model
parameters, and reports the interpreter's operation counters per stage — the
quantitative effect of each rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.data.database import Database
from repro.ifaq.expr import OperationCounter, evaluate
from repro.ifaq.gradient_program import (
    EXAMPLE_FIELD_ORDER,
    GradientProgramStages,
    build_stage_programs,
    join_as_dictionary,
    relation_as_dictionary,
)
from repro.query.conjunctive import ConjunctiveQuery


@dataclass
class StageOutcome:
    """Result and cost of one compilation stage."""

    name: str
    parameters: Dict[str, float]
    operations: Dict[str, int]
    needs_join: bool


@dataclass
class CompilationReport:
    """All stage outcomes plus the sizes of the inputs each stage needs."""

    stages: List[StageOutcome] = field(default_factory=list)
    join_size: int = 0
    base_sizes: Dict[str, int] = field(default_factory=dict)

    def stage(self, name: str) -> StageOutcome:
        for outcome in self.stages:
            if outcome.name == name:
                return outcome
        raise KeyError(name)

    def operation_table(self) -> List[Tuple[str, int, int, int]]:
        """Rows of (stage, arithmetic, dynamic lookups, total) for reporting."""
        return [
            (
                outcome.name,
                outcome.operations["arithmetic"],
                outcome.operations["dynamic_lookups"],
                outcome.operations["total"],
            )
            for outcome in self.stages
        ]

    def parameters_agree(self, tolerance: float = 1e-6) -> bool:
        if not self.stages:
            return True
        reference = self.stages[0].parameters
        for outcome in self.stages[1:]:
            for feature, value in reference.items():
                if abs(outcome.parameters.get(feature, float("nan")) - value) > tolerance:
                    return False
        return True


def compile_and_run(
    database: Database,
    query: ConjunctiveQuery,
    iterations: int = 10,
    learning_rate: float = 1e-6,
    relation_roles: Optional[Mapping[str, str]] = None,
) -> CompilationReport:
    """Evaluate every stage of the gradient program over ``database``.

    ``relation_roles`` maps the IR relation names ``S``, ``R`` and ``I`` to the
    database's relation names (defaults to identical names).
    """
    roles = dict(relation_roles or {"S": "S", "R": "R", "I": "I"})
    stages: GradientProgramStages = build_stage_programs(iterations, learning_rate)

    join_dictionary = join_as_dictionary(database, query, EXAMPLE_FIELD_ORDER)
    base_dictionaries = {
        ir_name: relation_as_dictionary(database, database_name)
        for ir_name, database_name in roles.items()
    }

    report = CompilationReport(
        join_size=len(join_dictionary),
        base_sizes={name: len(dictionary) for name, dictionary in base_dictionaries.items()},
    )
    for name, program in stages.stages.items():
        needs_join = "Q" in program.free_variables()
        environment: Dict[str, object] = dict(base_dictionaries)
        if needs_join:
            environment["Q"] = join_dictionary
        counter = OperationCounter()
        parameters = evaluate(program, environment, counter)
        report.stages.append(
            StageOutcome(
                name=name,
                parameters={feature: float(value) for feature, value in parameters.items()},
                operations=counter.as_dict(),
                needs_join=needs_join,
            )
        )
    return report
