"""Mutual information and Chow–Liu trees from frequency aggregates.

The mutual-information workload of Figure 5: pairwise joint and marginal
frequency tables over categorical features, computed as grouped counts by the
engine.  From those the pairwise mutual information matrix is assembled and a
maximum-weight spanning tree (the Chow–Liu tree) is extracted with networkx.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.aggregates.batch import mutual_information_batch
from repro.data.database import Database
from repro.engine.lmfao import EngineOptions, LMFAOEngine
from repro.query.conjunctive import ConjunctiveQuery


def mutual_information_matrix(
    database: Database,
    query: ConjunctiveQuery,
    categorical: Sequence[str],
    options: Optional[EngineOptions] = None,
) -> Tuple[np.ndarray, List[str]]:
    """Pairwise mutual information (in nats) between categorical features."""
    engine = LMFAOEngine(database, query, options)
    batch = mutual_information_batch(list(categorical))
    result = engine.evaluate(batch)

    total = result.scalar("count")
    features = list(categorical)
    matrix = np.zeros((len(features), len(features)))

    marginals: Dict[str, Dict[object, float]] = {}
    for feature in features:
        grouped = result.grouped(f"count@{feature}")
        marginals[feature] = {key[0]: value for key, value in grouped.items()}

    for left_position, left in enumerate(features):
        for right_position in range(left_position + 1, len(features)):
            right = features[right_position]
            joint = result.grouped(f"count@{left},{right}")
            information = 0.0
            for (left_value, right_value), count in joint.items():
                if count <= 0:
                    continue
                joint_probability = count / total
                left_probability = marginals[left][left_value] / total
                right_probability = marginals[right][right_value] / total
                information += joint_probability * math.log(
                    joint_probability / (left_probability * right_probability)
                )
            matrix[left_position, right_position] = information
            matrix[right_position, left_position] = information
    return matrix, features


@dataclass
class ChowLiuTree:
    """A maximum-mutual-information spanning tree over categorical features."""

    features: List[str]
    edges: List[Tuple[str, str, float]]
    mutual_information: np.ndarray

    @staticmethod
    def fit(
        database: Database,
        query: ConjunctiveQuery,
        categorical: Sequence[str],
        options: Optional[EngineOptions] = None,
    ) -> "ChowLiuTree":
        matrix, features = mutual_information_matrix(database, query, categorical, options)
        graph = nx.Graph()
        graph.add_nodes_from(features)
        for left_position, left in enumerate(features):
            for right_position in range(left_position + 1, len(features)):
                graph.add_edge(
                    left,
                    features[right_position],
                    weight=matrix[left_position, right_position],
                )
        tree = nx.maximum_spanning_tree(graph, weight="weight")
        edges = [
            (left, right, float(data["weight"])) for left, right, data in tree.edges(data=True)
        ]
        return ChowLiuTree(features=features, edges=edges, mutual_information=matrix)

    def total_weight(self) -> float:
        return sum(weight for _left, _right, weight in self.edges)

    def neighbours(self, feature: str) -> List[str]:
        return sorted(
            {right for left, right, _weight in self.edges if left == feature}
            | {left for left, right, _weight in self.edges if right == feature}
        )
