"""Functional-dependency-based model reparameterisation (Section 3.2).

When a functional dependency ``determinant -> dependent`` holds (e.g.
city → country), a ridge model with one-hot parameters for both attributes can
be reparameterised: drop the dependent attribute's parameters, learn the model
over the remaining features, and recover the dependent parameters in closed
form afterwards.  Training touches fewer parameters, and the recovered model
predicts identically on any row consistent with the dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.aggregates.sparse_tensor import SigmaMatrix
from repro.data.database import Database
from repro.data.relation import Relation
from repro.ml.linear_regression import RidgeRegression


@dataclass
class FDReparameterization:
    """Reparameterise categorical features linked by a functional dependency.

    Parameters
    ----------
    determinant / dependent:
        Attribute names with ``determinant -> dependent`` (both categorical in
        the model).
    mapping:
        The value-level mapping ``determinant value -> dependent value``
        witnessed by the database.
    """

    determinant: str
    dependent: str
    mapping: Dict[object, object]

    @staticmethod
    def from_relation(relation: Relation, determinant: str, dependent: str) -> "FDReparameterization":
        """Extract the value mapping from a relation; verifies the FD holds."""
        determinant_position = relation.schema.index_of(determinant)
        dependent_position = relation.schema.index_of(dependent)
        mapping: Dict[object, object] = {}
        for row in relation:
            key = row[determinant_position]
            value = row[dependent_position]
            existing = mapping.get(key)
            if existing is not None and existing != value:
                raise ValueError(
                    f"functional dependency {determinant} -> {dependent} violated for "
                    f"{key!r}: {existing!r} vs {value!r}"
                )
            mapping[key] = value
        return FDReparameterization(determinant, dependent, mapping)

    @staticmethod
    def from_database(database: Database, determinant: str, dependent: str) -> "FDReparameterization":
        for relation in database:
            if determinant in relation.schema and dependent in relation.schema:
                return FDReparameterization.from_relation(relation, determinant, dependent)
        raise ValueError(
            f"no relation contains both {determinant!r} and {dependent!r}"
        )

    # -- model surgery -----------------------------------------------------------------------

    def reduced_feature_lists(
        self, continuous: Sequence[str], categorical: Sequence[str]
    ) -> Tuple[List[str], List[str]]:
        """Feature lists with the dependent attribute dropped."""
        return (
            [feature for feature in continuous if feature != self.dependent],
            [feature for feature in categorical if feature != self.dependent],
        )

    def recover_full_model(
        self, reduced_model: RidgeRegression, sigma_reduced: SigmaMatrix
    ) -> Dict[str, float]:
        """Named coefficients of an equivalent model over the original features.

        The reduced model's coefficient for determinant value ``d`` absorbs the
        original coefficients ``θ_d + θ_{f(d)}``.  A canonical split assigns the
        dependent categories zero weight and keeps the combined weight on the
        determinant — predictions are unchanged for rows satisfying the FD.
        The returned mapping also lists the dependent categories explicitly so
        downstream code sees the full parameter space.
        """
        coefficients = dict(reduced_model.coefficients())
        for dependent_value in sorted(set(self.mapping.values()), key=str):
            coefficients.setdefault(f"{self.dependent}={dependent_value}", 0.0)
        return coefficients

    def check_prediction_equivalence(
        self,
        full_model: RidgeRegression,
        reduced_model: RidgeRegression,
        rows: Sequence[Mapping[str, object]],
        tolerance: float = 1e-6,
    ) -> bool:
        """Whether the two models predict (numerically) the same on ``rows``."""
        full_predictions = full_model.predict(rows)
        reduced_predictions = reduced_model.predict(rows)
        return bool(np.allclose(full_predictions, reduced_predictions, atol=tolerance))

    def parameter_savings(self, sigma_full: SigmaMatrix) -> int:
        """How many parameters the reparameterisation removes."""
        return len(sigma_full.index.positions_of_feature(self.dependent))
