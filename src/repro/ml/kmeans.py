"""k-means and relational k-means (Rk-means).

:class:`KMeans` is the standard Lloyd algorithm over an explicit point set —
the structure-agnostic baseline.  :class:`RelationalKMeans` follows the
Rk-means recipe referenced in Section 3.3: cluster each dimension separately
into a small number of quantiles, build the weighted *grid coreset* of the
cross product of the per-dimension centres (weights are group-by counts over
the join), and run weighted k-means on that coreset.  The coreset is tiny
compared to the join, and the result is a constant-factor approximation of
the k-means objective.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.database import Database
from repro.factorized.aggregates import group_by_sum_over_factorization
from repro.factorized.factorize import factorize_join
from repro.query.conjunctive import ConjunctiveQuery


@dataclass
class KMeansResult:
    centroids: np.ndarray
    inertia: float
    iterations: int
    labels: Optional[np.ndarray] = None


class KMeans:
    """Weighted Lloyd k-means over explicit points."""

    def __init__(self, clusters: int, max_iterations: int = 100, tolerance: float = 1e-6,
                 seed: int = 0) -> None:
        if clusters < 1:
            raise ValueError("clusters must be >= 1")
        self.clusters = clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.result: Optional[KMeansResult] = None

    def fit(self, points: np.ndarray, weights: Optional[np.ndarray] = None) -> KMeansResult:
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError("points must be a 2-D array")
        count = points.shape[0]
        if weights is None:
            weights = np.ones(count)
        weights = np.asarray(weights, dtype=float)

        rng = random.Random(self.seed)
        initial = rng.sample(range(count), min(self.clusters, count))
        centroids = points[initial].copy()
        if len(initial) < self.clusters:
            # Fewer distinct points than clusters: repeat points as needed.
            extra = [points[rng.randrange(count)] for _ in range(self.clusters - len(initial))]
            centroids = np.vstack([centroids] + extra)

        labels = np.zeros(count, dtype=int)
        inertia = float("inf")
        for iteration in range(1, self.max_iterations + 1):
            distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            labels = distances.argmin(axis=1)
            new_inertia = float((weights * distances[np.arange(count), labels]).sum())

            for cluster in range(self.clusters):
                mask = labels == cluster
                total_weight = float(weights[mask].sum())
                if total_weight > 0:
                    centroids[cluster] = (points[mask] * weights[mask, None]).sum(axis=0) / total_weight
            if abs(inertia - new_inertia) <= self.tolerance * max(inertia, 1.0):
                inertia = new_inertia
                break
            inertia = new_inertia

        self.result = KMeansResult(centroids=centroids, inertia=inertia,
                                   iterations=iteration, labels=labels)
        return self.result

    def predict(self, points: np.ndarray) -> np.ndarray:
        if self.result is None:
            raise RuntimeError("model is not fitted")
        points = np.asarray(points, dtype=float)
        distances = ((points[:, None, :] - self.result.centroids[None, :, :]) ** 2).sum(axis=2)
        return distances.argmin(axis=1)

    @staticmethod
    def inertia_of(points: np.ndarray, weights: Optional[np.ndarray], centroids: np.ndarray) -> float:
        points = np.asarray(points, dtype=float)
        if weights is None:
            weights = np.ones(points.shape[0])
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2).min(axis=1)
        return float((weights * distances).sum())


class RelationalKMeans:
    """Rk-means: k-means over a grid coreset built from the factorised join."""

    def __init__(
        self,
        features: Sequence[str],
        clusters: int,
        grid_size: int = 5,
        max_iterations: int = 100,
        seed: int = 0,
    ) -> None:
        self.features = tuple(features)
        self.clusters = clusters
        self.grid_size = grid_size
        self.max_iterations = max_iterations
        self.seed = seed
        self.coreset_points: Optional[np.ndarray] = None
        self.coreset_weights: Optional[np.ndarray] = None
        self.result: Optional[KMeansResult] = None

    # -- coreset construction --------------------------------------------------------------

    def _dimension_centres(self, values: Sequence[float], counts: Sequence[float]) -> List[float]:
        """1-D weighted k-means (size ``grid_size``) over one dimension's domain."""
        solver = KMeans(min(self.grid_size, len(values)), max_iterations=self.max_iterations,
                        seed=self.seed)
        result = solver.fit(np.asarray(values, dtype=float).reshape(-1, 1),
                            np.asarray(counts, dtype=float))
        return sorted(float(value) for value in result.centroids.ravel())

    def build_coreset(
        self, database: Database, query: ConjunctiveQuery
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Build the weighted grid coreset from per-dimension aggregates."""
        factorization = factorize_join(query, database)

        centres_per_dimension: List[List[float]] = []
        for feature in self.features:
            histogram = group_by_sum_over_factorization(factorization, [feature], [])
            values = [float(key[0]) for key in histogram]
            counts = [histogram[key] for key in histogram]
            centres_per_dimension.append(self._dimension_centres(values, counts))

        # Assign every tuple of the join to its nearest grid cell, one dimension
        # at a time, and count the tuples per cell.  The counting is again a
        # group-by aggregate over the factorisation (by the quantised values).
        cell_weights: Dict[Tuple[int, ...], float] = {}
        for row in factorization.tuples():
            assignment = dict(zip(factorization.variables, row))
            cell = tuple(
                int(np.argmin([abs(float(assignment[feature]) - centre) for centre in centres]))
                for feature, centres in zip(self.features, centres_per_dimension)
            )
            cell_weights[cell] = cell_weights.get(cell, 0.0) + 1.0

        points = np.array(
            [
                [centres_per_dimension[dimension][cell[dimension]] for dimension in range(len(self.features))]
                for cell in cell_weights
            ]
        )
        weights = np.array(list(cell_weights.values()))
        self.coreset_points = points
        self.coreset_weights = weights
        return points, weights

    # -- clustering --------------------------------------------------------------------------

    def fit(self, database: Database, query: ConjunctiveQuery) -> KMeansResult:
        points, weights = self.build_coreset(database, query)
        solver = KMeans(self.clusters, max_iterations=self.max_iterations, seed=self.seed)
        self.result = solver.fit(points, weights)
        return self.result

    def coreset_size(self) -> int:
        if self.coreset_points is None:
            return 0
        return int(self.coreset_points.shape[0])
