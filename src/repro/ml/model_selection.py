"""Model selection by reusing one covariance matrix (Section 1.5).

Once the engine has computed the sigma matrix over *all* candidate features,
any ridge model over a subset of them can be trained in milliseconds by
slicing the matrix — no further passes over the data.  This is the paper's
argument that faster training buys better accuracy: many candidate models can
be explored in the time a structure-agnostic pipeline trains one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.aggregates.sparse_tensor import FeatureIndex, SigmaMatrix
from repro.ml.linear_regression import RidgeRegression


@dataclass
class CandidateModel:
    """One trained candidate: its feature subset and in-sample diagnostics."""

    features: Tuple[str, ...]
    model: RidgeRegression
    training_mse: float

    def __lt__(self, other: "CandidateModel") -> bool:  # pragma: no cover - ordering helper
        return self.training_mse < other.training_mse


def _restrict_sigma(sigma: SigmaMatrix, keep_features: Sequence[str], target: str) -> SigmaMatrix:
    """Slice the sigma matrix down to the intercept, target and kept features."""
    keep = set(keep_features) | {target}
    positions: List[int] = [sigma.index.intercept_position()]
    continuous: List[str] = []
    categorical_values: Dict[str, List[object]] = {}
    for feature, value, position in sigma.index.entries():
        if feature == "__intercept__" or feature not in keep:
            continue
        positions.append(position)
        if value is None:
            continuous.append(feature)
        else:
            categorical_values.setdefault(feature, []).append(value)
    index = FeatureIndex(continuous, categorical_values, include_intercept=True)
    matrix = sigma.matrix[np.ix_(positions, positions)]
    return SigmaMatrix(index, matrix)


def training_mse(sigma: SigmaMatrix, model: RidgeRegression, target: str) -> float:
    """In-sample mean squared error computed from the sigma matrix alone.

    MSE = (SUM(y^2) - 2 θᵀc + θᵀ Σ θ) / N, so no pass over the data is needed.
    """
    assert model.parameters is not None and model.parameter_positions is not None
    count = max(sigma.count(), 1.0)
    target_position = sigma.index.position(target)
    sum_squares = sigma.matrix[target_position, target_position]
    correlation = sigma.matrix[model.parameter_positions, target_position]
    gram = sigma.matrix[np.ix_(model.parameter_positions, model.parameter_positions)]
    theta = model.parameters
    value = (sum_squares - 2.0 * float(theta @ correlation) + float(theta @ gram @ theta)) / count
    return max(value, 0.0)


class ModelSelector:
    """Train and rank ridge models over feature subsets of one sigma matrix."""

    def __init__(self, sigma: SigmaMatrix, target: str, regularization: float = 1e-3) -> None:
        self.sigma = sigma
        self.target = target
        self.regularization = regularization
        self.candidates: List[CandidateModel] = []

    def evaluate_subset(self, features: Sequence[str]) -> CandidateModel:
        restricted = _restrict_sigma(self.sigma, features, self.target)
        model = RidgeRegression(self.target, self.regularization).fit_closed_form(restricted)
        candidate = CandidateModel(
            features=tuple(features),
            model=model,
            training_mse=training_mse(restricted, model, self.target),
        )
        self.candidates.append(candidate)
        return candidate

    def search(
        self,
        features: Sequence[str],
        max_subset_size: Optional[int] = None,
        min_subset_size: int = 1,
    ) -> List[CandidateModel]:
        """Exhaustively evaluate all feature subsets within the size bounds."""
        max_size = max_subset_size if max_subset_size is not None else len(features)
        for size in range(min_subset_size, max_size + 1):
            for subset in itertools.combinations(features, size):
                self.evaluate_subset(subset)
        self.candidates.sort(key=lambda candidate: candidate.training_mse)
        return self.candidates

    def best(self) -> CandidateModel:
        if not self.candidates:
            raise RuntimeError("no candidate models have been evaluated")
        return min(self.candidates, key=lambda candidate: candidate.training_mse)
