"""Linear support vector machines via sub-gradient descent (Section 2.3).

The hinge-loss sub-gradient at parameters ``w`` needs, per step, the sums
``SUM(x_i)`` and ``SUM(1)`` restricted to the margin violators — tuples whose
additive inequality ``y * (w · x) < 1`` holds.  Those are exactly the
aggregates with additive inequality conditions of Section 2.3; they are
evaluated here through :mod:`repro.inequality`, which also provides the
better-than-scan algorithm for low dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.database import Database
from repro.factorized.factorize import factorize_join
from repro.inequality.algorithms import AdditiveInequalityEvaluator
from repro.query.conjunctive import ConjunctiveQuery


@dataclass
class SVMTrainingReport:
    iterations: int
    objective_values: List[float]


class LinearSVM:
    """Binary linear SVM with hinge loss, trained by sub-gradient descent."""

    def __init__(
        self,
        target: str,
        features: Sequence[str],
        regularization: float = 1e-2,
        learning_rate: float = 0.05,
        iterations: int = 200,
    ) -> None:
        self.target = target
        self.features = [feature for feature in features if feature != target]
        self.regularization = regularization
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.weights = np.zeros(len(self.features))
        self.bias = 0.0
        self.report: Optional[SVMTrainingReport] = None

    # -- data access ----------------------------------------------------------------------------

    def _design(self, database: Database, query: ConjunctiveQuery) -> Tuple[np.ndarray, np.ndarray]:
        """Feature matrix and ±1 labels streamed out of the factorised join."""
        factorization = factorize_join(query, database)
        variables = factorization.variables
        rows: List[List[float]] = []
        labels: List[float] = []
        for row in factorization.tuples():
            assignment = dict(zip(variables, row))
            rows.append([float(assignment[feature]) for feature in self.features])  # type: ignore[arg-type]
            raw = assignment[self.target]
            labels.append(1.0 if float(raw) > 0 else -1.0)  # type: ignore[arg-type]
        return np.asarray(rows), np.asarray(labels)

    # -- training ---------------------------------------------------------------------------------

    def fit_matrix(self, features: np.ndarray, labels: np.ndarray) -> SVMTrainingReport:
        """Train on an explicit matrix, using the inequality evaluator per step.

        Margin violators satisfy ``y * (w·x + b) < 1``.  With the augmented,
        label-scaled points ``z = y * [x, 1]`` this is the additive inequality
        ``z · [w, b] < 1``, and the sub-gradient needs ``SUM(1)`` and
        ``SUM(y*x)`` (and ``SUM(y)``) restricted to the violators — exactly the
        aggregates with additive inequalities of Section 2.3.
        """
        count = features.shape[0]
        augmented = labels[:, None] * np.hstack([features, np.ones((count, 1))])
        # Value rows: [y*x, y], so one violator sum gives both gradient pieces.
        evaluator = AdditiveInequalityEvaluator(augmented, values=augmented)
        objective_values: List[float] = []

        for iteration in range(1, self.iterations + 1):
            rate = self.learning_rate / np.sqrt(iteration)
            direction = np.concatenate([self.weights, [self.bias]])
            violator_sums = evaluator.sum_below(direction, 1.0, strict=True)
            violator_count = evaluator.count_below(direction, 1.0, strict=True)

            gradient_w = self.regularization * self.weights - violator_sums[:-1] / max(count, 1)
            gradient_b = -violator_sums[-1] / max(count, 1)
            self.weights -= rate * gradient_w
            self.bias -= rate * gradient_b

            margins = labels * (features @ self.weights + self.bias)
            hinge = float(np.maximum(0.0, 1.0 - margins).mean()) if count else 0.0
            objective = 0.5 * self.regularization * float(self.weights @ self.weights) + hinge
            objective_values.append(objective)
            if violator_count == 0:
                break

        self.report = SVMTrainingReport(len(objective_values), objective_values)
        return self.report

    def fit(self, database: Database, query: ConjunctiveQuery) -> SVMTrainingReport:
        features, labels = self._design(database, query)
        return self.fit_matrix(features, labels)

    # -- inference ----------------------------------------------------------------------------------

    def decision_function(self, rows: Sequence[Mapping[str, object]]) -> np.ndarray:
        matrix = np.array(
            [[float(row[feature]) for feature in self.features] for row in rows]  # type: ignore[arg-type]
        )
        return matrix @ self.weights + self.bias

    def predict(self, rows: Sequence[Mapping[str, object]]) -> np.ndarray:
        return np.where(self.decision_function(rows) >= 0.0, 1.0, -1.0)

    def accuracy(self, rows: Sequence[Mapping[str, object]], labels: Sequence[float]) -> float:
        predictions = self.predict(rows)
        truth = np.asarray(labels, dtype=float)
        return float((predictions == truth).mean())
