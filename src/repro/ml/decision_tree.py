"""CART decision trees trained from aggregate batches (Section 2.2).

At every tree node the learner asks the engine for the batch of filtered
variance (regression) or frequency (classification) aggregates of all
candidate splits; the best split is chosen from those statistics alone.  The
node's path condition becomes the filter set of the next batch, so the data
matrix is never materialised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.aggregates.batch import decision_tree_node_batch
from repro.aggregates.spec import Aggregate, AggregateBatch, Filter, FilterOp
from repro.data.database import Database
from repro.engine.lmfao import EngineOptions, LMFAOEngine
from repro.query.conjunctive import ConjunctiveQuery


@dataclass
class TreeNode:
    """A node of a learned decision tree."""

    prediction: float
    count: float
    depth: int
    split_feature: Optional[str] = None
    split_threshold: Optional[float] = None
    split_category: Optional[object] = None
    left: Optional["TreeNode"] = None       # condition true
    right: Optional["TreeNode"] = None      # condition false
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def condition_string(self) -> str:
        if self.split_feature is None:
            return "leaf"
        if self.split_threshold is not None:
            return f"{self.split_feature} >= {self.split_threshold:g}"
        return f"{self.split_feature} == {self.split_category!r}"

    def render(self) -> str:
        lines: List[str] = []

        def visit(node: "TreeNode", indent: int) -> None:
            prefix = "  " * indent
            if node.is_leaf:
                if isinstance(node.prediction, (int, float)):
                    prediction = f"{node.prediction:.4g}"
                else:
                    prediction = repr(node.prediction)  # classification labels
                lines.append(f"{prefix}predict {prediction} (n={node.count:.0f})")
            else:
                lines.append(f"{prefix}if {node.condition_string()}:")
                visit(node.left, indent + 1)  # type: ignore[arg-type]
                lines.append(f"{prefix}else:")
                visit(node.right, indent + 1)  # type: ignore[arg-type]

        visit(self, 0)
        return "\n".join(lines)


@dataclass
class _SplitCandidate:
    feature: str
    threshold: Optional[float]
    category: Optional[object]
    score: float
    left_count: float
    right_count: float
    left_prediction: float
    right_prediction: float


class _TreeLearnerBase:
    """Shared machinery: candidate thresholds and engine plumbing."""

    def __init__(
        self,
        target: str,
        continuous: Sequence[str],
        categorical: Sequence[str] = (),
        max_depth: int = 3,
        min_samples: float = 10.0,
        threshold_count: int = 8,
        options: Optional[EngineOptions] = None,
    ) -> None:
        self.target = target
        self.continuous = [feature for feature in continuous if feature != target]
        self.categorical = list(categorical)
        self.max_depth = max_depth
        self.min_samples = min_samples
        self.threshold_count = threshold_count
        self.options = options
        self.root: Optional[TreeNode] = None
        self.batches_evaluated = 0
        self.aggregates_evaluated = 0

    # -- candidate generation ----------------------------------------------------------------

    def _thresholds(self, database: Database, query: ConjunctiveQuery) -> Dict[str, List[float]]:
        """Equi-spaced thresholds over each feature's active domain."""
        thresholds: Dict[str, List[float]] = {}
        for feature in self.continuous:
            owners = database.relations_with_attribute(feature)
            if not owners:
                continue
            values = sorted(float(value) for value in owners[0].column(feature))
            if not values:
                continue
            low, high = values[0], values[-1]
            if high <= low:
                thresholds[feature] = [low]
                continue
            step = (high - low) / (self.threshold_count + 1)
            thresholds[feature] = [
                round(low + step * position, 6) for position in range(1, self.threshold_count + 1)
            ]
        return thresholds

    def _categories(self, database: Database) -> Dict[str, List[object]]:
        categories: Dict[str, List[object]] = {}
        for feature in self.categorical:
            owners = database.relations_with_attribute(feature)
            if owners:
                categories[feature] = owners[0].active_domain(feature)
        return categories

    def fit(self, database: Database, query: ConjunctiveQuery) -> "TreeNode":
        engine = LMFAOEngine(database, query, self.options)
        thresholds = self._thresholds(database, query)
        categories = self._categories(database)
        self.root = self._grow(engine, (), 0, thresholds, categories)
        return self.root

    # -- node growth (implemented by the subclasses) -------------------------------------------

    def _grow(self, engine, node_filters, depth, thresholds, categories) -> TreeNode:
        raise NotImplementedError

    # -- prediction ----------------------------------------------------------------------------

    def predict_row(self, row: Mapping[str, object]) -> float:
        if self.root is None:
            raise RuntimeError("tree is not trained")
        node = self.root
        while not node.is_leaf:
            if node.split_threshold is not None:
                goes_left = float(row[node.split_feature]) >= node.split_threshold  # type: ignore[arg-type]
            else:
                goes_left = row[node.split_feature] == node.split_category
            node = node.left if goes_left else node.right  # type: ignore[assignment]
        return node.prediction

    def predict(self, rows: Sequence[Mapping[str, object]]) -> List[float]:
        return [self.predict_row(row) for row in rows]


class DecisionTreeRegressor(_TreeLearnerBase):
    """CART regression tree: splits minimise the weighted variance of the target."""

    def _grow(self, engine, node_filters, depth, thresholds, categories) -> TreeNode:
        batch = decision_tree_node_batch(
            self.target,
            self.continuous,
            self.categorical,
            thresholds=thresholds,
            categories=categories,
            node_filters=node_filters,
        )
        result = engine.evaluate(batch)
        self.batches_evaluated += 1
        self.aggregates_evaluated += len(batch)

        node_count = result.scalar("node:count")
        node_sum = result.scalar("node:sum_y")
        node_sum_squares = result.scalar("node:sum_y2")
        prediction = node_sum / node_count if node_count else 0.0
        impurity = self._variance(node_sum_squares, node_sum, node_count)
        node = TreeNode(prediction=prediction, count=node_count, depth=depth, impurity=impurity)

        if depth >= self.max_depth or node_count < self.min_samples:
            return node

        best = self._best_split(result, node_count, node_sum, node_sum_squares, thresholds, categories)
        if best is None or best.score >= impurity * node_count - 1e-12:
            return node

        node.split_feature = best.feature
        node.split_threshold = best.threshold
        node.split_category = best.category
        condition_true, condition_false = self._split_filters(best)
        node.left = self._grow(engine, node_filters + (condition_true,), depth + 1, thresholds, categories)
        node.right = self._grow(engine, node_filters + (condition_false,), depth + 1, thresholds, categories)
        return node

    @staticmethod
    def _variance(sum_squares: float, total: float, count: float) -> float:
        if count <= 0:
            return 0.0
        mean = total / count
        return max(sum_squares / count - mean * mean, 0.0)

    def _split_filters(self, candidate: _SplitCandidate) -> Tuple[Filter, Filter]:
        if candidate.threshold is not None:
            return (
                Filter(candidate.feature, FilterOp.GE, candidate.threshold),
                Filter(candidate.feature, FilterOp.LT, candidate.threshold),
            )
        return (
            Filter(candidate.feature, FilterOp.EQ, candidate.category),
            Filter(candidate.feature, FilterOp.NE, candidate.category),
        )

    def _best_split(
        self,
        result,
        node_count: float,
        node_sum: float,
        node_sum_squares: float,
        thresholds: Mapping[str, Sequence[float]],
        categories: Mapping[str, Sequence[object]],
    ) -> Optional[_SplitCandidate]:
        best: Optional[_SplitCandidate] = None

        def consider(feature, threshold, category, left_stats) -> None:
            nonlocal best
            left_squares, left_sum, left_count = left_stats
            right_count = node_count - left_count
            if left_count < self.min_samples or right_count < self.min_samples:
                return
            right_sum = node_sum - left_sum
            right_squares = node_sum_squares - left_squares
            cost = (
                self._variance(left_squares, left_sum, left_count) * left_count
                + self._variance(right_squares, right_sum, right_count) * right_count
            )
            if best is None or cost < best.score:
                best = _SplitCandidate(
                    feature=feature,
                    threshold=threshold,
                    category=category,
                    score=cost,
                    left_count=left_count,
                    right_count=right_count,
                    left_prediction=left_sum / left_count,
                    right_prediction=right_sum / right_count,
                )

        for feature, feature_thresholds in thresholds.items():
            for threshold in feature_thresholds:
                suffix = f"{feature}>={threshold:g}"
                consider(
                    feature,
                    threshold,
                    None,
                    (
                        result.scalar(f"sum_y2|{suffix}"),
                        result.scalar(f"sum_y|{suffix}"),
                        result.scalar(f"count|{suffix}"),
                    ),
                )
        for feature, feature_categories in categories.items():
            for value in feature_categories:
                suffix = f"{feature}={value}"
                consider(
                    feature,
                    None,
                    value,
                    (
                        result.scalar(f"sum_y2|{suffix}"),
                        result.scalar(f"sum_y|{suffix}"),
                        result.scalar(f"count|{suffix}"),
                    ),
                )
        return best


class DecisionTreeClassifier(_TreeLearnerBase):
    """CART classification tree: splits minimise the weighted Gini index.

    The target must be a categorical attribute; the per-node statistics are
    grouped counts (``SUM(1) GROUP BY target``) under the candidate filters.
    """

    def _class_counts(self, engine, filters) -> Dict[object, float]:
        batch = AggregateBatch(name="class_counts")
        batch.add(Aggregate.count(group_by=[self.target], filters=filters, name="classes"))
        result = engine.evaluate(batch)
        self.batches_evaluated += 1
        self.aggregates_evaluated += 1
        return {key[0]: value for key, value in result.grouped("classes").items()}

    @staticmethod
    def _gini(counts: Mapping[object, float]) -> Tuple[float, float]:
        total = sum(counts.values())
        if total <= 0:
            return 0.0, 0.0
        gini = 1.0 - sum((count / total) ** 2 for count in counts.values())
        return gini, total

    def _grow(self, engine, node_filters, depth, thresholds, categories) -> TreeNode:
        counts = self._class_counts(engine, node_filters)
        gini, total = self._gini(counts)
        majority = max(counts, key=counts.get) if counts else None
        node = TreeNode(prediction=majority, count=total, depth=depth, impurity=gini)  # type: ignore[arg-type]
        if depth >= self.max_depth or total < self.min_samples or gini == 0.0:
            return node

        best_cost = gini * total
        best_condition: Optional[Tuple[str, Optional[float], Optional[object]]] = None
        candidates: List[Tuple[str, Optional[float], Optional[object], Filter, Filter]] = []
        for feature, feature_thresholds in thresholds.items():
            for threshold in feature_thresholds:
                candidates.append(
                    (
                        feature,
                        threshold,
                        None,
                        Filter(feature, FilterOp.GE, threshold),
                        Filter(feature, FilterOp.LT, threshold),
                    )
                )
        for feature, feature_categories in categories.items():
            if feature == self.target:
                continue
            for value in feature_categories:
                candidates.append(
                    (
                        feature,
                        None,
                        value,
                        Filter(feature, FilterOp.EQ, value),
                        Filter(feature, FilterOp.NE, value),
                    )
                )

        for feature, threshold, category, true_filter, false_filter in candidates:
            left_counts = self._class_counts(engine, node_filters + (true_filter,))
            left_gini, left_total = self._gini(left_counts)
            right_total = total - left_total
            if left_total < self.min_samples or right_total < self.min_samples:
                continue
            right_counts = {
                value: counts.get(value, 0.0) - left_counts.get(value, 0.0) for value in counts
            }
            right_gini, _ = self._gini(right_counts)
            cost = left_gini * left_total + right_gini * right_total
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_condition = (feature, threshold, category)

        if best_condition is None:
            return node
        feature, threshold, category = best_condition
        node.split_feature = feature
        node.split_threshold = threshold
        node.split_category = category
        if threshold is not None:
            true_filter = Filter(feature, FilterOp.GE, threshold)
            false_filter = Filter(feature, FilterOp.LT, threshold)
        else:
            true_filter = Filter(feature, FilterOp.EQ, category)
            false_filter = Filter(feature, FilterOp.NE, category)
        node.left = self._grow(engine, node_filters + (true_filter,), depth + 1, thresholds, categories)
        node.right = self._grow(engine, node_filters + (false_filter,), depth + 1, thresholds, categories)
        return node
