"""Ridge linear regression trained from the covariance (sigma) matrix.

Section 2.1 of the paper: for the least-squares loss, the gradient of the
parameter vector is built from the sigma matrix alone,

    ∇J(θ) = (1/N) (Σ θ - c) + λ θ,

where ``Σ`` is the matrix of SUM(x_i * x_j) over the non-target features, and
``c`` the vector of SUM(x_i * y).  Once the engine has computed Σ, training
takes milliseconds regardless of how many tuples the join has, and new models
over feature subsets can be trained from the same Σ (Section 1.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.aggregates.sparse_tensor import FeatureIndex, SigmaMatrix
from repro.data.database import Database
from repro.engine.lmfao import EngineOptions
from repro.ml.statistics import compute_sigma
from repro.query.conjunctive import ConjunctiveQuery


@dataclass
class TrainingTrace:
    """Convergence diagnostics of gradient-descent training."""

    iterations: int = 0
    gradient_norms: List[float] = field(default_factory=list)
    converged: bool = False


class RidgeRegression:
    """Ridge linear regression over the features of a feature-extraction query.

    Parameters
    ----------
    target:
        The response attribute (must be one of the continuous features of the
        sigma matrix).
    regularization:
        The ridge penalty λ (0 gives ordinary least squares).
    """

    def __init__(self, target: str, regularization: float = 1e-3) -> None:
        self.target = target
        self.regularization = regularization
        self.parameters: Optional[np.ndarray] = None
        self.parameter_positions: Optional[List[int]] = None
        self.index: Optional[FeatureIndex] = None
        self.trace = TrainingTrace()

    # -- training -----------------------------------------------------------------------

    def _split_positions(self, sigma: SigmaMatrix) -> Tuple[List[int], int]:
        """Positions of the model parameters and of the target column."""
        target_positions = sigma.index.positions_of_feature(self.target)
        if len(target_positions) != 1:
            raise ValueError(
                f"target {self.target!r} must be a single continuous feature"
            )
        target_position = target_positions[0]
        parameter_positions = [
            position
            for position in range(sigma.dimension)
            if position != target_position
        ]
        return parameter_positions, target_position

    def fit(
        self,
        sigma: SigmaMatrix,
        learning_rate: Optional[float] = None,
        max_iterations: int = 2000,
        tolerance: float = 1e-8,
    ) -> "RidgeRegression":
        """Train by batch gradient descent over the sigma matrix.

        The gradient descent runs in a Jacobi-preconditioned (feature-scaled)
        space — the equivalent of standardising the features, which the paper's
        pipelines also do — so badly scaled raw features do not stall
        convergence.  The returned parameters are in the original feature
        space.
        """
        parameter_positions, target_position = self._split_positions(sigma)
        count = max(sigma.count(), 1.0)
        gram = sigma.matrix[np.ix_(parameter_positions, parameter_positions)] / count
        correlation = sigma.matrix[parameter_positions, target_position] / count

        # Jacobi preconditioning: scale each parameter by the RMS of its feature.
        scales = np.sqrt(np.clip(np.diag(gram), 1e-12, None))
        preconditioned_gram = gram / np.outer(scales, scales)
        preconditioned_correlation = correlation / scales

        if learning_rate is None:
            # 1 / L where L is a cheap upper bound on the largest eigenvalue.
            lipschitz = float(np.linalg.norm(preconditioned_gram, ord=2)) + self.regularization
            learning_rate = 1.0 / max(lipschitz, 1e-12)

        theta = np.zeros(len(parameter_positions))
        trace = TrainingTrace()
        for iteration in range(max_iterations):
            gradient = (
                preconditioned_gram @ theta
                - preconditioned_correlation
                + self.regularization * theta
            )
            theta -= learning_rate * gradient
            norm = float(np.linalg.norm(gradient))
            trace.gradient_norms.append(norm)
            trace.iterations = iteration + 1
            if norm < tolerance:
                trace.converged = True
                break

        self.parameters = theta / scales
        self.parameter_positions = parameter_positions
        self.index = sigma.index
        self.trace = trace
        return self

    def fit_closed_form(self, sigma: SigmaMatrix) -> "RidgeRegression":
        """Solve the normal equations ``(Σ/N + λI) θ = c/N`` directly."""
        parameter_positions, target_position = self._split_positions(sigma)
        count = max(sigma.count(), 1.0)
        gram = sigma.matrix[np.ix_(parameter_positions, parameter_positions)] / count
        correlation = sigma.matrix[parameter_positions, target_position] / count
        regularized = gram + self.regularization * np.eye(len(parameter_positions))
        self.parameters = np.linalg.solve(regularized, correlation)
        self.parameter_positions = parameter_positions
        self.index = sigma.index
        self.trace = TrainingTrace(iterations=0, converged=True)
        return self

    def warm_start_fit(
        self,
        sigma: SigmaMatrix,
        initial_parameters: np.ndarray,
        learning_rate: Optional[float] = None,
        max_iterations: int = 200,
        tolerance: float = 1e-8,
    ) -> "RidgeRegression":
        """Resume gradient descent from existing parameters (model refresh, §1.5)."""
        parameter_positions, target_position = self._split_positions(sigma)
        count = max(sigma.count(), 1.0)
        gram = sigma.matrix[np.ix_(parameter_positions, parameter_positions)] / count
        correlation = sigma.matrix[parameter_positions, target_position] / count

        scales = np.sqrt(np.clip(np.diag(gram), 1e-12, None))
        preconditioned_gram = gram / np.outer(scales, scales)
        preconditioned_correlation = correlation / scales
        if learning_rate is None:
            lipschitz = float(np.linalg.norm(preconditioned_gram, ord=2)) + self.regularization
            learning_rate = 1.0 / max(lipschitz, 1e-12)

        theta = np.asarray(initial_parameters, dtype=float).copy() * scales
        trace = TrainingTrace()
        for iteration in range(max_iterations):
            gradient = (
                preconditioned_gram @ theta
                - preconditioned_correlation
                + self.regularization * theta
            )
            theta -= learning_rate * gradient
            norm = float(np.linalg.norm(gradient))
            trace.gradient_norms.append(norm)
            trace.iterations = iteration + 1
            if norm < tolerance:
                trace.converged = True
                break
        self.parameters = theta / scales
        self.parameter_positions = parameter_positions
        self.index = sigma.index
        self.trace = trace
        return self

    # -- inference -----------------------------------------------------------------------

    def coefficients(self) -> Dict[str, float]:
        """Named coefficients (categorical parameters are named ``feature=value``)."""
        if self.parameters is None or self.index is None or self.parameter_positions is None:
            raise RuntimeError("model is not trained")
        labels = self.index.labels()
        return {
            labels[position]: float(value)
            for position, value in zip(self.parameter_positions, self.parameters)
        }

    def _position_map(self) -> Dict[int, Tuple[str, Optional[object]]]:
        assert self.index is not None
        return {position: (feature, value) for feature, value, position in self.index.entries()}

    def predict_row(self, row: Mapping[str, object]) -> float:
        """Predict the target for one (dictionary) row."""
        if self.parameters is None or self.index is None or self.parameter_positions is None:
            raise RuntimeError("model is not trained")
        cached = getattr(self, "_cached_position_map", None)
        if cached is None or cached[0] is not self.index:
            cached = (self.index, self._position_map())
            self._cached_position_map = cached
        position_map = cached[1]
        prediction = 0.0
        for position, weight in zip(self.parameter_positions, self.parameters):
            feature, value = position_map[position]
            if value is None:
                if feature == "__intercept__":
                    prediction += weight
                else:
                    prediction += weight * float(row[feature])  # type: ignore[arg-type]
            else:
                if row.get(feature) == value:
                    prediction += weight
        return prediction

    def predict(self, rows: Sequence[Mapping[str, object]]) -> np.ndarray:
        return np.array([self.predict_row(row) for row in rows])

    def rmse(self, rows: Sequence[Mapping[str, object]]) -> float:
        """Root-mean-square error of the model on dictionary rows."""
        predictions = self.predict(rows)
        truth = np.array([float(row[self.target]) for row in rows])  # type: ignore[arg-type]
        return float(np.sqrt(np.mean((predictions - truth) ** 2)))


def train_ridge_regression(
    database: Database,
    query: ConjunctiveQuery,
    target: str,
    continuous: Sequence[str],
    categorical: Sequence[str] = (),
    regularization: float = 1e-3,
    closed_form: bool = False,
    options: Optional[EngineOptions] = None,
) -> Tuple[RidgeRegression, SigmaMatrix]:
    """End-to-end structure-aware training: engine batch, then optimiser."""
    if target not in continuous:
        raise ValueError("the target must be listed among the continuous features")
    sigma = compute_sigma(database, query, continuous, categorical, options)
    model = RidgeRegression(target, regularization)
    if closed_form:
        model.fit_closed_form(sigma)
    else:
        model.fit(sigma)
    return model, sigma
