"""Computing sufficient statistics through the engine.

``compute_sigma`` is the structure-aware path of Figure 2: synthesise the
covariance batch, evaluate it with the LMFAO-style engine directly over the
input database, and assemble the sparse results into a :class:`SigmaMatrix`.
``sigma_from_data_matrix`` is the structure-agnostic reference used in tests:
it computes the same matrix from an explicit (one-hot encoded) data matrix.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.aggregates.batch import covariance_batch
from repro.aggregates.sparse_tensor import FeatureIndex, SigmaMatrix, sigma_from_batch_results
from repro.data.database import Database
from repro.engine.lmfao import EngineOptions, LMFAOEngine
from repro.query.conjunctive import ConjunctiveQuery


def compute_sigma(
    database: Database,
    query: ConjunctiveQuery,
    continuous: Sequence[str],
    categorical: Sequence[str] = (),
    options: Optional[EngineOptions] = None,
) -> SigmaMatrix:
    """Compute the sigma matrix of the feature-extraction query via the engine."""
    engine = LMFAOEngine(database, query, options)
    batch = covariance_batch(continuous, categorical)
    result = engine.evaluate(batch)
    return sigma_from_batch_results(result.as_mapping(), continuous, categorical)


def one_hot_rows(
    rows: Sequence[Mapping[str, object]],
    continuous: Sequence[str],
    categorical: Sequence[str],
    index: Optional[FeatureIndex] = None,
) -> Tuple[np.ndarray, FeatureIndex]:
    """One-hot encode dictionary rows into a dense matrix (intercept included).

    This is the structure-agnostic encoding the paper argues against; it is
    used by the baselines and by tests that cross-check the aggregate path.
    """
    if index is None:
        domains: Dict[str, List[object]] = {feature: [] for feature in categorical}
        for row in rows:
            for feature in categorical:
                value = row[feature]
                if value not in domains[feature]:
                    domains[feature].append(value)
        for feature in categorical:
            domains[feature] = sorted(
                domains[feature], key=lambda value: (type(value).__name__, str(value))
            )
        index = FeatureIndex(continuous, domains, include_intercept=True)

    matrix = np.zeros((len(rows), index.size))
    intercept = index.intercept_position()
    for row_position, row in enumerate(rows):
        matrix[row_position, intercept] = 1.0
        for feature in continuous:
            matrix[row_position, index.position(feature)] = float(row[feature])  # type: ignore[arg-type]
        for feature in categorical:
            value = row[feature]
            if index.has(feature, value):
                matrix[row_position, index.position(feature, value)] = 1.0
    return matrix, index


def sigma_from_data_matrix(
    rows: Sequence[Mapping[str, object]],
    continuous: Sequence[str],
    categorical: Sequence[str] = (),
    multiplicities: Optional[Sequence[int]] = None,
) -> SigmaMatrix:
    """Reference sigma matrix computed from an explicit data matrix."""
    matrix, index = one_hot_rows(rows, continuous, categorical)
    if multiplicities is None:
        weights = np.ones(len(rows))
    else:
        weights = np.asarray(multiplicities, dtype=float)
    weighted = matrix * weights[:, None]
    return SigmaMatrix(index, matrix.T @ weighted)
