"""Principal component analysis from the sigma matrix.

PCA needs only the (centred) covariance of the features, which is obtained
from the same sigma matrix the regression models use — no data matrix is ever
materialised (Section 2.1 lists PCA among the models covered by the
sum-product aggregates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.aggregates.sparse_tensor import SigmaMatrix


@dataclass
class PCAResult:
    """Eigen-decomposition of the centred covariance matrix."""

    features: Tuple[str, ...]
    explained_variance: np.ndarray
    components: np.ndarray       # rows are principal directions
    mean: np.ndarray

    def explained_variance_ratio(self) -> np.ndarray:
        total = float(self.explained_variance.sum())
        if total <= 0:
            return np.zeros_like(self.explained_variance)
        return self.explained_variance / total


class PrincipalComponentAnalysis:
    """PCA over the continuous features of a feature-extraction query."""

    def __init__(self, features: Sequence[str], components: Optional[int] = None) -> None:
        self.features = tuple(features)
        self.component_count = components if components is not None else len(self.features)
        self.result: Optional[PCAResult] = None

    def fit(self, sigma: SigmaMatrix) -> PCAResult:
        """Fit from a sigma matrix containing all requested features."""
        positions = [sigma.index.position(feature) for feature in self.features]
        count = max(sigma.count(), 1.0)
        moments = sigma.matrix[np.ix_(positions, positions)] / count
        means = sigma.matrix[positions, sigma.index.intercept_position()] / count
        covariance = moments - np.outer(means, means)

        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1][: self.component_count]
        self.result = PCAResult(
            features=self.features,
            explained_variance=eigenvalues[order],
            components=eigenvectors[:, order].T,
            mean=means,
        )
        return self.result

    def transform(self, rows: Sequence[Mapping[str, object]]) -> np.ndarray:
        """Project dictionary rows onto the principal components."""
        if self.result is None:
            raise RuntimeError("PCA is not fitted")
        matrix = np.array(
            [[float(row[feature]) for feature in self.features] for row in rows]  # type: ignore[arg-type]
        )
        centred = matrix - self.result.mean
        return centred @ self.result.components.T
