"""Degree-2 factorisation machines trained over the factorised join.

The model is ``ŷ = w0 + Σ_i w_i x_i + Σ_{i<j} <v_i, v_j> x_i x_j`` with rank-r
latent factors.  Training streams tuples from the factorised join (the flat
data matrix is never held in memory) and uses stochastic gradient descent on
the squared loss.  This mirrors the F/AC-DC lineage: the aggregates needed by
the closed-form treatment of FMs are the same sparse tensors as for polynomial
regression (Section 2.1); the SGD-over-factorisation variant implemented here
keeps the code short while still avoiding join materialisation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.database import Database
from repro.factorized.factorize import factorize_join
from repro.query.conjunctive import ConjunctiveQuery


@dataclass
class FMTrainingReport:
    epochs: int
    losses: List[float]


class FactorizationMachine:
    """Rank-r degree-2 factorisation machine for regression."""

    def __init__(
        self,
        target: str,
        features: Sequence[str],
        rank: int = 4,
        learning_rate: float = 1e-3,
        regularization: float = 1e-4,
        epochs: int = 5,
        seed: int = 0,
    ) -> None:
        self.target = target
        self.features = [feature for feature in features if feature != target]
        self.rank = rank
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.epochs = epochs
        self.seed = seed

        dimension = len(self.features)
        rng = np.random.default_rng(seed)
        self.bias = 0.0
        self.weights = np.zeros(dimension)
        self.factors = rng.normal(0.0, 0.01, size=(dimension, rank))
        self.report: Optional[FMTrainingReport] = None

    # -- model ---------------------------------------------------------------------------------

    def _vector(self, row: Mapping[str, object]) -> np.ndarray:
        return np.array([float(row[feature]) for feature in self.features])  # type: ignore[arg-type]

    def predict_vector(self, x: np.ndarray) -> float:
        linear = self.bias + float(self.weights @ x)
        projected = self.factors.T @ x                       # (rank,)
        squared = (self.factors ** 2).T @ (x ** 2)           # (rank,)
        interaction = 0.5 * float((projected ** 2 - squared).sum())
        return linear + interaction

    def predict_row(self, row: Mapping[str, object]) -> float:
        return self.predict_vector(self._vector(row))

    def predict(self, rows: Sequence[Mapping[str, object]]) -> np.ndarray:
        return np.array([self.predict_row(row) for row in rows])

    # -- training --------------------------------------------------------------------------------

    def _sgd_step(self, x: np.ndarray, target: float) -> float:
        prediction = self.predict_vector(x)
        error = prediction - target
        rate = self.learning_rate
        regularization = self.regularization

        self.bias -= rate * error
        self.weights -= rate * (error * x + regularization * self.weights)
        projected = self.factors.T @ x
        # dŷ/dV[i,f] = x_i * projected_f - V[i,f] * x_i^2
        gradient = np.outer(x, projected) - self.factors * (x ** 2)[:, None]
        self.factors -= rate * (error * gradient + regularization * self.factors)
        return 0.5 * error * error

    def fit_rows(self, rows: Iterable[Mapping[str, object]]) -> FMTrainingReport:
        """Train on an iterable of dictionary rows (kept for baselines/tests)."""
        materialized = list(rows)
        losses: List[float] = []
        rng = random.Random(self.seed)
        for _epoch in range(self.epochs):
            rng.shuffle(materialized)
            total = 0.0
            for row in materialized:
                total += self._sgd_step(self._vector(row), float(row[self.target]))  # type: ignore[arg-type]
            losses.append(total / max(len(materialized), 1))
        self.report = FMTrainingReport(self.epochs, losses)
        return self.report

    def fit(self, database: Database, query: ConjunctiveQuery) -> FMTrainingReport:
        """Train by streaming tuples out of the factorised join.

        The factorised representation is typically far smaller than the flat
        join; its tuples are enumerated lazily, so the flat data matrix never
        exists in memory.
        """
        factorization = factorize_join(query, database)
        variables = factorization.variables
        losses: List[float] = []
        for _epoch in range(self.epochs):
            total = 0.0
            count = 0
            for row in factorization.tuples():
                assignment = dict(zip(variables, row))
                total += self._sgd_step(
                    self._vector(assignment), float(assignment[self.target])  # type: ignore[arg-type]
                )
                count += 1
            losses.append(total / max(count, 1))
        self.report = FMTrainingReport(self.epochs, losses)
        return self.report

    def rmse(self, rows: Sequence[Mapping[str, object]]) -> float:
        predictions = self.predict(rows)
        truth = np.array([float(row[self.target]) for row in rows])  # type: ignore[arg-type]
        return float(np.sqrt(np.mean((predictions - truth) ** 2)))
