"""Machine learning over relational data, trained from aggregate batches.

Every model in this package consumes sufficient statistics computed by the
LMFAO-style engine (or the factorised join) instead of a materialised data
matrix: ridge linear regression and PCA use the covariance matrix, decision
trees use filtered variance/count batches, k-means uses per-dimension
statistics and grid coresets, SVMs use additive-inequality aggregates, and
Chow–Liu trees use mutual-information batches.
"""

from repro.ml.statistics import compute_sigma, sigma_from_data_matrix
from repro.ml.linear_regression import RidgeRegression, train_ridge_regression
from repro.ml.decision_tree import DecisionTreeRegressor, DecisionTreeClassifier
from repro.ml.pca import PrincipalComponentAnalysis
from repro.ml.kmeans import KMeans, RelationalKMeans
from repro.ml.factorization_machine import FactorizationMachine
from repro.ml.svm import LinearSVM
from repro.ml.chow_liu import ChowLiuTree, mutual_information_matrix
from repro.ml.model_selection import ModelSelector
from repro.ml.fd_reparam import FDReparameterization

__all__ = [
    "compute_sigma",
    "sigma_from_data_matrix",
    "RidgeRegression",
    "train_ridge_regression",
    "DecisionTreeRegressor",
    "DecisionTreeClassifier",
    "PrincipalComponentAnalysis",
    "KMeans",
    "RelationalKMeans",
    "FactorizationMachine",
    "LinearSVM",
    "ChowLiuTree",
    "mutual_information_matrix",
    "ModelSelector",
    "FDReparameterization",
]
