"""Query hypergraphs and the GYO acyclicity test.

The hypergraph of a join query has one vertex per attribute and one hyperedge
per relation.  Alpha-acyclic queries — the common case for feature-extraction
queries, as the paper notes — admit join trees and linear-time aggregate
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple


@dataclass(frozen=True)
class Hypergraph:
    """A named-hyperedge hypergraph: edge name -> frozenset of vertices."""

    edges: Mapping[str, FrozenSet[str]]

    def __init__(self, edges: Mapping[str, Iterable[str]]) -> None:
        object.__setattr__(
            self, "edges", {name: frozenset(vertices) for name, vertices in edges.items()}
        )

    @property
    def vertices(self) -> FrozenSet[str]:
        result: Set[str] = set()
        for vertices in self.edges.values():
            result |= vertices
        return frozenset(result)

    @property
    def edge_names(self) -> Tuple[str, ...]:
        return tuple(self.edges)

    def edge(self, name: str) -> FrozenSet[str]:
        return self.edges[name]

    def edges_containing(self, vertex: str) -> List[str]:
        return [name for name, vertices in self.edges.items() if vertex in vertices]

    def restrict_to_vertices(self, keep: Iterable[str]) -> "Hypergraph":
        """Induced sub-hypergraph on ``keep`` (empty edges are dropped)."""
        keep_set = set(keep)
        restricted = {
            name: vertices & keep_set
            for name, vertices in self.edges.items()
            if vertices & keep_set
        }
        return Hypergraph(restricted)

    def __len__(self) -> int:
        return len(self.edges)


def gyo_reduction(hypergraph: Hypergraph) -> Tuple[Hypergraph, List[Tuple[str, str]]]:
    """Run the GYO (Graham–Yu–Ozsoyoglu) reduction.

    Repeatedly remove "ear" edges: an edge E is an ear if there is a (distinct)
    witness edge W such that every vertex of E is either exclusive to E or
    contained in W.  Returns the residual hypergraph and the elimination order
    as ``(ear, witness)`` pairs.  The query is alpha-acyclic iff the residual
    hypergraph has at most one edge.
    """
    remaining: Dict[str, FrozenSet[str]] = dict(hypergraph.edges)
    elimination: List[Tuple[str, str]] = []

    def vertex_counts() -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for vertices in remaining.values():
            for vertex in vertices:
                counts[vertex] = counts.get(vertex, 0) + 1
        return counts

    changed = True
    while changed and len(remaining) > 1:
        changed = False
        counts = vertex_counts()
        for ear_name in list(remaining):
            ear_vertices = remaining[ear_name]
            shared = {vertex for vertex in ear_vertices if counts.get(vertex, 0) > 1}
            witness_name: Optional[str] = None
            if not shared:
                # Disconnected from the rest: any other edge witnesses it.
                witness_name = next(name for name in remaining if name != ear_name)
            else:
                for candidate_name, candidate_vertices in remaining.items():
                    if candidate_name == ear_name:
                        continue
                    if shared <= candidate_vertices:
                        witness_name = candidate_name
                        break
            if witness_name is not None:
                elimination.append((ear_name, witness_name))
                del remaining[ear_name]
                changed = True
                break

    return Hypergraph(remaining), elimination


def is_acyclic(hypergraph: Hypergraph) -> bool:
    """Whether the hypergraph (query) is alpha-acyclic."""
    residual, _ = gyo_reduction(hypergraph)
    return len(residual) <= 1


def connected_components(hypergraph: Hypergraph) -> List[List[str]]:
    """Connected components of the hypergraph, as lists of edge names."""
    names = list(hypergraph.edges)
    parent = {name: name for name in names}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    def join(left: str, right: str) -> None:
        parent[find(left)] = find(right)

    for index, left in enumerate(names):
        for right in names[index + 1:]:
            if hypergraph.edges[left] & hypergraph.edges[right]:
                join(left, right)

    groups: Dict[str, List[str]] = {}
    for name in names:
        groups.setdefault(find(name), []).append(name)
    return list(groups.values())
