"""Query layer: conjunctive queries, hypergraphs, join trees, variable orders,
and width measures (Section 3.2 of the paper)."""

from repro.query.conjunctive import ConjunctiveQuery
from repro.query.hypergraph import Hypergraph, gyo_reduction, is_acyclic
from repro.query.join_tree import JoinTree, JoinTreeNode, build_join_tree
from repro.query.variable_order import VariableOrder, build_variable_order
from repro.query.widths import (
    fractional_edge_cover_number,
    fractional_hypertree_width,
    factorization_width,
    integral_edge_cover_number,
)
from repro.query.decompositions import HypertreeDecomposition, enumerate_tree_decompositions

__all__ = [
    "ConjunctiveQuery",
    "Hypergraph",
    "gyo_reduction",
    "is_acyclic",
    "JoinTree",
    "JoinTreeNode",
    "build_join_tree",
    "VariableOrder",
    "build_variable_order",
    "fractional_edge_cover_number",
    "fractional_hypertree_width",
    "factorization_width",
    "integral_edge_cover_number",
    "HypertreeDecomposition",
    "enumerate_tree_decompositions",
]
