"""Width measures of queries (Section 3.2).

Implemented measures:

* fractional edge cover number ``rho*`` (AGM bound exponent), via an LP;
* integral edge cover number (its integer relaxation), via brute force;
* fractional hypertree width ``fhtw``: the minimum over tree decompositions of
  the maximum ``rho*`` of a bag;
* factorisation width ``s(Q)``: the minimum over variable orders of the
  maximum ``rho*`` of a node's key-plus-variable set (the non-Boolean
  generalisation of ``fhtw`` that bounds factorised result sizes).

All measures are exact but exponential in the (small) query size, which is fine
for feature-extraction queries over a dozen relations.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.query.hypergraph import Hypergraph
from repro.query.variable_order import VariableOrder


def fractional_edge_cover_number(
    hypergraph: Hypergraph, vertices: Optional[Iterable[str]] = None
) -> float:
    """Minimum total weight of a fractional edge cover of ``vertices``.

    Solves ``min sum_e x_e`` subject to ``sum_{e ∋ v} x_e >= 1`` for every
    vertex ``v`` and ``x_e >= 0``.  With ``vertices=None`` all vertices of the
    hypergraph are covered.  Returns ``0.0`` for an empty vertex set and
    ``inf`` when some vertex is not covered by any edge.
    """
    cover_vertices = list(vertices) if vertices is not None else sorted(hypergraph.vertices)
    if not cover_vertices:
        return 0.0
    edge_names = list(hypergraph.edges)
    if not edge_names:
        return float("inf")

    for vertex in cover_vertices:
        if not any(vertex in hypergraph.edges[name] for name in edge_names):
            return float("inf")

    # linprog minimises c @ x subject to A_ub @ x <= b_ub.
    # Coverage constraints sum_{e ∋ v} x_e >= 1 become -sum <= -1.
    coefficients = np.ones(len(edge_names))
    constraint_matrix = np.zeros((len(cover_vertices), len(edge_names)))
    for row, vertex in enumerate(cover_vertices):
        for column, name in enumerate(edge_names):
            if vertex in hypergraph.edges[name]:
                constraint_matrix[row, column] = -1.0
    bounds = [(0, None)] * len(edge_names)
    result = linprog(
        coefficients,
        A_ub=constraint_matrix,
        b_ub=-np.ones(len(cover_vertices)),
        bounds=bounds,
        method="highs",
    )
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"fractional edge cover LP failed: {result.message}")
    return float(result.fun)


def integral_edge_cover_number(
    hypergraph: Hypergraph, vertices: Optional[Iterable[str]] = None
) -> int:
    """Minimum number of edges covering ``vertices`` (brute force)."""
    cover_vertices = set(vertices) if vertices is not None else set(hypergraph.vertices)
    if not cover_vertices:
        return 0
    edge_names = list(hypergraph.edges)
    for size in range(1, len(edge_names) + 1):
        for subset in itertools.combinations(edge_names, size):
            covered: Set[str] = set()
            for name in subset:
                covered |= hypergraph.edges[name]
            if cover_vertices <= covered:
                return size
    raise ValueError("vertices cannot be covered by the hypergraph edges")


def agm_bound(hypergraph: Hypergraph, relation_sizes: Dict[str, int]) -> float:
    """The AGM bound on the join result size.

    ``prod_e N_e ** x_e`` for the optimal fractional edge cover ``x`` where the
    objective weights are ``log N_e``.  This is the worst-case output size any
    join algorithm must be prepared for (Section 3.2).
    """
    edge_names = list(hypergraph.edges)
    vertices = sorted(hypergraph.vertices)
    if not vertices:
        return 1.0
    log_sizes = np.array(
        [np.log(max(relation_sizes.get(name, 1), 1)) for name in edge_names]
    )
    constraint_matrix = np.zeros((len(vertices), len(edge_names)))
    for row, vertex in enumerate(vertices):
        for column, name in enumerate(edge_names):
            if vertex in hypergraph.edges[name]:
                constraint_matrix[row, column] = -1.0
    result = linprog(
        log_sizes,
        A_ub=constraint_matrix,
        b_ub=-np.ones(len(vertices)),
        bounds=[(0, None)] * len(edge_names),
        method="highs",
    )
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"AGM bound LP failed: {result.message}")
    return float(np.exp(result.fun))


# -- tree decompositions and fhtw -----------------------------------------------------


def _is_valid_tree_decomposition(
    hypergraph: Hypergraph, bags: Sequence[FrozenSet[str]], edges: Sequence[Tuple[int, int]]
) -> bool:
    """Check bag coverage and the running-intersection property."""
    vertices = hypergraph.vertices
    union_of_bags: Set[str] = set()
    for bag in bags:
        union_of_bags |= bag
    if not vertices <= union_of_bags:
        return False
    # Every hyperedge must be contained in some bag.
    for edge_vertices in hypergraph.edges.values():
        if not any(edge_vertices <= bag for bag in bags):
            return False
    # Running intersection: for every vertex, the bags containing it are connected.
    adjacency: Dict[int, Set[int]] = {index: set() for index in range(len(bags))}
    for left, right in edges:
        adjacency[left].add(right)
        adjacency[right].add(left)
    for vertex in vertices:
        members = [index for index, bag in enumerate(bags) if vertex in bag]
        if not members:
            return False
        seen = {members[0]}
        frontier = [members[0]]
        member_set = set(members)
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour in member_set and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        if seen != member_set:
            return False
    return True


def _decompositions_from_orders(hypergraph: Hypergraph):
    """Yield bag lists of tree decompositions obtained by vertex elimination.

    For every permutation of the vertices we run the standard elimination-game
    construction.  Exponential, but queries have few attributes that matter
    (attributes private to one relation can be merged into their relation's
    bag, which we do up front).
    """
    vertices = sorted(hypergraph.vertices)
    join_vertices = [
        vertex for vertex in vertices if len(hypergraph.edges_containing(vertex)) > 1
    ]
    if not join_vertices:
        yield [frozenset(edge) for edge in hypergraph.edges.values()]
        return

    # Primal graph restricted to join vertices.
    neighbours: Dict[str, Set[str]] = {vertex: set() for vertex in join_vertices}
    for edge_vertices in hypergraph.edges.values():
        members = [vertex for vertex in edge_vertices if vertex in neighbours]
        for left in members:
            for right in members:
                if left != right:
                    neighbours[left].add(right)

    seen_bag_sets = set()
    for permutation in itertools.permutations(join_vertices):
        graph = {vertex: set(adjacent) for vertex, adjacent in neighbours.items()}
        bags: List[FrozenSet[str]] = []
        for vertex in permutation:
            bag = frozenset({vertex} | graph[vertex])
            bags.append(bag)
            # Connect the neighbours (fill-in) and remove the vertex.
            for left in graph[vertex]:
                graph[left] |= graph[vertex] - {left, vertex}
                graph[left].discard(vertex)
            del graph[vertex]
        # Each relation contributes a bag of its own attributes (covered by the
        # relation itself, so it never increases the width); the elimination
        # bags above cover the interactions between join attributes.
        full_bags = list(bags)
        for edge_vertices in hypergraph.edges.values():
            full_bags.append(frozenset(edge_vertices))
        key = frozenset(full_bags)
        if key not in seen_bag_sets:
            seen_bag_sets.add(key)
            yield full_bags


def fractional_hypertree_width(hypergraph: Hypergraph, max_permutations: int = 5040) -> float:
    """Exact fractional hypertree width for small queries.

    Minimises, over elimination-order tree decompositions, the maximum
    fractional edge cover number of a bag.  ``max_permutations`` caps the
    search (7! by default) to keep the computation bounded.
    """
    best = float("inf")
    for count, bags in enumerate(_decompositions_from_orders(hypergraph)):
        if count >= max_permutations:
            break
        width = max(fractional_edge_cover_number(hypergraph, bag) for bag in bags)
        best = min(best, width)
    if best == float("inf"):
        # No join vertices at all: width is the max cover of a single edge = 1.
        best = 1.0
    return best


def variable_order_width(order: VariableOrder, hypergraph: Hypergraph) -> float:
    """The width of a specific variable order.

    The width is the maximum, over nodes, of the fractional edge cover number
    of ``{variable} ∪ key`` — the attributes that co-occur in the
    factorisation fragment rooted at the node.
    """
    width = 0.0
    for node in order.nodes():
        cover_set = set(node.key) | {node.variable}
        width = max(width, fractional_edge_cover_number(hypergraph, cover_set))
    return width


def factorization_width(
    hypergraph: Hypergraph, orders: Iterable[VariableOrder]
) -> float:
    """Minimum width over the supplied candidate variable orders.

    The true factorisation width ``s(Q)`` minimises over *all* valid variable
    orders; callers typically pass orders derived from every join-tree rooting
    (sufficient for the acyclic feature-extraction queries used here, where the
    optimum is 1).
    """
    best = float("inf")
    for order in orders:
        best = min(best, variable_order_width(order, hypergraph))
    return best
