"""Join trees for acyclic queries.

A join tree has one node per relation; for every attribute, the nodes whose
relations contain it form a connected subtree (the running-intersection
property).  The LMFAO-style engine decomposes aggregate batches over a join
tree (Section 4, "Sharing computation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.query.hypergraph import Hypergraph, gyo_reduction


class JoinTreeError(ValueError):
    """Raised when no join tree exists (cyclic query) or the tree is malformed."""


@dataclass
class JoinTreeNode:
    """One node of a join tree: a relation and its children."""

    relation_name: str
    attributes: FrozenSet[str]
    children: List["JoinTreeNode"] = field(default_factory=list)
    parent: Optional["JoinTreeNode"] = None

    def add_child(self, child: "JoinTreeNode") -> None:
        child.parent = self
        self.children.append(child)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def subtree_nodes(self) -> List["JoinTreeNode"]:
        """All nodes of the subtree rooted here, in pre-order."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.subtree_nodes())
        return nodes

    def subtree_attributes(self) -> FrozenSet[str]:
        attributes: Set[str] = set(self.attributes)
        for child in self.children:
            attributes |= child.subtree_attributes()
        return frozenset(attributes)

    def connection_attributes(self) -> FrozenSet[str]:
        """Attributes shared with the parent (the node's outgoing join key)."""
        if self.parent is None:
            return frozenset()
        return self.attributes & self.parent.attributes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JoinTreeNode({self.relation_name!r}, children={len(self.children)})"


class JoinTree:
    """A rooted join tree over the relations of an acyclic query."""

    def __init__(self, root: JoinTreeNode) -> None:
        self.root = root
        self._nodes_by_name: Dict[str, JoinTreeNode] = {
            node.relation_name: node for node in root.subtree_nodes()
        }

    # -- accessors --------------------------------------------------------------------

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._nodes_by_name)

    def node(self, relation_name: str) -> JoinTreeNode:
        try:
            return self._nodes_by_name[relation_name]
        except KeyError as exc:
            raise JoinTreeError(
                f"relation {relation_name!r} is not part of this join tree"
            ) from exc

    def nodes(self) -> List[JoinTreeNode]:
        return list(self._nodes_by_name.values())

    def post_order(self) -> List[JoinTreeNode]:
        """Bottom-up order (children before parents)."""
        order: List[JoinTreeNode] = []

        def visit(node: JoinTreeNode) -> None:
            for child in node.children:
                visit(child)
            order.append(node)

        visit(self.root)
        return order

    def attributes(self) -> FrozenSet[str]:
        return self.root.subtree_attributes()

    def path_to_root(self, relation_name: str) -> List[JoinTreeNode]:
        """Nodes from the given relation up to (and including) the root."""
        node: Optional[JoinTreeNode] = self.node(relation_name)
        path = []
        while node is not None:
            path.append(node)
            node = node.parent
        return path

    def depth(self) -> int:
        def node_depth(node: JoinTreeNode) -> int:
            if not node.children:
                return 1
            return 1 + max(node_depth(child) for child in node.children)

        return node_depth(self.root)

    # -- validation -------------------------------------------------------------------

    def satisfies_running_intersection(self) -> bool:
        """Check the defining property: per attribute, its nodes form a subtree."""
        nodes = self.nodes()
        attribute_nodes: Dict[str, List[JoinTreeNode]] = {}
        for node in nodes:
            for attribute in node.attributes:
                attribute_nodes.setdefault(attribute, []).append(node)

        for attribute, members in attribute_nodes.items():
            member_names = {node.relation_name for node in members}
            # The nodes containing the attribute must be connected in the tree:
            # walk from an arbitrary member, moving only through member nodes.
            start = members[0]
            seen = {start.relation_name}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                neighbours = list(node.children)
                if node.parent is not None:
                    neighbours.append(node.parent)
                for neighbour in neighbours:
                    if (
                        neighbour.relation_name in member_names
                        and neighbour.relation_name not in seen
                    ):
                        seen.add(neighbour.relation_name)
                        frontier.append(neighbour)
            if seen != member_names:
                return False
        return True

    def rerooted(self, new_root_name: str) -> "JoinTree":
        """Return a copy of this tree re-rooted at ``new_root_name``."""
        adjacency: Dict[str, Set[str]] = {name: set() for name in self._nodes_by_name}
        for node in self.nodes():
            for child in node.children:
                adjacency[node.relation_name].add(child.relation_name)
                adjacency[child.relation_name].add(node.relation_name)

        if new_root_name not in adjacency:
            raise JoinTreeError(f"unknown relation {new_root_name!r}")

        attributes = {name: node.attributes for name, node in self._nodes_by_name.items()}
        new_nodes = {name: JoinTreeNode(name, attributes[name]) for name in adjacency}
        visited = {new_root_name}
        frontier = [new_root_name]
        while frontier:
            current = frontier.pop()
            for neighbour in sorted(adjacency[current]):
                if neighbour not in visited:
                    visited.add(neighbour)
                    new_nodes[current].add_child(new_nodes[neighbour])
                    frontier.append(neighbour)
        return JoinTree(new_nodes[new_root_name])

    def render(self) -> str:
        """ASCII rendering used in examples and documentation."""
        lines: List[str] = []

        def visit(node: JoinTreeNode, depth: int) -> None:
            prefix = "  " * depth + ("- " if depth else "")
            lines.append(f"{prefix}{node.relation_name} {sorted(node.attributes)}")
            for child in node.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


def build_join_tree(hypergraph: Hypergraph, root: Optional[str] = None) -> JoinTree:
    """Build a join tree for an acyclic hypergraph via the GYO elimination order.

    Each eliminated ear is attached as a child of its witness.  ``root`` forces
    the root relation (the tree is re-rooted after construction if needed).
    Raises :class:`JoinTreeError` for cyclic queries.
    """
    residual, elimination = gyo_reduction(hypergraph)
    if len(residual) > 1:
        raise JoinTreeError(
            "query is cyclic; materialise a hypertree decomposition first "
            f"(residual edges: {sorted(residual.edges)})"
        )

    nodes = {
        name: JoinTreeNode(name, frozenset(vertices))
        for name, vertices in hypergraph.edges.items()
    }
    if not nodes:
        raise JoinTreeError("cannot build a join tree for an empty hypergraph")

    # The surviving edge (or the last witness) is the natural root.
    if residual.edges:
        default_root = next(iter(residual.edges))
    else:
        default_root = elimination[-1][1]

    for ear, witness in reversed(elimination):
        # Attach ears under their witnesses; reversal keeps parents created first.
        nodes[witness].add_child(nodes[ear])

    tree = JoinTree(nodes[default_root])
    if root is not None and root != default_root:
        tree = tree.rerooted(root)
    return tree
