"""Conjunctive (natural-join) queries.

A :class:`ConjunctiveQuery` is the feature-extraction query of Figure 2: a
natural join of a set of relations, optionally restricted to a set of output
(free) variables.  Join conditions are equality of equally named attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data import algebra
from repro.query.hypergraph import Hypergraph


class QueryError(ValueError):
    """Raised when a query references unknown relations or attributes."""


@dataclass
class ConjunctiveQuery:
    """A natural-join query over named relations.

    Parameters
    ----------
    relation_names:
        The relations joined by the query (each name must exist in the database
        the query is evaluated against).
    free_variables:
        The output attributes.  ``None`` means all attributes (a full join).
    name:
        Optional display name.
    """

    relation_names: Tuple[str, ...]
    free_variables: Optional[Tuple[str, ...]] = None
    name: str = "Q"

    def __init__(
        self,
        relation_names: Sequence[str],
        free_variables: Optional[Sequence[str]] = None,
        name: str = "Q",
    ) -> None:
        if not relation_names:
            raise QueryError("a conjunctive query needs at least one relation")
        self.relation_names = tuple(relation_names)
        self.free_variables = tuple(free_variables) if free_variables is not None else None
        self.name = name

    # -- schema-level accessors ---------------------------------------------------

    def relations(self, database: Database) -> List[Relation]:
        return [database.relation(name) for name in self.relation_names]

    def variables(self, database: Database) -> Tuple[str, ...]:
        """All attributes mentioned by the query's relations (first-seen order)."""
        seen: List[str] = []
        for relation in self.relations(database):
            for attribute in relation.schema.names:
                if attribute not in seen:
                    seen.append(attribute)
        return tuple(seen)

    def output_variables(self, database: Database) -> Tuple[str, ...]:
        if self.free_variables is None:
            return self.variables(database)
        all_variables = set(self.variables(database))
        missing = [variable for variable in self.free_variables if variable not in all_variables]
        if missing:
            raise QueryError(f"free variables {missing} do not appear in the query")
        return self.free_variables

    def hypergraph(self, database: Database) -> Hypergraph:
        """The query hypergraph: one hyperedge per relation."""
        edges = {
            name: frozenset(database.relation(name).schema.names)
            for name in self.relation_names
        }
        return Hypergraph(edges)

    def join_attributes(self, database: Database) -> Dict[str, Set[str]]:
        """Map attribute -> set of relations containing it (join attributes have >= 2)."""
        membership: Dict[str, Set[str]] = {}
        for name in self.relation_names:
            for attribute in database.relation(name).schema.names:
                membership.setdefault(attribute, set()).add(name)
        return membership

    # -- evaluation -----------------------------------------------------------------

    def evaluate(self, database: Database) -> Relation:
        """Materialise the query result with a left-deep hash join plan.

        This is the *structure-agnostic* evaluation used by baselines; the
        structure-aware path never materialises this result.
        """
        joined = algebra.natural_join_all(self.relations(database), name=self.name)
        output = self.output_variables(database)
        if set(output) != set(joined.schema.names):
            joined = algebra.project(joined, output, name=self.name)
        return joined

    def result_size(self, database: Database) -> int:
        """Number of distinct tuples in the materialised result."""
        return len(self.evaluate(database))

    def __str__(self) -> str:
        head = ", ".join(self.free_variables) if self.free_variables else "*"
        return f"{self.name}({head}) :- {' ⋈ '.join(self.relation_names)}"
