"""Hypertree decompositions for cyclic queries.

Cyclic feature-extraction queries are handled by partially evaluating them to
an acyclic query: materialise the bags of a hypertree decomposition and join
the bags (footnote 4 of the paper).  This module provides a simple exact
decomposition search for small queries plus the bag-materialisation step.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.data.attribute import Schema
from repro.data.database import Database
from repro.data.relation import Relation
from repro.data import algebra
from repro.query.hypergraph import Hypergraph, is_acyclic
from repro.query.widths import fractional_edge_cover_number


@dataclass
class HypertreeDecomposition:
    """A tree decomposition annotated with edge covers per bag."""

    bags: List[FrozenSet[str]]
    tree_edges: List[Tuple[int, int]]
    covers: List[FrozenSet[str]] = field(default_factory=list)

    @property
    def width(self) -> int:
        """Hypertree width: maximum number of covering edges per bag."""
        if not self.covers:
            return 0
        return max(len(cover) for cover in self.covers)

    def fractional_width(self, hypergraph: Hypergraph) -> float:
        """Maximum fractional edge cover number over the bags."""
        return max(
            (fractional_edge_cover_number(hypergraph, bag) for bag in self.bags),
            default=0.0,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HypertreeDecomposition({len(self.bags)} bags, width={self.width})"
        )


def _minimal_covers(
    hypergraph: Hypergraph, bag: FrozenSet[str]
) -> Optional[FrozenSet[str]]:
    """Smallest set of hyperedges whose union contains ``bag`` (or None)."""
    edge_names = list(hypergraph.edges)
    for size in range(1, len(edge_names) + 1):
        for subset in itertools.combinations(edge_names, size):
            covered: Set[str] = set()
            for name in subset:
                covered |= hypergraph.edges[name]
            if bag <= covered:
                return frozenset(subset)
    return None


def enumerate_tree_decompositions(
    hypergraph: Hypergraph, max_orders: int = 720
) -> Iterable[HypertreeDecomposition]:
    """Enumerate elimination-order tree decompositions (small queries only)."""
    vertices = sorted(hypergraph.vertices)
    count = 0
    for permutation in itertools.permutations(vertices):
        if count >= max_orders:
            return
        count += 1
        neighbours: Dict[str, Set[str]] = {vertex: set() for vertex in vertices}
        for edge_vertices in hypergraph.edges.values():
            for left in edge_vertices:
                for right in edge_vertices:
                    if left != right:
                        neighbours[left].add(right)
        bags: List[FrozenSet[str]] = []
        bag_of_vertex: Dict[str, int] = {}
        for vertex in permutation:
            bag = frozenset({vertex} | neighbours[vertex])
            bag_of_vertex[vertex] = len(bags)
            bags.append(bag)
            for left in neighbours[vertex]:
                neighbours[left] |= neighbours[vertex] - {left, vertex}
                neighbours[left].discard(vertex)
            del neighbours[vertex]
        # Connect each bag to the bag of the earliest-eliminated later neighbour.
        tree_edges: List[Tuple[int, int]] = []
        order_index = {vertex: index for index, vertex in enumerate(permutation)}
        for index, vertex in enumerate(permutation):
            later = [
                other
                for other in bags[index]
                if other != vertex and order_index.get(other, -1) > order_index[vertex]
            ]
            if later:
                anchor = min(later, key=lambda other: order_index[other])
                tree_edges.append((index, bag_of_vertex[anchor]))
        covers = []
        valid = True
        for bag in bags:
            cover = _minimal_covers(hypergraph, bag)
            if cover is None:
                valid = False
                break
            covers.append(cover)
        if valid:
            yield HypertreeDecomposition(bags, tree_edges, covers)


def best_decomposition(hypergraph: Hypergraph, max_orders: int = 720) -> HypertreeDecomposition:
    """The decomposition with the smallest (integral) hypertree width found."""
    best: Optional[HypertreeDecomposition] = None
    for decomposition in enumerate_tree_decompositions(hypergraph, max_orders):
        if best is None or decomposition.width < best.width:
            best = decomposition
    if best is None:
        raise ValueError("no tree decomposition found")
    return best


def materialize_bags(
    database: Database,
    hypergraph: Hypergraph,
    decomposition: HypertreeDecomposition,
    prefix: str = "bag",
) -> Tuple[Database, Hypergraph]:
    """Partially evaluate a cyclic query to an acyclic one.

    Each bag becomes a new relation: the join of its covering relations
    projected onto the bag's attributes.  Returns the new database (bag
    relations only) and the acyclic hypergraph over the bags.
    """
    bag_relations: List[Relation] = []
    edges: Dict[str, FrozenSet[str]] = {}
    for index, (bag, cover) in enumerate(zip(decomposition.bags, decomposition.covers)):
        # Join the covering relations and every relation fully contained in the
        # bag: containment means the original query enforces that relation's
        # constraint inside this bag, so including it preserves equivalence.
        contained = {
            name
            for name, vertices in hypergraph.edges.items()
            if vertices <= bag
        }
        cover_relations = [
            database.relation(name) for name in sorted(set(cover) | contained)
        ]
        joined = algebra.natural_join_all(cover_relations)
        keep = [name for name in joined.schema.names if name in bag]
        bag_relation = algebra.project(joined, keep, name=f"{prefix}{index}")
        bag_relations.append(bag_relation)
        edges[bag_relation.name] = frozenset(keep)
    bag_database = Database(bag_relations, name=f"{database.name}_bags")
    bag_hypergraph = Hypergraph(edges)
    return bag_database, bag_hypergraph
