"""Variable orders for factorised query evaluation (Section 5.1).

A variable order is a rooted forest over the query's attributes.  Each
variable is adorned with its *key*: the subset of its ancestors on which the
variables in its subtree depend.  Branching encodes conditional independence
(days ⟂ items | dish in the paper's example), and the key set encodes caching
opportunities (price depends on item only, so its factorisation fragment can be
cached across dishes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.data.database import Database
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.hypergraph import Hypergraph
from repro.query.join_tree import JoinTree, build_join_tree


class VariableOrderError(ValueError):
    """Raised when a variable order is malformed for a query."""


@dataclass
class VariableOrder:
    """A node of a variable order (the node's variable plus its subtree)."""

    variable: str
    key: FrozenSet[str] = frozenset()
    children: List["VariableOrder"] = field(default_factory=list)
    relations: FrozenSet[str] = frozenset()
    parent: Optional["VariableOrder"] = None

    def add_child(self, child: "VariableOrder") -> None:
        child.parent = self
        self.children.append(child)

    # -- traversal ------------------------------------------------------------------

    def nodes(self) -> List["VariableOrder"]:
        result = [self]
        for child in self.children:
            result.extend(child.nodes())
        return result

    def variables(self) -> List[str]:
        return [node.variable for node in self.nodes()]

    def ancestors(self) -> List[str]:
        chain = []
        node = self.parent
        while node is not None:
            chain.append(node.variable)
            node = node.parent
        return chain

    def find(self, variable: str) -> "VariableOrder":
        for node in self.nodes():
            if node.variable == variable:
                return node
        raise VariableOrderError(f"variable {variable!r} not in this order")

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    # -- validity --------------------------------------------------------------------

    def validate(self, hypergraph: Hypergraph) -> None:
        """Check the defining property of variable orders.

        For every relation (hyperedge), its attributes must lie along a single
        root-to-leaf path of the order.  Additionally every key must be a
        subset of the node's ancestors.
        """
        position: Dict[str, List[str]] = {}
        for node in self.nodes():
            position[node.variable] = node.ancestors() + [node.variable]
            if not node.key <= frozenset(node.ancestors()):
                raise VariableOrderError(
                    f"key of {node.variable!r} ({sorted(node.key)}) is not a subset of its "
                    f"ancestors ({node.ancestors()})"
                )
        ordered_variables = set(position)
        for edge_name, edge_vertices in hypergraph.edges.items():
            missing = edge_vertices - ordered_variables
            if missing:
                raise VariableOrderError(
                    f"variables {sorted(missing)} of relation {edge_name!r} missing from order"
                )
            # All attributes of the relation must be on one root-to-leaf path:
            # equivalently, for the deepest of them, all others are its ancestors.
            deepest = max(edge_vertices, key=lambda variable: len(position[variable]))
            path = set(position[deepest])
            off_path = edge_vertices - path
            if off_path:
                raise VariableOrderError(
                    f"attributes {sorted(off_path)} of relation {edge_name!r} are not on the "
                    f"path of {deepest!r}; not a valid variable order"
                )

    def render(self) -> str:
        lines: List[str] = []

        def visit(node: "VariableOrder", depth: int) -> None:
            prefix = "  " * depth + ("- " if depth else "")
            key = "{" + ",".join(sorted(node.key)) + "}"
            lines.append(f"{prefix}{node.variable} key={key}")
            for child in node.children:
                visit(child, depth + 1)

        visit(self, 0)
        return "\n".join(lines)


def _order_from_join_tree(
    join_tree: JoinTree, hypergraph: Hypergraph
) -> VariableOrder:
    """Derive a variable order by walking a join tree top-down.

    At each join-tree node we append the node's not-yet-placed attributes as a
    chain (join attributes with the parent first), then recurse into children,
    whose chains branch off the last variable of the current chain.
    """
    placed: List[str] = []
    root_holder: List[VariableOrder] = []

    def place_chain(
        attributes: Sequence[str], attach_to: Optional[VariableOrder]
    ) -> Optional[VariableOrder]:
        current = attach_to
        for attribute in attributes:
            node = VariableOrder(variable=attribute)
            if current is None:
                root_holder.append(node)
            else:
                current.add_child(node)
            placed.append(attribute)
            current = node
        return current

    def visit(tree_node, attach_to: Optional[VariableOrder]) -> None:
        new_attributes = [
            attribute
            for attribute in sorted(tree_node.attributes)
            if attribute not in placed
        ]
        # Put attributes shared with children first so children can attach below them.
        child_shared = set()
        for child in tree_node.children:
            child_shared |= set(child.attributes) & set(tree_node.attributes)
        new_attributes.sort(key=lambda attribute: (attribute not in child_shared, attribute))
        last = place_chain(new_attributes, attach_to)
        if last is None:
            last = attach_to
        for child in tree_node.children:
            visit(child, last)

    visit(join_tree.root, None)
    if not root_holder:
        raise VariableOrderError("query has no attributes")
    root = root_holder[0]
    # Chain any additional roots (disconnected queries) under the first root.
    for extra in root_holder[1:]:
        root.add_child(extra)

    _assign_keys(root, hypergraph)
    return root


def _assign_keys(root: VariableOrder, hypergraph: Hypergraph) -> None:
    """Compute the key (dependency set) of every node.

    The key of a variable X is the set of its ancestors that co-occur with a
    variable of X's subtree in some relation — the standard definition from the
    factorised-databases work.
    """
    for node in root.nodes():
        ancestors = set(node.ancestors())
        subtree = set(VariableOrder.variables(node))
        key: Set[str] = set()
        for edge_vertices in hypergraph.edges.values():
            if edge_vertices & subtree:
                key |= edge_vertices & ancestors
        node.key = frozenset(key)
        node.relations = frozenset(
            name
            for name, edge_vertices in hypergraph.edges.items()
            if node.variable in edge_vertices
        )


def build_variable_order(
    query: ConjunctiveQuery,
    database: Database,
    root_relation: Optional[str] = None,
) -> VariableOrder:
    """Build a valid variable order for an acyclic query.

    The order is derived from a join tree of the query; ``root_relation``
    selects which relation anchors the top of the order.
    """
    hypergraph = query.hypergraph(database)
    join_tree = build_join_tree(hypergraph, root=root_relation)
    order = _order_from_join_tree(join_tree, hypergraph)
    order.validate(hypergraph)
    return order


def order_from_nested(spec: Mapping, hypergraph: Hypergraph) -> VariableOrder:
    """Build a variable order from a nested mapping ``{variable: {child: {...}}}``.

    Exactly one root is expected.  Keys are derived from the hypergraph.
    """
    if len(spec) != 1:
        raise VariableOrderError("nested specification must have exactly one root")

    def build(variable: str, children: Mapping) -> VariableOrder:
        node = VariableOrder(variable=variable)
        for child_variable, grandchildren in children.items():
            node.add_child(build(child_variable, grandchildren))
        return node

    root_variable = next(iter(spec))
    root = build(root_variable, spec[root_variable])
    _assign_keys(root, hypergraph)
    root.validate(hypergraph)
    return root
