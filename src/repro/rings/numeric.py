"""Numeric (semi)rings: counting, integers, reals, max-plus."""

from __future__ import annotations

import math
from typing import Any

from repro.rings.base import Ring, Semiring


class CountingSemiring(Semiring):
    """Natural numbers with the usual addition and multiplication.

    Used to evaluate ``SUM(1)`` (COUNT) over a factorised join, as in Figure 9
    (left) of the paper.
    """

    def zero(self) -> int:
        return 0

    def one(self) -> int:
        return 1

    def add(self, left: int, right: int) -> int:
        return left + right

    def multiply(self, left: int, right: int) -> int:
        return left * right


class IntegerRing(Ring):
    """The ring of integers; the home of tuple multiplicities."""

    def zero(self) -> int:
        return 0

    def one(self) -> int:
        return 1

    def add(self, left: int, right: int) -> int:
        return left + right

    def multiply(self, left: int, right: int) -> int:
        return left * right

    def negate(self, element: int) -> int:
        return -element


class RealRing(Ring):
    """Real numbers under + and *; sums of products of continuous features."""

    def __init__(self, tolerance: float = 1e-9) -> None:
        self.tolerance = tolerance

    def zero(self) -> float:
        return 0.0

    def one(self) -> float:
        return 1.0

    def add(self, left: float, right: float) -> float:
        return left + right

    def multiply(self, left: float, right: float) -> float:
        return left * right

    def negate(self, element: float) -> float:
        return -element

    def equal(self, left: float, right: float) -> bool:
        return math.isclose(left, right, rel_tol=self.tolerance, abs_tol=self.tolerance)


class MaxPlusSemiring(Semiring):
    """The tropical (max, +) semiring.

    Included to demonstrate that the same factorised evaluation machinery
    answers optimisation-flavoured aggregates (e.g. the maximum total weight of
    a join result) — the FAQ generalisation mentioned in Section 3.1.
    """

    NEGATIVE_INFINITY = float("-inf")

    def zero(self) -> float:
        return self.NEGATIVE_INFINITY

    def one(self) -> float:
        return 0.0

    def add(self, left: float, right: float) -> float:
        return max(left, right)

    def multiply(self, left: float, right: float) -> float:
        return left + right

    def equal(self, left: float, right: float) -> bool:
        if left == right:
            return True
        return math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-9)
