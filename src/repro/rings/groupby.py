"""A keyed (group-by) semiring.

Elements are finite maps from group-by keys — partial assignments of
categorical attributes — to values in an underlying (semi)ring.  Adding two
maps merges them, adding values of equal keys; multiplying them combines every
pair of keys (assignments of disjoint attribute sets merge) and multiplies the
values.  Evaluating a factorised join in this semiring computes a group-by
aggregate in one pass, which is exactly the paper's sparse-tensor encoding of
one-hot categorical interactions (Section 2.1): only the key combinations that
exist in the data are ever represented.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Mapping, Optional, Tuple

from repro.rings.base import Ring, Semiring
from repro.rings.numeric import RealRing

GroupKey = FrozenSet[Tuple[str, object]]


class GroupByRing(Ring):
    """Maps from group-by keys to values of an inner (semi)ring."""

    def __init__(self, inner: Optional[Semiring] = None) -> None:
        self.inner = inner if inner is not None else RealRing()

    # -- identities -----------------------------------------------------------------------

    def zero(self) -> Dict[GroupKey, Any]:
        return {}

    def one(self) -> Dict[GroupKey, Any]:
        return {frozenset(): self.inner.one()}

    # -- operations ------------------------------------------------------------------------

    def add(self, left: Mapping[GroupKey, Any], right: Mapping[GroupKey, Any]) -> Dict[GroupKey, Any]:
        result: Dict[GroupKey, Any] = dict(left)
        for key, value in right.items():
            if key in result:
                result[key] = self.inner.add(result[key], value)
            else:
                result[key] = value
        return result

    def multiply(self, left: Mapping[GroupKey, Any], right: Mapping[GroupKey, Any]) -> Dict[GroupKey, Any]:
        result: Dict[GroupKey, Any] = {}
        for left_key, left_value in left.items():
            for right_key, right_value in right.items():
                merged_key = left_key | right_key
                product = self.inner.multiply(left_value, right_value)
                if merged_key in result:
                    result[merged_key] = self.inner.add(result[merged_key], product)
                else:
                    result[merged_key] = product
        return result

    def negate(self, element: Mapping[GroupKey, Any]) -> Dict[GroupKey, Any]:
        if not isinstance(self.inner, Ring):
            raise TypeError("inner semiring has no additive inverse")
        return {key: self.inner.negate(value) for key, value in element.items()}

    def equal(self, left: Mapping[GroupKey, Any], right: Mapping[GroupKey, Any]) -> bool:
        # A missing key denotes the inner zero: comparing the union of keys
        # against that default (instead of first *dropping* near-zero entries
        # and matching key sets) keeps values right at the zero tolerance from
        # flipping the comparison when only one side rounds across it.
        zero = self.inner.zero()
        return all(
            self.inner.equal(left.get(key, zero), right.get(key, zero))
            for key in set(left) | set(right)
        )

    # -- lifting ----------------------------------------------------------------------------

    def lift_group(self, attribute: str, value: object) -> Dict[GroupKey, Any]:
        """Lift a categorical value: the singleton map {attribute=value -> 1}."""
        return {frozenset({(attribute, value)}): self.inner.one()}

    def lift_value(self, value: Any) -> Dict[GroupKey, Any]:
        """Lift a numeric contribution with an empty group key."""
        return {frozenset(): value}

    @staticmethod
    def key_as_dict(key: GroupKey) -> Dict[str, object]:
        return dict(key)
