"""Ring and semiring protocol.

A semiring ``(D, +, *, 0, 1)`` supports the factorised evaluation of joins and
aggregates; a ring additionally has additive inverses, which gives the uniform
treatment of inserts and deletes used by the IVM subsystem.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable, List, Sequence, Tuple


class Semiring(abc.ABC):
    """Abstract commutative semiring over elements of some domain."""

    @abc.abstractmethod
    def zero(self) -> Any:
        """Additive identity."""

    @abc.abstractmethod
    def one(self) -> Any:
        """Multiplicative identity."""

    @abc.abstractmethod
    def add(self, left: Any, right: Any) -> Any:
        """Commutative, associative addition."""

    @abc.abstractmethod
    def multiply(self, left: Any, right: Any) -> Any:
        """Associative multiplication distributing over addition."""

    # -- derived helpers -----------------------------------------------------------

    def sum(self, elements: Iterable[Any]) -> Any:
        total = self.zero()
        for element in elements:
            total = self.add(total, element)
        return total

    def product(self, elements: Iterable[Any]) -> Any:
        total = self.one()
        for element in elements:
            total = self.multiply(total, element)
        return total

    def equal(self, left: Any, right: Any) -> bool:
        """Equality of ring elements (overridable for approximate domains)."""
        return left == right

    def scale(self, element: Any, factor: int) -> Any:
        """``element`` added to itself ``factor`` times (factor >= 0)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative for a semiring")
        total = self.zero()
        for _ in range(factor):
            total = self.add(total, element)
        return total


class Ring(Semiring):
    """A semiring with additive inverses."""

    @abc.abstractmethod
    def negate(self, element: Any) -> Any:
        """Additive inverse."""

    def subtract(self, left: Any, right: Any) -> Any:
        return self.add(left, self.negate(right))

    def scale(self, element: Any, factor: int) -> Any:
        """Integer scaling; negative factors use the additive inverse."""
        if factor < 0:
            return self.negate(super().scale(element, -factor))
        return super().scale(element, factor)


def check_semiring_axioms(semiring: Semiring, elements: Sequence[Any]) -> List[str]:
    """Check the semiring axioms on the given sample elements.

    Returns a list of human-readable violations (empty when all axioms hold on
    the sample).  Used by the property-based tests.
    """
    violations: List[str] = []
    zero, one = semiring.zero(), semiring.one()

    def eq(left: Any, right: Any) -> bool:
        return semiring.equal(left, right)

    for a in elements:
        if not eq(semiring.add(zero, a), a) or not eq(semiring.add(a, zero), a):
            violations.append(f"0 is not an additive identity for {a!r}")
        if not eq(semiring.multiply(one, a), a) or not eq(semiring.multiply(a, one), a):
            violations.append(f"1 is not a multiplicative identity for {a!r}")
        if not eq(semiring.multiply(zero, a), zero) or not eq(semiring.multiply(a, zero), zero):
            violations.append(f"0 is not absorbing for {a!r}")

    for a in elements:
        for b in elements:
            if not eq(semiring.add(a, b), semiring.add(b, a)):
                violations.append(f"addition is not commutative on ({a!r}, {b!r})")

    for a in elements:
        for b in elements:
            for c in elements:
                if not eq(
                    semiring.add(semiring.add(a, b), c),
                    semiring.add(a, semiring.add(b, c)),
                ):
                    violations.append(f"addition is not associative on ({a!r}, {b!r}, {c!r})")
                if not eq(
                    semiring.multiply(semiring.multiply(a, b), c),
                    semiring.multiply(a, semiring.multiply(b, c)),
                ):
                    violations.append(
                        f"multiplication is not associative on ({a!r}, {b!r}, {c!r})"
                    )
                if not eq(
                    semiring.multiply(a, semiring.add(b, c)),
                    semiring.add(semiring.multiply(a, b), semiring.multiply(a, c)),
                ):
                    violations.append(f"left distributivity fails on ({a!r}, {b!r}, {c!r})")
                if not eq(
                    semiring.multiply(semiring.add(a, b), c),
                    semiring.add(semiring.multiply(a, c), semiring.multiply(b, c)),
                ):
                    violations.append(f"right distributivity fails on ({a!r}, {b!r}, {c!r})")
    return violations


def check_ring_axioms(ring: Ring, elements: Sequence[Any]) -> List[str]:
    """Check the ring axioms (semiring axioms plus additive inverses)."""
    violations = check_semiring_axioms(ring, elements)
    zero = ring.zero()
    for a in elements:
        negated = ring.negate(a)
        if not ring.equal(ring.add(a, negated), zero) or not ring.equal(
            ring.add(negated, a), zero
        ):
            violations.append(f"additive inverse fails for {a!r}")
    return violations
