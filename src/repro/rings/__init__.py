"""(Semi)ring toolbox (Section 3.1 and 5.2 of the paper).

Rings capture the algebraic structure of relational data processing: relations
are sum-product expressions, aggregates are evaluated by mapping values into a
ring and folding unions with ``+`` and products with ``*``.  The covariance
ring shares computation across the whole covariance-matrix batch.
"""

from repro.rings.base import Ring, Semiring, check_ring_axioms, check_semiring_axioms
from repro.rings.numeric import (
    CountingSemiring,
    IntegerRing,
    MaxPlusSemiring,
    RealRing,
)
from repro.rings.covariance import CovarianceRing, CovariancePayload
from repro.rings.relational import RelationalSemiring
from repro.rings.product import ProductRing
from repro.rings.groupby import GroupByRing

__all__ = [
    "GroupByRing",
    "Ring",
    "Semiring",
    "check_ring_axioms",
    "check_semiring_axioms",
    "CountingSemiring",
    "IntegerRing",
    "RealRing",
    "MaxPlusSemiring",
    "CovarianceRing",
    "CovariancePayload",
    "RelationalSemiring",
    "ProductRing",
]
