"""Product-ring combinator.

The component-wise product of rings is again a ring.  It models evaluating
several independent aggregates in one pass (e.g. a COUNT alongside a SUM),
which is the simplest form of sharing a scan across a batch.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.rings.base import Ring, Semiring


class ProductRing(Ring):
    """Component-wise product of a sequence of (semi)rings.

    Elements are tuples with one component per factor ring.  ``negate`` is only
    available when every factor is a :class:`Ring`.
    """

    def __init__(self, factors: Sequence[Semiring]) -> None:
        if not factors:
            raise ValueError("ProductRing needs at least one factor")
        self.factors: Tuple[Semiring, ...] = tuple(factors)

    def zero(self) -> Tuple[Any, ...]:
        return tuple(factor.zero() for factor in self.factors)

    def one(self) -> Tuple[Any, ...]:
        return tuple(factor.one() for factor in self.factors)

    def add(self, left: Tuple[Any, ...], right: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(
            factor.add(left_value, right_value)
            for factor, left_value, right_value in zip(self.factors, left, right)
        )

    def multiply(self, left: Tuple[Any, ...], right: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(
            factor.multiply(left_value, right_value)
            for factor, left_value, right_value in zip(self.factors, left, right)
        )

    def negate(self, element: Tuple[Any, ...]) -> Tuple[Any, ...]:
        negated = []
        for factor, value in zip(self.factors, element):
            if not isinstance(factor, Ring):
                raise TypeError(
                    f"factor {factor!r} is not a ring; the product has no additive inverse"
                )
            negated.append(factor.negate(value))
        return tuple(negated)

    def equal(self, left: Tuple[Any, ...], right: Tuple[Any, ...]) -> bool:
        return all(
            factor.equal(left_value, right_value)
            for factor, left_value, right_value in zip(self.factors, left, right)
        )
