"""The covariance ring of Section 5.2.

Elements are triples ``(c, s, Q)`` of a scalar count, an n-vector of sums, and
an n x n matrix of sums of products.  The ring operations are

``(c1,s1,Q1) + (c2,s2,Q2) = (c1+c2, s1+s2, Q1+Q2)``
``(c1,s1,Q1) * (c2,s2,Q2) = (c1*c2, c2*s1 + c1*s2,
                             c2*Q1 + c1*Q2 + s1 s2^T + s2 s1^T)``

with ``0 = (0, 0, 0)`` and ``1 = (1, 0, 0)``.  Evaluating a factorised join in
this ring computes SUM(1), SUM(x_i) and SUM(x_i * x_j) for all feature pairs in
a single pass, sharing all partial results across the batch.

Besides the scalar :class:`CovariancePayload`, the module provides
:class:`CovarianceBlock` — a *stack* of ring elements held as three aligned
numpy arrays (``counts (k,)``, ``sums (k, d)``, ``moments (k, d, d)``) with
the ring operations vectorised over the whole stack.  The batched IVM path
(see :mod:`repro.ivm`) represents the payloads of an entire delta relation as
one block, so a batch of updates is added, multiplied and segment-summed
through the view tree without any per-tuple Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.kernels import get_kernels
from repro.rings.base import Ring

#: The stable kernel-dispatch singleton: `set_backend` rebinds its
#: attributes in place, so a module-level binding still sees every switch
#: while the hot loops skip one function call per kernel invocation.
_KERNELS = get_kernels()


@dataclass
class CovariancePayload:
    """One element of the covariance ring: (count, sums, second moments)."""

    count: float
    sums: np.ndarray
    moments: np.ndarray

    @property
    def dimension(self) -> int:
        return int(self.sums.shape[0])

    def copy(self) -> "CovariancePayload":
        return CovariancePayload(self.count, self.sums.copy(), self.moments.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CovariancePayload):
            return NotImplemented
        return (
            np.isclose(self.count, other.count)
            and np.allclose(self.sums, other.sums)
            and np.allclose(self.moments, other.moments)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CovariancePayload(count={self.count!r}, sums={self.sums.tolist()!r}, "
            f"moments=...)"
        )


class CovarianceRing(Ring):
    """Ring over :class:`CovariancePayload` of a fixed feature dimension."""

    def __init__(self, dimension: int) -> None:
        if dimension < 0:
            raise ValueError("dimension must be non-negative")
        self.dimension = dimension

    # -- identities ------------------------------------------------------------------

    def zero(self) -> CovariancePayload:
        return CovariancePayload(
            0.0,
            np.zeros(self.dimension),
            np.zeros((self.dimension, self.dimension)),
        )

    def one(self) -> CovariancePayload:
        return CovariancePayload(
            1.0,
            np.zeros(self.dimension),
            np.zeros((self.dimension, self.dimension)),
        )

    # -- operations --------------------------------------------------------------------

    def add(self, left: CovariancePayload, right: CovariancePayload) -> CovariancePayload:
        return CovariancePayload(
            left.count + right.count,
            left.sums + right.sums,
            left.moments + right.moments,
        )

    def multiply(self, left: CovariancePayload, right: CovariancePayload) -> CovariancePayload:
        outer = np.outer(left.sums, right.sums)
        return CovariancePayload(
            left.count * right.count,
            right.count * left.sums + left.count * right.sums,
            right.count * left.moments
            + left.count * right.moments
            + outer
            + outer.T,
        )

    def negate(self, element: CovariancePayload) -> CovariancePayload:
        return CovariancePayload(-element.count, -element.sums, -element.moments)

    def equal(self, left: CovariancePayload, right: CovariancePayload) -> bool:
        return (
            np.isclose(left.count, right.count)
            and np.allclose(left.sums, right.sums)
            and np.allclose(left.moments, right.moments)
        )

    # -- lifting ------------------------------------------------------------------------

    def lift(self, feature_index: int, value: float) -> CovariancePayload:
        """Lift a single continuous feature value into the ring.

        The lifted element represents one tuple contributing ``value`` to
        feature ``feature_index``: count 1, ``s[feature_index] = value`` and
        ``Q[feature_index, feature_index] = value**2``.
        """
        if not 0 <= feature_index < self.dimension:
            raise IndexError(
                f"feature index {feature_index} out of range for dimension {self.dimension}"
            )
        sums = np.zeros(self.dimension)
        moments = np.zeros((self.dimension, self.dimension))
        sums[feature_index] = value
        moments[feature_index, feature_index] = value * value
        return CovariancePayload(1.0, sums, moments)

    def lift_constant(self) -> CovariancePayload:
        """Lift a value that does not contribute to any feature (count only)."""
        return self.one()

    def from_rows(self, rows: Sequence[Sequence[float]]) -> CovariancePayload:
        """Aggregate an explicit data matrix into a single payload (reference)."""
        total = self.zero()
        for row in rows:
            if len(row) != self.dimension:
                raise ValueError(
                    f"row has {len(row)} features, ring has dimension {self.dimension}"
                )
            vector = np.asarray(row, dtype=float)
            total = self.add(
                total,
                CovariancePayload(1.0, vector.copy(), np.outer(vector, vector)),
            )
        return total


class PayloadScratch:
    """Reusable ``(count, sums, moments)`` buffers for the per-tuple delta kernel.

    The seed's per-tuple F-IVM path built 4-6 :class:`CovariancePayload`
    objects per update (one lift, one scale, one ring product per child),
    each allocating fresh ``d``/``(d, d)`` arrays whose cost is pure
    dispatch overhead at realistic dimensions.  The scratch fuses the whole
    chain — ``scale(lift(row), m) * payload_1 * ... * payload_k`` — into
    in-place updates of one preallocated buffer pair, with support-aware
    fast paths mirroring :meth:`CovarianceBlock.multiply_point` for
    count-only and single-feature operands.  One scratch per maintainer; the
    per-tuple path is single-threaded by construction.
    """

    __slots__ = ("count", "sums", "moments", "_view")

    def __init__(self, dimension: int) -> None:
        self.count = 0.0
        self.sums = np.zeros(dimension)
        self.moments = np.zeros((dimension, dimension))
        self._view: Optional["CovarianceBlock"] = None

    def reset_lift(self, multiplicity: float, pairs) -> None:
        """Load ``scale(lift(row), multiplicity)``; ``pairs`` lists the
        ``(feature position, value)`` entries of the row's designated
        features (all other coordinates are zero)."""
        self.count = multiplicity
        _KERNELS.scratch_reset_lift(self.sums, self.moments, multiplicity, pairs)

    def scale_by(self, factor: float) -> None:
        """Ring product with a count-only payload ``(factor, 0, 0)``."""
        self.count *= factor
        self.sums *= factor
        self.moments *= factor

    def multiply_point(
        self, count: float, sum_at: float, moment_at: float, position: int
    ) -> None:
        """Ring product with a payload supported on a single feature."""
        self.count = _KERNELS.scratch_multiply_point(
            self.count, self.sums, self.moments, count, sum_at, moment_at, position
        )

    def multiply_dense(self, count: float, sums2: np.ndarray, moments2: np.ndarray) -> None:
        """General in-place ring product (operand read-only, may alias storage)."""
        self.count = _KERNELS.scratch_multiply_dense(
            self.count, self.sums, self.moments, count, sums2, moments2
        )

    def block(self) -> "CovarianceBlock":
        """A one-row :class:`CovarianceBlock` copy (the scratch stays reusable)."""
        return CovarianceBlock(
            np.asarray([self.count]),
            self.sums[None, :].copy(),
            self.moments[None, :, :].copy(),
        )

    def block_view(self) -> "CovarianceBlock":
        """A one-row block *aliasing* the scratch buffers — no allocation.

        The preallocated counterpart of :meth:`block` for the per-tuple hot
        path: one persistent view per scratch, its arrays shared with the
        live buffers.  Only valid until the next scratch mutation, and the
        consumer must not write through it — the propagation hop only reads
        its input block (every derived block is freshly gathered), which is
        exactly the contract this fast path relies on.
        """
        view = self._view
        if view is None:
            view = self._view = CovarianceBlock(
                np.empty(1), self.sums[None, :], self.moments[None, :, :]
            )
        view.counts[0] = self.count
        return view


class CovarianceBlock:
    """A stack of ``k`` covariance-ring elements as three aligned arrays.

    ``counts`` has shape ``(k,)``, ``sums`` shape ``(k, d)`` and ``moments``
    shape ``(k, d, d)``.  All ring operations act elementwise over the stack,
    so a whole delta relation's payloads move through one numpy expression
    instead of ``k`` :class:`CovariancePayload` objects.
    """

    __slots__ = ("counts", "sums", "moments")

    def __init__(self, counts: np.ndarray, sums: np.ndarray, moments: np.ndarray) -> None:
        self.counts = counts
        self.sums = sums
        self.moments = moments

    def __len__(self) -> int:
        return int(self.counts.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.sums.shape[1])

    # -- constructors --------------------------------------------------------------------

    @staticmethod
    def zeros(size: int, dimension: int) -> "CovarianceBlock":
        return CovarianceBlock(
            np.zeros(size),
            np.zeros((size, dimension)),
            np.zeros((size, dimension, dimension)),
        )

    @staticmethod
    def ones(size: int, dimension: int) -> "CovarianceBlock":
        return CovarianceBlock(
            np.ones(size),
            np.zeros((size, dimension)),
            np.zeros((size, dimension, dimension)),
        )

    @staticmethod
    def lift(
        features: np.ndarray,
        multiplicities: Optional[np.ndarray] = None,
        positions: Optional[Sequence[int]] = None,
    ) -> "CovarianceBlock":
        """Lift a ``(k, d)`` feature matrix row-wise into the ring.

        Row ``i`` becomes ``multiplicities[i] * (1, features[i],
        features[i] features[i]^T)`` — the payload of one tuple carrying those
        feature values, pre-scaled by its multiplicity.

        ``positions`` (when given) lists the only columns of ``features``
        that are nonzero — one relation's lift touches only its designated
        features — letting the quadratic part fill the few nonzero moment
        entries directly instead of running a dense ``(k, d, d)`` outer
        product.  The dense einsum wins back when the designated set
        approaches the full dimension, or when the stack is tiny and the
        sparse path's ``d_local^2`` small operations cost more than one
        fused outer product.
        """
        features = np.asarray(features, dtype=np.float64)
        dimension = features.shape[1]
        sparse = (
            positions is not None
            and len(positions) * len(positions) <= max(dimension, 1)
            and (len(positions) == 1 or features.shape[0] >= 32)
        )
        if sparse:
            if multiplicities is None:
                return CovarianceBlock(
                    *_KERNELS.lift_sparse_unit(features, positions)
                )
            weights = np.asarray(multiplicities, dtype=np.float64)
            return CovarianceBlock(
                *_KERNELS.lift_sparse(features, weights, positions)
            )
        moments = np.einsum("ki,kj->kij", features, features)
        if multiplicities is None:
            return CovarianceBlock(np.ones(features.shape[0]), features, moments)
        weights = np.asarray(multiplicities, dtype=np.float64)
        return CovarianceBlock(
            weights.copy(),
            features * weights[:, None],
            moments * weights[:, None, None],
        )

    # -- elementwise ring operations -----------------------------------------------------

    def add(self, other: "CovarianceBlock") -> "CovarianceBlock":
        return CovarianceBlock(
            self.counts + other.counts,
            self.sums + other.sums,
            self.moments + other.moments,
        )

    def multiply(self, other: "CovarianceBlock") -> "CovarianceBlock":
        """Elementwise ring product: row ``i`` is ``self[i] * other[i]``."""
        return CovarianceBlock(
            *_KERNELS.multiply_elementwise(
                self.counts,
                self.sums,
                self.moments,
                other.counts,
                other.sums,
                other.moments,
            )
        )

    def multiply_point(
        self,
        counts: np.ndarray,
        sums_at: np.ndarray,
        moments_at: np.ndarray,
        position: int,
    ) -> "CovarianceBlock":
        """Ring product with payloads supported on a *single* feature.

        ``(counts, sums_at, moments_at)`` are the other operand's count
        column, its sums at ``position`` and its moments at ``(position,
        position)`` — all other entries are zero (a view whose subtree
        designates one feature has exactly this shape).  The dense product's
        outer products then collapse to one column/row update with plain
        (basic-index) slicing, and the caller can gather three thin arrays
        instead of a full ``(k, d, d)`` stack.
        """
        return CovarianceBlock(
            *_KERNELS.multiply_point(
                self.counts,
                self.sums,
                self.moments,
                counts,
                sums_at,
                moments_at,
                position,
            )
        )

    def multiply_total(self, other: "CovarianceBlock") -> "CovarianceBlock":
        """``segment-sum-to-one`` of the elementwise product, fused.

        The terminal step of a delta collapsing onto a single connection key
        (the root's empty key) is ``multiply(other).total_block()``; fusing
        the two turns every term of the ring product into a dot-product
        reduction, so no ``(k, d, d)`` intermediate is ever materialised —
        2-4x faster than the materialising pair for the hot hop sizes.
        """
        cross = self.sums.T @ other.sums
        return CovarianceBlock(
            np.asarray([self.counts @ other.counts]),
            (self.sums.T @ other.counts + other.sums.T @ self.counts)[None, :],
            (
                np.einsum("k,kij->ij", other.counts, self.moments)
                + np.einsum("k,kij->ij", self.counts, other.moments)
                + cross
                + cross.T
            )[None, :, :],
        )

    def multiply_point_total(
        self,
        counts: np.ndarray,
        sums_at: np.ndarray,
        moments_at: np.ndarray,
        position: int,
    ) -> "CovarianceBlock":
        """:meth:`multiply_point` fused with :meth:`total_block`.

        Same single-feature-support operand shape as :meth:`multiply_point`,
        reduced to one output row with dot products.
        """
        out_sums = self.sums.T @ counts
        out_sums[position] += self.counts @ sums_at
        out_moments = np.einsum("k,kij->ij", counts, self.moments)
        cross = self.sums.T @ sums_at
        out_moments[:, position] += cross
        out_moments[position, :] += cross
        out_moments[position, position] += self.counts @ moments_at
        return CovarianceBlock(
            np.asarray([self.counts @ counts]),
            out_sums[None, :],
            out_moments[None, :, :],
        )

    def scale_total(self, factors: np.ndarray) -> "CovarianceBlock":
        """:meth:`scale` fused with :meth:`total_block` (count-only operand)."""
        factors = np.asarray(factors, dtype=np.float64)
        return CovarianceBlock(
            np.asarray([self.counts @ factors]),
            (self.sums.T @ factors)[None, :],
            np.einsum("k,kij->ij", factors, self.moments)[None, :, :],
        )

    def multiply_lifted(
        self,
        features: np.ndarray,
        multiplicities: np.ndarray,
        positions: Sequence[int],
    ) -> "CovarianceBlock":
        """Fused ``self[i] * scale(lift(features[i]), multiplicities[i])``.

        ``features`` is ``(k, d)`` but nonzero only in the columns listed in
        ``positions`` — the lift of one relation touches only its designated
        features — so the outer products of the general :meth:`multiply`
        collapse to a handful of row/column updates instead of a full
        ``(k, d, d)`` einsum.
        """
        weights = np.asarray(multiplicities, dtype=np.float64)
        return CovarianceBlock(
            *_KERNELS.multiply_lifted(
                self.counts, self.sums, self.moments, features, weights, positions
            )
        )

    def scale(self, factors: np.ndarray) -> "CovarianceBlock":
        factors = np.asarray(factors, dtype=np.float64)
        return CovarianceBlock(
            self.counts * factors,
            self.sums * factors[:, None],
            self.moments * factors[:, None, None],
        )

    def take(self, indices: np.ndarray) -> "CovarianceBlock":
        """Gather a sub-stack by row indices."""
        return CovarianceBlock(
            self.counts[indices], self.sums[indices], self.moments[indices]
        )

    @staticmethod
    def concatenate(blocks: Sequence["CovarianceBlock"]) -> "CovarianceBlock":
        """Stack several blocks into one (rows in argument order).

        The fused multi-delta pass merges the contributions arriving at a
        join-tree node by concatenating their blocks and segment-summing over
        the combined key coding; keeping the rows in argument order keeps the
        floating-point reduction order deterministic.
        """
        if len(blocks) == 1:
            return blocks[0]
        return CovarianceBlock(
            np.concatenate([block.counts for block in blocks]),
            np.concatenate([block.sums for block in blocks]),
            np.concatenate([block.moments for block in blocks]),
        )

    # -- aggregation ---------------------------------------------------------------------

    def segment_sum(self, codes: np.ndarray, size: int) -> "CovarianceBlock":
        """Sum the stack rows into ``size`` groups given by ``codes``.

        Dispatches to the active :mod:`repro.kernels` backend (numpy:
        stable sort + ``np.add.reduceat``; numba: sequential accumulation
        in stable-sort order).  A single target group (the root's empty
        connection key, the hottest case of the fused delta pass) collapses
        to three plain column sums instead.
        """
        if size == 1:
            return self.total_block()
        return CovarianceBlock(
            *_KERNELS.segment_sum(
                self.counts, self.sums, self.moments, codes, size
            )
        )

    def total_block(self) -> "CovarianceBlock":
        """The ring sum of every row, as a one-row block.

        Equivalent to ``segment_sum(zeros, 1)`` without materialising the
        code array — the shape of every delta collapsing onto a single
        connection key (the root's empty key).
        """
        return CovarianceBlock(
            self.counts.sum(keepdims=True),
            self.sums.sum(axis=0, keepdims=True),
            self.moments.sum(axis=0, keepdims=True),
        )

    def total(self) -> CovariancePayload:
        """The ring sum of every row, as one scalar payload."""
        return CovariancePayload(
            float(self.counts.sum()),
            self.sums.sum(axis=0),
            self.moments.sum(axis=0),
        )

    def payload_at(self, index: int) -> CovariancePayload:
        return CovariancePayload(
            float(self.counts[index]),
            self.sums[index].copy(),
            self.moments[index].copy(),
        )
