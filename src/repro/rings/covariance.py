"""The covariance ring of Section 5.2.

Elements are triples ``(c, s, Q)`` of a scalar count, an n-vector of sums, and
an n x n matrix of sums of products.  The ring operations are

``(c1,s1,Q1) + (c2,s2,Q2) = (c1+c2, s1+s2, Q1+Q2)``
``(c1,s1,Q1) * (c2,s2,Q2) = (c1*c2, c2*s1 + c1*s2,
                             c2*Q1 + c1*Q2 + s1 s2^T + s2 s1^T)``

with ``0 = (0, 0, 0)`` and ``1 = (1, 0, 0)``.  Evaluating a factorised join in
this ring computes SUM(1), SUM(x_i) and SUM(x_i * x_j) for all feature pairs in
a single pass, sharing all partial results across the batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.rings.base import Ring


@dataclass
class CovariancePayload:
    """One element of the covariance ring: (count, sums, second moments)."""

    count: float
    sums: np.ndarray
    moments: np.ndarray

    @property
    def dimension(self) -> int:
        return int(self.sums.shape[0])

    def copy(self) -> "CovariancePayload":
        return CovariancePayload(self.count, self.sums.copy(), self.moments.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CovariancePayload):
            return NotImplemented
        return (
            np.isclose(self.count, other.count)
            and np.allclose(self.sums, other.sums)
            and np.allclose(self.moments, other.moments)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CovariancePayload(count={self.count!r}, sums={self.sums.tolist()!r}, "
            f"moments=...)"
        )


class CovarianceRing(Ring):
    """Ring over :class:`CovariancePayload` of a fixed feature dimension."""

    def __init__(self, dimension: int) -> None:
        if dimension < 0:
            raise ValueError("dimension must be non-negative")
        self.dimension = dimension

    # -- identities ------------------------------------------------------------------

    def zero(self) -> CovariancePayload:
        return CovariancePayload(
            0.0,
            np.zeros(self.dimension),
            np.zeros((self.dimension, self.dimension)),
        )

    def one(self) -> CovariancePayload:
        return CovariancePayload(
            1.0,
            np.zeros(self.dimension),
            np.zeros((self.dimension, self.dimension)),
        )

    # -- operations --------------------------------------------------------------------

    def add(self, left: CovariancePayload, right: CovariancePayload) -> CovariancePayload:
        return CovariancePayload(
            left.count + right.count,
            left.sums + right.sums,
            left.moments + right.moments,
        )

    def multiply(self, left: CovariancePayload, right: CovariancePayload) -> CovariancePayload:
        outer = np.outer(left.sums, right.sums)
        return CovariancePayload(
            left.count * right.count,
            right.count * left.sums + left.count * right.sums,
            right.count * left.moments
            + left.count * right.moments
            + outer
            + outer.T,
        )

    def negate(self, element: CovariancePayload) -> CovariancePayload:
        return CovariancePayload(-element.count, -element.sums, -element.moments)

    def equal(self, left: CovariancePayload, right: CovariancePayload) -> bool:
        return (
            np.isclose(left.count, right.count)
            and np.allclose(left.sums, right.sums)
            and np.allclose(left.moments, right.moments)
        )

    # -- lifting ------------------------------------------------------------------------

    def lift(self, feature_index: int, value: float) -> CovariancePayload:
        """Lift a single continuous feature value into the ring.

        The lifted element represents one tuple contributing ``value`` to
        feature ``feature_index``: count 1, ``s[feature_index] = value`` and
        ``Q[feature_index, feature_index] = value**2``.
        """
        if not 0 <= feature_index < self.dimension:
            raise IndexError(
                f"feature index {feature_index} out of range for dimension {self.dimension}"
            )
        sums = np.zeros(self.dimension)
        moments = np.zeros((self.dimension, self.dimension))
        sums[feature_index] = value
        moments[feature_index, feature_index] = value * value
        return CovariancePayload(1.0, sums, moments)

    def lift_constant(self) -> CovariancePayload:
        """Lift a value that does not contribute to any feature (count only)."""
        return self.one()

    def from_rows(self, rows: Sequence[Sequence[float]]) -> CovariancePayload:
        """Aggregate an explicit data matrix into a single payload (reference)."""
        total = self.zero()
        for row in rows:
            if len(row) != self.dimension:
                raise ValueError(
                    f"row has {len(row)} features, ring has dimension {self.dimension}"
                )
            vector = np.asarray(row, dtype=float)
            total = self.add(
                total,
                CovariancePayload(1.0, vector.copy(), np.outer(vector, vector)),
            )
        return total
