"""The relational semiring of Section 5.1.

Relations (with the same schema) can be added via multiset union and relations
with disjoint schemas can be multiplied via Cartesian product.  A relation is
thus a sum-product expression over singleton relations, which is exactly the
reading that factorised representations exploit.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.data.attribute import Schema
from repro.data.relation import Relation
from repro.data import algebra
from repro.rings.base import Semiring


class RelationalSemiring(Semiring):
    """Semiring whose elements are multiset relations.

    ``zero`` is the empty relation over the empty schema and ``one`` is the
    relation containing the single empty tuple.  Addition requires operands
    with identical schemas (the zero element is compatible with everything),
    multiplication requires disjoint schemas.
    """

    EMPTY_SCHEMA = Schema(())

    def zero(self) -> Relation:
        return Relation("zero", self.EMPTY_SCHEMA)

    def one(self) -> Relation:
        relation = Relation("one", self.EMPTY_SCHEMA)
        relation.add((), 1)
        return relation

    @staticmethod
    def _is_zero(relation: Relation) -> bool:
        return len(relation) == 0

    def add(self, left: Relation, right: Relation) -> Relation:
        # The empty relation acts as a polymorphic additive identity so that
        # semiring folds can start from ``zero()`` regardless of schema.
        if self._is_zero(left):
            return right.copy()
        if self._is_zero(right):
            return left.copy()
        return algebra.union(left, right, name="sum")

    def multiply(self, left: Relation, right: Relation) -> Relation:
        return algebra.cartesian_product(left, right, name="product")

    def equal(self, left: Relation, right: Relation) -> bool:
        if self._is_zero(left) and self._is_zero(right):
            return True
        return left == right

    # -- lifting ---------------------------------------------------------------------

    @staticmethod
    def singleton(attribute: str, value: object, categorical: bool = False) -> Relation:
        """The single-attribute, single-tuple relation ``{(value)}``."""
        schema = Schema.from_names([attribute], [attribute] if categorical else None)
        relation = Relation(f"singleton({attribute})", schema)
        relation.add((value,))
        return relation

    @staticmethod
    def from_tuples(
        attribute_names: Sequence[str], tuples: Sequence[Tuple], name: str = "relation"
    ) -> Relation:
        schema = Schema.from_names(list(attribute_names))
        relation = Relation(name, schema)
        for row in tuples:
            relation.add(row)
        return relation
