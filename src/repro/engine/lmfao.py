"""The LMFAO-style batch engine.

``LMFAOEngine`` evaluates an :class:`~repro.aggregates.spec.AggregateBatch`
over a feature-extraction query without materialising the join:

1. build a join tree of the (acyclic) query;
2. decompose every aggregate into per-node view signatures (aggregate
   pushdown) and deduplicate identical signatures (sharing);
3. evaluate views bottom-up, sharing the scan of each relation across the
   views rooted at it, optionally in parallel across independent nodes;
4. assemble the final aggregate values at the root.

The three optimisation flags — ``specialize``, ``share`` and ``parallel`` —
mirror the ablation of Figure 6; with all of them off the engine behaves like
the AC/DC baseline (plain aggregate pushdown, one aggregate at a time).
"""

from __future__ import annotations

import os
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from collections import OrderedDict

from repro.aggregates.spec import Aggregate, AggregateBatch
from repro.data.database import Database
from repro.engine.executor import (
    STAT_CACHED,
    ColumnarContext,
    ColumnarView,
    View,
    compute_node_views,
)
from repro.engine.plan import BatchPlan, ViewSignature, plan_batch
from repro.engine.naive import evaluate_aggregate_over_rows
from repro.engine.statistics import RootChoice, choose_root, widest_relation
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.join_tree import JoinTree, JoinTreeNode, build_join_tree

AggregateValue = Union[float, Dict[Tuple, float]]


@dataclass
class EngineOptions:
    """Optimisation switches of the engine.

    The first four flags (``specialize``, ``columnar``, ``share``,
    ``parallel``) are the staircase ablated in Figure 6.  The remaining knobs
    control the cost-based planner and the cross-evaluate view cache:

    ``root_relation``
        Force a specific join-tree root (overrides ``root_strategy``).
    ``root_strategy``
        ``"cost"`` (default) scores every candidate root with the
        statistics-based model of :mod:`repro.engine.statistics` and picks
        the cheapest; ``"widest"`` restores the seed heuristic (root at the
        widest, then largest, relation) for ablation.
    ``cache_views``
        Keep computed views alive across :meth:`LMFAOEngine.evaluate` calls,
        keyed by ``(node, signature)`` and guarded by the versions of every
        relation in the node's subtree — an unchanged subtree is never
        recomputed, so repeated identical batches (IVM refresh loops,
        benchmark rounds, gradient-descent steps re-deriving the same
        statistics) skip almost all view work.  Only effective together with
        ``share`` (without sharing the ablation must re-do the work).
    ``view_cache_size``
        Upper bound on cached views per engine; least-recently-used entries
        are evicted beyond it.
    """

    specialize: bool = True     # compiled (columnar or tuple) access vs per-row dict interpretation
    columnar: bool = True       # with specialize: vectorise over the dictionary-encoded column store
    share: bool = True          # share views across aggregates and scans across views
    parallel: bool = False      # evaluate independent join-tree nodes concurrently
    workers: Optional[int] = None   # None: derived from os.cpu_count()
    root_relation: Optional[str] = None
    root_strategy: str = "cost"     # "cost" | "widest"
    cache_views: bool = True
    view_cache_size: int = 512

    def resolved_workers(self) -> int:
        """The thread-pool size: explicit ``workers`` or a cpu-count default."""
        if self.workers:
            return self.workers
        return max(2, min(16, os.cpu_count() or 2))

    @staticmethod
    def baseline() -> "EngineOptions":
        """The AC/DC-like baseline: pushdown only, no further optimisations."""
        return EngineOptions(specialize=False, share=False, parallel=False)


@dataclass
class BatchResult:
    """Results of one batch evaluation plus execution statistics."""

    batch: AggregateBatch
    values: Dict[str, AggregateValue]
    plan_summary: Dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    views_computed: int = 0
    #: How many views each executor path computed (see executor.STAT_* keys);
    #: lets callers assert that e.g. no view fell off the vectorised path.
    executor_stats: Dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> AggregateValue:
        return self.values[name]

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def value_of(self, aggregate: Aggregate) -> AggregateValue:
        return self.values[aggregate.name]

    def scalar(self, name: str) -> float:
        value = self.values[name]
        if isinstance(value, dict):
            raise TypeError(f"aggregate {name!r} is grouped; use grouped() instead")
        return float(value)

    def grouped(self, name: str) -> Dict[Tuple, float]:
        value = self.values[name]
        if not isinstance(value, dict):
            raise TypeError(f"aggregate {name!r} is scalar; use scalar() instead")
        return value

    def as_mapping(self) -> Dict[str, AggregateValue]:
        return dict(self.values)


class LMFAOEngine:
    """Layered multiple functional aggregate optimisation, in Python.

    The engine is built once per (database, query) pair and amortises work
    across :meth:`evaluate` calls through three caches:

    - **columnar contexts** (always on): per-node dictionary encodings, key
      codings, filter masks and cross-store key maps, refreshed lazily when
      the underlying :attr:`Relation.version` changes;
    - **the view cache** (``options.cache_views``): computed views keyed by
      ``(node, signature)`` and guarded by the version of every relation in
      the node's subtree — see :meth:`_evaluate_views`;
    - **the join-tree root** (``options.root_strategy``): chosen once at
      construction, cost-based by default; :attr:`root_choice` records the
      per-candidate estimates for introspection.

    All caches invalidate through :attr:`Relation.version` — any mutation
    (``add``/``remove``/``clear``, including IVM deltas) bumps the counter
    and the affected state is rebuilt on the next evaluation; nothing needs
    to be invalidated eagerly.
    """

    def __init__(
        self,
        database: Database,
        query: ConjunctiveQuery,
        options: Optional[EngineOptions] = None,
    ) -> None:
        self.database = database
        self.query = query
        self.options = options or EngineOptions()
        #: How the root was picked (candidate costs included); None when the
        #: caller forced ``root_relation`` or asked for the widest heuristic.
        self.root_choice: Optional[RootChoice] = None
        self.join_tree = self._build_join_tree()
        # Columnar contexts survive across evaluate() calls: repeated batch
        # evaluations (gradient descent, decision-tree splits, IVM refreshes)
        # reuse the dictionary encodings.  Entries auto-refresh when the
        # underlying relation's version changes.
        self._context_cache: Dict[Tuple, ColumnarContext] = {}
        # The cross-evaluate view cache: (node, signature) -> (the versions
        # of every relation in the node's subtree at computation time, view).
        self._view_cache: "OrderedDict[Tuple[str, ViewSignature], Tuple[Tuple[int, ...], View]]" = (
            OrderedDict()
        )
        # Per node: the sorted relation names of its subtree (fixed once the
        # tree is rooted), used to assemble the cache guard cheaply.
        self._subtree_names: Dict[str, Tuple[str, ...]] = {
            node.relation_name: tuple(
                sorted(child.relation_name for child in node.subtree_nodes())
            )
            for node in self.join_tree.nodes()
        }
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_finalizer: Optional[weakref.finalize] = None

    # -- construction ---------------------------------------------------------------------

    def _build_join_tree(self) -> JoinTree:
        hypergraph = self.query.hypergraph(self.database)
        if self.options.root_strategy not in ("cost", "widest"):
            raise ValueError(
                f"unknown root_strategy {self.options.root_strategy!r}; "
                "expected 'cost' or 'widest'"
            )
        root = self.options.root_relation
        if root is None:
            if self.options.root_strategy == "cost":
                unrooted = build_join_tree(hypergraph)
                self.root_choice = choose_root(self.database, unrooted)
                root = self.root_choice.root
                if root == unrooted.root.relation_name:
                    return unrooted
                return unrooted.rerooted(root)
            root = self._default_root()
        return build_join_tree(hypergraph, root=root)

    def _default_root(self) -> str:
        """The seed heuristic: root at the widest relation (the fact table)."""
        return widest_relation(self.database, self.query.relation_names)

    # -- evaluation ------------------------------------------------------------------------

    def plan(self, batch: AggregateBatch) -> BatchPlan:
        return plan_batch(batch, self.join_tree, share_views=self.options.share)

    def close(self) -> None:
        """Release the worker pool, cached columnar contexts and cached views."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
        self._context_cache.clear()
        self._view_cache.clear()

    def __enter__(self) -> "LMFAOEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.options.resolved_workers())
            # Reclaim the idle worker threads when the engine is collected,
            # even if the caller never invokes close().
            self._pool_finalizer = weakref.finalize(
                self, self._pool.shutdown, wait=False
            )
        return self._pool

    def evaluate(self, batch: AggregateBatch) -> BatchResult:
        """Evaluate all aggregates of ``batch`` and return their values.

        Evaluations are incremental across calls: with ``cache_views`` on,
        views whose subtree relations have not changed since the last call
        are served from the view cache (``executor_stats["views_cached"]``
        counts them), so repeating an identical batch over unchanged data is
        nearly free, and after an update only the root-path above the mutated
        relation is recomputed.
        """
        started = time.perf_counter()
        plan = self.plan(batch)
        stats: Dict[str, int] = {}
        views = self._evaluate_views(plan, stats)

        values: Dict[str, AggregateValue] = {}
        root_name = self.join_tree.root.relation_name
        for decomposition in plan.decompositions:
            aggregate = decomposition.aggregate
            root_view = views[(root_name, decomposition.root_signature)]
            values[self._unique_name(aggregate, values)] = self._extract(aggregate, root_view)

        if plan.unsupported:
            self._evaluate_unsupported(plan.unsupported, values)

        elapsed = time.perf_counter() - started
        return BatchResult(
            batch=batch,
            values=values,
            plan_summary=plan.summary(),
            elapsed_seconds=elapsed,
            views_computed=plan.total_views,
            executor_stats=stats,
        )

    # -- internals ---------------------------------------------------------------------------

    @staticmethod
    def _unique_name(aggregate: Aggregate, existing: Mapping[str, AggregateValue]) -> str:
        name = aggregate.name or "aggregate"
        if name not in existing:
            return name
        suffix = 2
        while f"{name}#{suffix}" in existing:
            suffix += 1
        return f"{name}#{suffix}"

    def _subtree_versions(self, node: JoinTreeNode) -> Tuple[int, ...]:
        """The cache guard: versions of every relation in ``node``'s subtree."""
        return tuple(
            self.database.relation(name).version
            for name in self._subtree_names[node.relation_name]
        )

    def _evaluate_views(
        self, plan: BatchPlan, stats: Optional[Dict[str, int]] = None
    ) -> Dict[Tuple[str, ViewSignature], View]:
        """Evaluate all planned views bottom-up over the join tree.

        With ``cache_views`` (and ``share``) on, each node's signatures are
        first resolved against the cross-evaluate view cache: an entry hits
        when the versions of *all* relations in the node's subtree are
        unchanged since the view was computed — the view's value depends on
        nothing else once the tree and designation are fixed.  Hits are
        served as-is (and count as ``views_cached`` in the stats); only the
        missing signatures reach the executor, and freshly computed views are
        inserted back with LRU eviction beyond ``view_cache_size``.
        """
        views: Dict[Tuple[str, ViewSignature], View] = {}
        levels = self._nodes_by_depth()
        share = self.options.share
        cache = self._view_cache if (self.options.cache_views and share) else None

        def resolve_cached(node: JoinTreeNode) -> Tuple[List[ViewSignature], Tuple[int, ...]]:
            """Serve cache hits for one node; return the signatures left to compute."""
            signatures = plan.views_per_node[node.relation_name]
            if cache is None:
                return list(signatures), ()
            versions = self._subtree_versions(node)
            pending: List[ViewSignature] = []
            hits = 0
            for signature in signatures:
                entry = cache.get((node.relation_name, signature))
                if entry is not None and entry[0] == versions:
                    cache.move_to_end((node.relation_name, signature))
                    views[(node.relation_name, signature)] = entry[1]
                    hits += 1
                else:
                    pending.append(signature)
            if hits and stats is not None:
                stats[STAT_CACHED] = stats.get(STAT_CACHED, 0) + hits
            return pending, versions

        def store_cached(
            node: JoinTreeNode, versions: Tuple[int, ...], computed: Dict[ViewSignature, View]
        ) -> None:
            if cache is None:
                return
            limit = max(int(self.options.view_cache_size), 0)
            for signature, view in computed.items():
                cache[(node.relation_name, signature)] = (versions, view)
                cache.move_to_end((node.relation_name, signature))
            while len(cache) > limit:
                cache.popitem(last=False)

        def run_node(
            node: JoinTreeNode,
            signatures: Sequence[ViewSignature],
            node_stats: Optional[Dict[str, int]],
        ) -> Dict[ViewSignature, View]:
            # Deduplicate for the result dictionary but keep the full list when
            # sharing is off so the (redundant) work is actually performed.
            return compute_node_views(
                node,
                self.database.relation(node.relation_name),
                signatures,
                plan.designation,
                views,
                specialize=self.options.specialize,
                share_scans=share,
                columnar=self.options.columnar,
                context_cache=self._context_cache if share else None,
                stats=node_stats,
            )

        def merge_stats(node_stats: Dict[str, int]) -> None:
            if stats is not None:
                for key, count in node_stats.items():
                    stats[key] = stats.get(key, 0) + count

        for depth in sorted(levels, reverse=True):
            nodes = levels[depth]
            pending: Dict[str, Tuple[List[ViewSignature], Tuple[int, ...]]] = {}
            for node in nodes:
                pending[node.relation_name] = resolve_cached(node)
            runnable = [
                node for node in nodes if pending[node.relation_name][0]
            ]
            if self.options.parallel and len(runnable) > 1:
                # One pool for the whole engine lifetime: constructing and
                # tearing down an executor per tree level costs more than the
                # per-level work it parallelises.
                pool = self._ensure_pool()
                futures = []
                for node in runnable:
                    per_node: Dict[str, int] = {}
                    signatures = pending[node.relation_name][0]
                    futures.append(
                        (pool.submit(run_node, node, signatures, per_node), node, per_node)
                    )
                for future, node, node_stats in futures:
                    computed = future.result()
                    for signature, view in computed.items():
                        views[(node.relation_name, signature)] = view
                    store_cached(node, pending[node.relation_name][1], computed)
                    merge_stats(node_stats)
            else:
                for node in runnable:
                    node_stats: Dict[str, int] = {}
                    signatures = pending[node.relation_name][0]
                    computed = run_node(node, signatures, node_stats)
                    for signature, view in computed.items():
                        views[(node.relation_name, signature)] = view
                    store_cached(node, pending[node.relation_name][1], computed)
                    merge_stats(node_stats)
        return views

    def _nodes_by_depth(self) -> Dict[int, List[JoinTreeNode]]:
        levels: Dict[int, List[JoinTreeNode]] = {}

        def visit(node: JoinTreeNode, depth: int) -> None:
            levels.setdefault(depth, []).append(node)
            for child in node.children:
                visit(child, depth + 1)

        visit(self.join_tree.root, 0)
        return levels

    @staticmethod
    def _extract(aggregate: Aggregate, root_view: View) -> AggregateValue:
        """Turn the root view into the aggregate's scalar or grouped value."""
        items = None
        attrs = None
        if isinstance(root_view, ColumnarView):
            # Read the arrays directly; materialising the nested dict shape
            # for a view that is only unpacked here would be wasted work.
            items = root_view.group_items()
            if items is not None:
                # group_attrs describes the raw (concatenation-order) pairs of
                # group_items; the materialised dict below re-sorts its keys,
                # so the positional fast path only applies to the former.
                attrs = root_view.group_attrs
        if items is None:
            items = root_view.get((), {}).items()
        if not aggregate.group_by:
            for group_pairs, value in items:
                if group_pairs == ():
                    return value
            return 0.0
        result: Dict[Tuple, float] = {}
        if attrs is not None and all(a in attrs for a in aggregate.group_by):
            # Every group key shares one attribute sequence: pick values by
            # position instead of rebuilding an assignment dict per entry.
            positions = [attrs.index(a) for a in aggregate.group_by]
            if len(positions) == 1:
                position = positions[0]
                for group_pairs, value in items:
                    key = (group_pairs[position][1],)
                    result[key] = result.get(key, 0.0) + value
            else:
                for group_pairs, value in items:
                    key = tuple(group_pairs[p][1] for p in positions)
                    result[key] = result.get(key, 0.0) + value
            return result
        for group_pairs, value in items:
            assignment = dict(group_pairs)
            key = tuple(assignment[attribute] for attribute in aggregate.group_by)
            result[key] = result.get(key, 0.0) + value
        return result

    def _evaluate_unsupported(
        self, aggregates: Sequence[Aggregate], values: Dict[str, AggregateValue]
    ) -> None:
        """Fallback for additive-inequality aggregates: evaluate over the join.

        Inequality conditions mix attributes of several relations and cannot be
        pushed past the joins by this engine; Section 2.3's dedicated
        algorithms live in :mod:`repro.inequality`.
        """
        joined = self.query.evaluate(self.database)
        names = joined.schema.names
        rows = [
            (dict(zip(names, row)), multiplicity) for row, multiplicity in joined.items()
        ]
        for aggregate in aggregates:
            values[self._unique_name(aggregate, values)] = evaluate_aggregate_over_rows(
                aggregate, rows
            )
