"""The LMFAO-style batch engine.

``LMFAOEngine`` evaluates an :class:`~repro.aggregates.spec.AggregateBatch`
over a feature-extraction query without materialising the join:

1. build a join tree of the (acyclic) query;
2. decompose every aggregate into per-node view signatures (aggregate
   pushdown) and deduplicate identical signatures (sharing);
3. evaluate views bottom-up, sharing the scan of each relation across the
   views rooted at it, optionally in parallel across independent nodes;
4. assemble the final aggregate values at the root.

The three optimisation flags — ``specialize``, ``share`` and ``parallel`` —
mirror the ablation of Figure 6; with all of them off the engine behaves like
the AC/DC baseline (plain aggregate pushdown, one aggregate at a time).
"""

from __future__ import annotations

import os
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from collections import OrderedDict

import numpy as np

from repro import kernels
from repro.aggregates.spec import Aggregate, AggregateBatch
from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.executor import (
    STAT_CACHED,
    STAT_DELTA_REFRESHED,
    STAT_ROOT_PATCHED,
    ColumnarContext,
    ColumnarView,
    PatchedView,
    View,
    _ChildTable,
    _table_for,
    compute_node_views,
    patch_child_table,
    restrict_signature,
)
from repro.engine.deltas import rows_matching_keys
from repro.engine.plan import BatchPlan, ViewSignature, plan_batch
from repro.engine.naive import evaluate_aggregate_over_rows
from repro.engine.statistics import (
    RootChoice,
    choose_root,
    choose_root_for_batch,
    widest_relation,
)
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.join_tree import JoinTree, JoinTreeNode, build_join_tree

AggregateValue = Union[float, Dict[Tuple, float]]


def _sub_relation_from_mask(relation: Relation, store, mask) -> Relation:
    """The relation restricted to the masked store rows, built in one batch.

    The rows come straight off the (zero-copy) store arrays — distinct by
    construction, so the batched insert takes the pure-append path with a
    single version bump.
    """
    positions = np.nonzero(mask)[0].tolist()
    rows = store.rows
    multiplicities = store.multiplicities
    sub_relation = Relation(relation.name, relation.schema)
    sub_relation.add_batch(
        [rows[position] for position in positions],
        [int(multiplicities[position]) for position in positions],
        validated=True,
    )
    return sub_relation


def _root_delta_items(delta_view: View) -> List[Tuple[Tuple, float]]:
    """The ``(group pairs, value)`` entries of a root delta view.

    Read straight off the arrays when the delta is columnar (no dict
    materialisation for a view consumed exactly once), off the nested dict's
    single empty connection key otherwise.
    """
    if isinstance(delta_view, ColumnarView):
        items = delta_view.group_items()
        if items is not None:
            return items
    return list(delta_view.get((), {}).items())


def _conn_key_hint(view: View) -> int:
    """Roughly how many connection keys a cached view holds (cheap, no
    materialisation) — the group-count estimate the adaptive delta-refresh
    budget is sized from."""
    if isinstance(view, ColumnarView):
        return view.conn_key_count_hint()
    try:
        return len(view)
    except TypeError:
        return 0


def _root_group_hint(view: View) -> int:
    """Roughly how many group entries a cached *root* view holds (cheap, no
    materialisation) — the estimate the adaptive root-patch budget is sized
    from."""
    if isinstance(view, ColumnarView):
        return view.entry_count_hint()
    getter = getattr(view, "get", None)
    if getter is None:
        return 0
    groups = getter((), None)
    return len(groups) if groups is not None else 0


@dataclass
class EngineOptions:
    """Optimisation switches of the engine.

    The first four flags (``specialize``, ``columnar``, ``share``,
    ``parallel``) are the staircase ablated in Figure 6.  The remaining knobs
    control the cost-based planner and the cross-evaluate view cache:

    ``root_relation``
        Force a specific join-tree root (overrides ``root_strategy``).
    ``root_strategy``
        ``"cost"`` (default) scores every candidate root with the
        statistics-based model of :mod:`repro.engine.statistics` and picks
        the cheapest; ``"widest"`` restores the seed heuristic (root at the
        widest, then largest, relation) for ablation.
    ``cache_views``
        Keep computed views alive across :meth:`LMFAOEngine.evaluate` calls,
        keyed by ``(node, signature)`` and guarded by the versions of every
        relation in the node's subtree — an unchanged subtree is never
        recomputed, so repeated identical batches (IVM refresh loops,
        benchmark rounds, gradient-descent steps re-deriving the same
        statistics) skip almost all view work.  Only effective together with
        ``share`` (without sharing the ablation must re-do the work).
    ``view_cache_size``
        Upper bound on cached views per engine; least-recently-used entries
        are evicted beyond it.
    ``delta_refresh``
        With ``cache_views``: instead of recomputing a cached view whose
        subtree saw a *small* update from scratch, recompute only its changed
        key groups (derived from the mutated relation's change log) and
        splice them into the cached view — see
        :meth:`LMFAOEngine._try_delta_refresh`.  Accepts ``True`` (always
        attempt, bounded by the static ``delta_refresh_limit``), ``False``
        (always recompute), or ``"auto"``: the engine decides per view from
        two signals — the touched-group fraction of the netted batch (the
        budget is sized per view, so a batch touching a small fraction of a
        large view's groups delta-refreshes even past the static limit while
        one touching most of a small view recomputes; see
        :meth:`EngineOptions.refresh_budget`) and the *measured* per-view
        costs of the two paths at each node (see
        :meth:`LMFAOEngine._auto_refresh_pays` — nodes whose full recompute
        is observably cheaper than the splice machinery fall back to it).
    ``delta_refresh_limit``
        Delta-refresh only engages while the logged change set and the
        changed-key set stay at or below this size; larger deltas fall back
        to the plain recompute.  Under ``delta_refresh="auto"`` this is the
        budget *floor*, raised for views with many groups.
    ``kernel_backend``
        Which :mod:`repro.kernels` backend the engine activates at
        construction: ``"numpy"``, ``"numba"`` (raises when numba is not
        importable), or ``"auto"`` (the default — keep whatever the
        process-global registry resolved, i.e. the ``REPRO_KERNEL_BACKEND``
        environment variable or numba-if-available).  The registry is
        process-global, so a non-auto setting affects every engine and
        maintainer in the process.
    ``root_patching``
        With ``delta_refresh``: patch stale cached *root* views by
        propagating the logged delta up the join tree as a signed delta view
        and adding it into the cached extraction, instead of recomputing the
        root from scratch — see :meth:`LMFAOEngine._try_patch_root`.
    ``columnar_root_patch``
        How the propagated delta is spliced into a cached columnar root
        view: on (the default) the ``ColumnarView`` arrays are patched in
        place — existing group entries are plain ``sums[code] += delta``
        updates, allocation-free for arbitrarily wide group-bys — and the
        view stays array-native for the extraction; off restores the PR-4
        behaviour of merging into a nested dict (kept as the fallback, and
        still taken when a view cannot be patched in place).
    ``parallel_deltas``
        The GIL-free subtree-parallelism knob of the fused IVM delta pass
        (see :class:`repro.ivm.fivm.FIVM` and
        :class:`repro.engine.executor.SubtreeScheduler`).  Carried here so
        one options object configures an engine and the maintainers built
        alongside it (the benchmark harnesses forward it); the engine's own
        node-level parallelism stays under ``parallel``.
    """

    specialize: bool = True     # compiled (columnar or tuple) access vs per-row dict interpretation
    columnar: bool = True       # with specialize: vectorise over the dictionary-encoded column store
    share: bool = True          # share views across aggregates and scans across views
    parallel: bool = False      # evaluate independent join-tree nodes concurrently
    workers: Optional[int] = None   # None: derived from os.cpu_count()
    root_relation: Optional[str] = None
    root_strategy: str = "cost"     # "cost" | "widest" | "cost-batch"
    cache_views: bool = True
    view_cache_size: int = 512
    delta_refresh: "Union[bool, str]" = True   # True | False | "auto"
    delta_refresh_limit: int = 64
    root_patching: bool = True
    columnar_root_patch: bool = True
    parallel_deltas: bool = False
    kernel_backend: str = "auto"    # "auto" | "numpy" | "numba"

    def __post_init__(self) -> None:
        if self.delta_refresh not in (True, False, "auto"):
            raise ValueError(
                f"delta_refresh must be True, False or 'auto', "
                f"got {self.delta_refresh!r}"
            )
        if self.kernel_backend not in ("auto", "numpy", "numba"):
            # Spelling check only; whether "numba" is actually importable is
            # set_backend's call (RuntimeError at engine construction).
            raise ValueError(
                f"unknown kernel_backend {self.kernel_backend!r}; "
                "expected 'auto', 'numpy' or 'numba'"
            )

    def refresh_budget(self, group_hint: int = 0) -> int:
        """The changed-key budget delta refresh may spend on one view.

        Static modes return ``delta_refresh_limit`` unchanged.  Under
        ``"auto"`` the budget scales with the view: up to a quarter of its
        groups (``group_hint``) may be refreshed before a full recompute is
        judged cheaper, with the static limit as the floor — so small views
        keep the proven static behaviour while large views stop bailing out
        on deltas that touch a tiny fraction of their groups.
        """
        limit = int(self.delta_refresh_limit)
        if self.delta_refresh == "auto":
            return max(limit, int(group_hint) // 4)
        return limit

    def resolved_workers(self) -> int:
        """The thread-pool size: explicit ``workers`` or a cpu-count default."""
        if self.workers:
            return self.workers
        return max(2, min(16, os.cpu_count() or 2))

    @staticmethod
    def baseline() -> "EngineOptions":
        """The AC/DC-like baseline: pushdown only, no further optimisations."""
        return EngineOptions(specialize=False, share=False, parallel=False)


@dataclass
class BatchResult:
    """Results of one batch evaluation plus execution statistics."""

    batch: AggregateBatch
    values: Dict[str, AggregateValue]
    plan_summary: Dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    views_computed: int = 0
    #: How many views each executor path computed (see executor.STAT_* keys);
    #: lets callers assert that e.g. no view fell off the vectorised path.
    executor_stats: Dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> AggregateValue:
        return self.values[name]

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def value_of(self, aggregate: Aggregate) -> AggregateValue:
        return self.values[aggregate.name]

    def scalar(self, name: str) -> float:
        value = self.values[name]
        if isinstance(value, dict):
            raise TypeError(f"aggregate {name!r} is grouped; use grouped() instead")
        return float(value)

    def grouped(self, name: str) -> Dict[Tuple, float]:
        value = self.values[name]
        if not isinstance(value, dict):
            raise TypeError(f"aggregate {name!r} is scalar; use scalar() instead")
        return value

    def as_mapping(self) -> Dict[str, AggregateValue]:
        return dict(self.values)


class LMFAOEngine:
    """Layered multiple functional aggregate optimisation, in Python.

    The engine is built once per (database, query) pair and amortises work
    across :meth:`evaluate` calls through three caches:

    - **columnar contexts** (always on): per-node dictionary encodings, key
      codings, filter masks and cross-store key maps, refreshed lazily when
      the underlying :attr:`Relation.version` changes;
    - **the view cache** (``options.cache_views``): computed views keyed by
      ``(node, signature)`` and guarded by the version of every relation in
      the node's subtree — see :meth:`_evaluate_views`;
    - **the join-tree root** (``options.root_strategy``): chosen once at
      construction, cost-based by default; :attr:`root_choice` records the
      per-candidate estimates for introspection.

    All caches invalidate through :attr:`Relation.version` — any mutation
    (``add``/``remove``/``clear``, including IVM deltas) bumps the counter
    and the affected state is rebuilt on the next evaluation; nothing needs
    to be invalidated eagerly.
    """

    def __init__(
        self,
        database: Database,
        query: ConjunctiveQuery,
        options: Optional[EngineOptions] = None,
    ) -> None:
        self.database = database
        self.query = query
        self.options = options or EngineOptions()
        if self.options.kernel_backend != "auto":
            # "auto" deliberately leaves the process-global registry alone —
            # the import-time resolution (env var / autodetect) stands, and
            # default-options engines never undo an explicit set_backend().
            kernels.set_backend(self.options.kernel_backend)
        #: How the root was picked (candidate costs included); None when the
        #: caller forced ``root_relation`` or asked for the widest heuristic.
        self.root_choice: Optional[RootChoice] = None
        self.join_tree = self._build_join_tree()
        # Columnar contexts survive across evaluate() calls: repeated batch
        # evaluations (gradient descent, decision-tree splits, IVM refreshes)
        # reuse the dictionary encodings.  Entries auto-refresh when the
        # underlying relation's version changes.
        self._context_cache: Dict[Tuple, ColumnarContext] = {}
        # The cross-evaluate view cache: (node, signature) -> (the versions
        # of every relation in the node's subtree at computation time, view).
        self._view_cache: "OrderedDict[Tuple[str, ViewSignature], Tuple[Tuple[int, ...], View]]" = (
            OrderedDict()
        )
        # Per node: the sorted relation names of its subtree (fixed once the
        # tree is rooted), used to assemble the cache guard cheaply.
        self._subtree_names: Dict[str, Tuple[str, ...]] = {
            node.relation_name: tuple(
                sorted(child.relation_name for child in node.subtree_nodes())
            )
            for node in self.join_tree.nodes()
        }
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_finalizer: Optional[weakref.finalize] = None
        # Memoised cost-batch rooting decisions, keyed by the batch's shape
        # (see _batch_root_key); chosen against the statistics at first sight.
        # Unhashable batch shapes are memoised by object identity instead (a
        # strong reference rides along so the id cannot be recycled).
        self._batch_roots: Dict[Tuple, str] = {}
        self._batch_roots_by_id: Dict[int, Tuple[AggregateBatch, str]] = {}
        # Observed per-view costs (EWMA seconds), per node: what a full
        # recompute of one of the node's views costs vs what refreshing one
        # through the delta paths costs.  The delta_refresh="auto" policy
        # consults these before attempting a refresh — the touched-group
        # fraction bounds how much splicing is worth *trying*, but only a
        # measured comparison can tell whether this node's recompute is so
        # cheap that the refresh machinery loses outright (the PR-5
        # crossover observation).
        self._recompute_cost: Dict[str, float] = {}
        self._refresh_cost: Dict[str, float] = {}
        # Parked per-root state for cost-batch rerooting: alternating batch
        # shapes with different best roots swap their trees, subtree names
        # and view caches instead of recomputing them from scratch.
        self._root_state: Dict[str, Tuple[JoinTree, Dict[str, Tuple[str, ...]],
                                          "OrderedDict[Tuple[str, ViewSignature], Tuple[Tuple[int, ...], View]]"]] = {}

    # -- construction ---------------------------------------------------------------------

    def _build_join_tree(self) -> JoinTree:
        hypergraph = self.query.hypergraph(self.database)
        if self.options.root_strategy not in ("cost", "widest", "cost-batch"):
            raise ValueError(
                f"unknown root_strategy {self.options.root_strategy!r}; "
                "expected 'cost', 'widest' or 'cost-batch'"
            )
        root = self.options.root_relation
        if root is None:
            if self.options.root_strategy in ("cost", "cost-batch"):
                # cost-batch starts from the batch-independent choice and
                # re-roots per batch on evaluate (see _reroot_for_batch).
                unrooted = build_join_tree(hypergraph)
                self.root_choice = choose_root(self.database, unrooted)
                root = self.root_choice.root
                if root == unrooted.root.relation_name:
                    return unrooted
                return unrooted.rerooted(root)
            root = self._default_root()
        return build_join_tree(hypergraph, root=root)

    def _default_root(self) -> str:
        """The seed heuristic: root at the widest relation (the fact table)."""
        return widest_relation(self.database, self.query.relation_names)

    def rebind_database(self, database: Database) -> None:
        """Point the engine at another database with the same query schema.

        The serving layer evaluates each read against a pinned snapshot
        database; per-reader engines are reused across reads by rebinding
        instead of being rebuilt.  Every cache stays in place and keeps
        being correct through its existing guards: columnar contexts are
        keyed by store identity, and cached views are guarded by the
        subtree's relation versions — a relation whose version is unchanged
        across generations is bitwise unchanged (every mutation bumps the
        counter), so a cache hit from an earlier generation is exact.

        The new database must serve the same relation names with the same
        attribute names; the join tree is schema-derived and is kept as-is.
        """
        if database is self.database:
            return
        for name in self.query.relation_names:
            if name not in database:
                raise ValueError(f"rebind target lacks relation {name!r}")
            if database.relation(name).schema.names != self.database.relation(name).schema.names:
                raise ValueError(
                    f"rebind target changes the schema of relation {name!r}"
                )
        self.database = database

    # -- evaluation ------------------------------------------------------------------------

    def plan(self, batch: AggregateBatch) -> BatchPlan:
        return plan_batch(batch, self.join_tree, share_views=self.options.share)

    def close(self) -> None:
        """Release the worker pool, cached columnar contexts and cached views."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
        self._context_cache.clear()
        self._view_cache.clear()
        self._root_state.clear()
        self._batch_roots.clear()
        self._batch_roots_by_id.clear()

    def __enter__(self) -> "LMFAOEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.options.resolved_workers())
            # Reclaim the idle worker threads when the engine is collected,
            # even if the caller never invokes close().
            self._pool_finalizer = weakref.finalize(
                self, self._pool.shutdown, wait=False
            )
        return self._pool

    def evaluate(self, batch: AggregateBatch) -> BatchResult:
        """Evaluate all aggregates of ``batch`` and return their values.

        Evaluations are incremental across calls: with ``cache_views`` on,
        views whose subtree relations have not changed since the last call
        are served from the view cache (``executor_stats["views_cached"]``
        counts them), so repeating an identical batch over unchanged data is
        nearly free, and after an update only the root-path above the mutated
        relation is recomputed.
        """
        started = time.perf_counter()
        if self.options.root_strategy == "cost-batch" and self.options.root_relation is None:
            self._reroot_for_batch(batch)
        plan = self.plan(batch)
        stats: Dict[str, int] = {}
        views = self._evaluate_views(plan, stats)

        values: Dict[str, AggregateValue] = {}
        root_name = self.join_tree.root.relation_name
        for decomposition in plan.decompositions:
            aggregate = decomposition.aggregate
            root_view = views[(root_name, decomposition.root_signature)]
            values[self._unique_name(aggregate, values)] = self._extract(aggregate, root_view)

        if plan.unsupported:
            self._evaluate_unsupported(plan.unsupported, values)

        elapsed = time.perf_counter() - started
        return BatchResult(
            batch=batch,
            values=values,
            plan_summary=plan.summary(),
            elapsed_seconds=elapsed,
            views_computed=plan.total_views,
            executor_stats=stats,
        )

    # -- internals ---------------------------------------------------------------------------

    @staticmethod
    def _batch_root_key(batch: AggregateBatch) -> Optional[Tuple]:
        """A hashable shape key for a batch (None when not hashable)."""
        key = tuple(
            (aggregate.product, aggregate.group_by, aggregate.filters, aggregate.inequality)
            for aggregate in batch
        )
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def _reroot_for_batch(self, batch: AggregateBatch) -> None:
        """Re-root the join tree for this batch (``root_strategy="cost-batch"``).

        The choice scores every candidate root with the batch's *planned*
        signature counts (see
        :func:`~repro.engine.statistics.choose_root_for_batch`) and is
        memoised per batch shape against the statistics at first sight — an
        evaluate loop over one batch plans the rooting once.  An actual
        re-root *parks* the current tree, subtree names and view cache under
        the outgoing root and restores any previously parked state for the
        incoming one, so workloads alternating batch shapes with different
        best roots keep their caches instead of rebuilding from scratch.
        """
        key = self._batch_root_key(batch)
        if key is not None:
            root = self._batch_roots.get(key)
        else:
            entry = self._batch_roots_by_id.get(id(batch))
            root = entry[1] if entry is not None and entry[0] is batch else None
        if root is None:
            choice = choose_root_for_batch(self.database, self.join_tree, batch)
            self.root_choice = choice
            root = choice.root
            if key is not None:
                self._batch_roots[key] = root
            else:
                if len(self._batch_roots_by_id) >= 32:
                    self._batch_roots_by_id.clear()
                self._batch_roots_by_id[id(batch)] = (batch, root)
        current = self.join_tree.root.relation_name
        if root != current:
            self._root_state[current] = (
                self.join_tree, self._subtree_names, self._view_cache
            )
            parked = self._root_state.pop(root, None)
            if parked is not None:
                self.join_tree, self._subtree_names, self._view_cache = parked
            else:
                self.join_tree = self.join_tree.rerooted(root)
                self._subtree_names = {
                    node.relation_name: tuple(
                        sorted(child.relation_name for child in node.subtree_nodes())
                    )
                    for node in self.join_tree.nodes()
                }
                self._view_cache = OrderedDict()

    @staticmethod
    def _unique_name(aggregate: Aggregate, existing: Mapping[str, AggregateValue]) -> str:
        name = aggregate.name or "aggregate"
        if name not in existing:
            return name
        suffix = 2
        while f"{name}#{suffix}" in existing:
            suffix += 1
        return f"{name}#{suffix}"

    def _subtree_versions(self, node: JoinTreeNode) -> Tuple[int, ...]:
        """The cache guard: versions of every relation in ``node``'s subtree."""
        return tuple(
            self.database.relation(name).version
            for name in self._subtree_names[node.relation_name]
        )

    def _evaluate_views(
        self, plan: BatchPlan, stats: Optional[Dict[str, int]] = None
    ) -> Dict[Tuple[str, ViewSignature], View]:
        """Evaluate all planned views bottom-up over the join tree.

        With ``cache_views`` (and ``share``) on, each node's signatures are
        first resolved against the cross-evaluate view cache: an entry hits
        when the versions of *all* relations in the node's subtree are
        unchanged since the view was computed — the view's value depends on
        nothing else once the tree and designation are fixed.  Hits are
        served as-is (and count as ``views_cached`` in the stats); only the
        missing signatures reach the executor, and freshly computed views are
        inserted back with LRU eviction beyond ``view_cache_size``.
        """
        views: Dict[Tuple[str, ViewSignature], View] = {}
        levels = self._nodes_by_depth()
        share = self.options.share
        cache = self._view_cache if (self.options.cache_views and share) else None

        def resolve_cached(node: JoinTreeNode) -> Tuple[List[ViewSignature], Tuple[int, ...]]:
            """Serve cache hits for one node; return the signatures left to compute.

            Stale entries are first offered to the delta-refresh path (see
            :meth:`_try_delta_refresh`): after a small update only the
            changed key groups of a cached view are recomputed, instead of
            the whole view.
            """
            signatures = plan.views_per_node[node.relation_name]
            if cache is None:
                return list(signatures), ()
            versions = self._subtree_versions(node)
            pending: List[ViewSignature] = []
            stale: List[Tuple[ViewSignature, Tuple[Tuple[int, ...], View]]] = []
            hits = 0
            for signature in signatures:
                entry = cache.get((node.relation_name, signature))
                if entry is not None and entry[0] == versions:
                    cache.move_to_end((node.relation_name, signature))
                    views[(node.relation_name, signature)] = entry[1]
                    hits += 1
                elif entry is not None:
                    stale.append((signature, entry))
                else:
                    pending.append(signature)
            if stale:
                pending.extend(
                    self._try_delta_refresh(node, stale, versions, plan, views, stats)
                )
            if hits and stats is not None:
                stats[STAT_CACHED] = stats.get(STAT_CACHED, 0) + hits
            return pending, versions

        def store_cached(
            node: JoinTreeNode, versions: Tuple[int, ...], computed: Dict[ViewSignature, View]
        ) -> None:
            if cache is None:
                return
            limit = max(int(self.options.view_cache_size), 0)
            for signature, view in computed.items():
                cache[(node.relation_name, signature)] = (versions, view)
                cache.move_to_end((node.relation_name, signature))
            while len(cache) > limit:
                cache.popitem(last=False)

        def run_node(
            node: JoinTreeNode,
            signatures: Sequence[ViewSignature],
            node_stats: Optional[Dict[str, int]],
        ) -> Dict[ViewSignature, View]:
            # Deduplicate for the result dictionary but keep the full list when
            # sharing is off so the (redundant) work is actually performed.
            started = time.perf_counter()
            computed = compute_node_views(
                node,
                self.database.relation(node.relation_name),
                signatures,
                plan.designation,
                views,
                specialize=self.options.specialize,
                share_scans=share,
                columnar=self.options.columnar,
                context_cache=self._context_cache if share else None,
                stats=node_stats,
            )
            if signatures:
                self._observe_cost(
                    self._recompute_cost,
                    node.relation_name,
                    (time.perf_counter() - started) / len(signatures),
                )
            return computed

        def merge_stats(node_stats: Dict[str, int]) -> None:
            if stats is not None:
                for key, count in node_stats.items():
                    stats[key] = stats.get(key, 0) + count

        for depth in sorted(levels, reverse=True):
            nodes = levels[depth]
            pending: Dict[str, Tuple[List[ViewSignature], Tuple[int, ...]]] = {}
            for node in nodes:
                pending[node.relation_name] = resolve_cached(node)
            runnable = [
                node for node in nodes if pending[node.relation_name][0]
            ]
            if self.options.parallel and len(runnable) > 1:
                # One pool for the whole engine lifetime: constructing and
                # tearing down an executor per tree level costs more than the
                # per-level work it parallelises.
                pool = self._ensure_pool()
                futures = []
                for node in runnable:
                    per_node: Dict[str, int] = {}
                    signatures = pending[node.relation_name][0]
                    futures.append(
                        (pool.submit(run_node, node, signatures, per_node), node, per_node)
                    )
                for future, node, node_stats in futures:
                    computed = future.result()
                    for signature, view in computed.items():
                        views[(node.relation_name, signature)] = view
                    store_cached(node, pending[node.relation_name][1], computed)
                    merge_stats(node_stats)
            else:
                for node in runnable:
                    node_stats: Dict[str, int] = {}
                    signatures = pending[node.relation_name][0]
                    computed = run_node(node, signatures, node_stats)
                    for signature, view in computed.items():
                        views[(node.relation_name, signature)] = view
                    store_cached(node, pending[node.relation_name][1], computed)
                    merge_stats(node_stats)
        return views

    # -- delta-aware cache refresh -------------------------------------------------------

    @staticmethod
    def _observe_cost(table: Dict[str, float], name: str, seconds: float) -> None:
        """Fold one per-view cost observation into the node's EWMA."""
        previous = table.get(name)
        table[name] = seconds if previous is None else 0.5 * previous + 0.5 * seconds

    def _auto_refresh_pays(self, name: str) -> bool:
        """Whether ``delta_refresh="auto"`` should attempt a refresh at this node.

        Optimistic until both sides are measured (the initial evaluate
        records every node's recompute cost, the first attempted refresh
        records the refresh side), then a plain comparison of the per-view
        EWMAs.  Nodes whose full recompute is cheaper than the splice
        machinery — small views over fast scans, the case behind the PR-5
        crossover note — settle on recompute within an update or two; the
        recompute estimate stays fresh there because declining a refresh
        routes the views straight back through the timed compute path.
        """
        refresh = self._refresh_cost.get(name)
        recompute = self._recompute_cost.get(name)
        if refresh is None or recompute is None:
            return True
        return refresh <= recompute

    def _changed_conn_keys(
        self,
        target: JoinTreeNode,
        changed_name: str,
        changes: List[Tuple[Tuple, int]],
        limit: int,
    ) -> Optional[List[Tuple]]:
        """The connection keys of ``target`` affected by ``changes`` to one relation.

        Walks the join-tree path from the mutated relation up to ``target``:
        the mutated node's affected keys are those of the changed rows, and
        each ancestor's are the connection keys of its rows whose child key
        is affected — read off the (fresh, because only ``changed_name``
        mutated) column stores.  None when the set outgrows ``limit`` (the
        caller's per-view refresh budget — static ``delta_refresh_limit`` or
        the adaptive one, see :meth:`EngineOptions.refresh_budget`).
        """
        node = self.join_tree.node(changed_name)
        relation = self.database.relation(changed_name)
        conn = tuple(sorted(node.connection_attributes()))
        positions = [relation.schema.index_of(attribute) for attribute in conn]
        keys = {tuple(row[position] for position in positions) for row, _m in changes}
        while node.relation_name != target.relation_name:
            if len(keys) > limit:
                return None
            parent = node.parent
            if parent is None:
                return None
            store = self.database.relation(parent.relation_name).column_store()
            child_attrs = tuple(sorted(node.connection_attributes()))
            parent_conn = tuple(sorted(parent.connection_attributes()))
            parent_codes, parent_tuples = store.codes_for(parent_conn)
            mask = rows_matching_keys(store, child_attrs, keys)
            affected = np.unique(parent_codes[mask])
            keys = {parent_tuples[code] for code in affected.tolist()}
            node = parent
        if len(keys) > limit:
            return None
        return sorted(keys)

    def _try_delta_refresh(
        self,
        node: JoinTreeNode,
        stale: List[Tuple[ViewSignature, Tuple[Tuple[int, ...], View]]],
        versions: Tuple[int, ...],
        plan: BatchPlan,
        views: Dict[Tuple[str, ViewSignature], View],
        stats: Optional[Dict[str, int]],
    ) -> List[ViewSignature]:
        """Refresh stale cached views in place where a small delta allows it.

        A stale entry qualifies when exactly one relation in the node's
        subtree changed since it was cached, that relation's change log still
        covers the gap, and the induced changed-key set at the node stays
        small.  The node's view is then recomputed only over the rows
        carrying an affected connection key (with the current child views)
        and spliced into the cached entries — entries for unaffected keys are
        untouched by construction, since a row only ever contributes to its
        own connection key.  Returns the signatures that still need a full
        compute.
        """
        options = self.options
        if not options.delta_refresh:
            return [signature for signature, _entry in stale]
        if node.parent is None:
            # The root has a single (empty) connection key, so key-group
            # splicing degenerates to a full recompute; patch the root's
            # *payload* instead: propagate the delta view up and add it.
            return self._try_patch_root(node, stale, versions, plan, views, stats)
        if options.delta_refresh == "auto" and not self._auto_refresh_pays(
            node.relation_name
        ):
            return [signature for signature, _entry in stale]
        names = self._subtree_names[node.relation_name]
        pending: List[ViewSignature] = []
        candidates: Dict[Tuple[str, int], List[Tuple[ViewSignature, View]]] = {}
        for signature, (old_versions, old_view) in stale:
            changed = [
                (name, old)
                for name, old, new in zip(names, old_versions, versions)
                if old != new
            ]
            if len(changed) != 1:
                pending.append(signature)
                continue
            candidates.setdefault(changed[0], []).append((signature, old_view))

        groups: Dict[Tuple[str, int], List[Tuple[ViewSignature, View]]] = {}
        key_sets: Dict[Tuple[str, int], List[Tuple]] = {}
        for group_key, members in candidates.items():
            # Budget per changed-relation group: views cached for the same
            # node share their group structure, so the largest member's key
            # count is the honest fraction denominator for all of them.
            limit = options.refresh_budget(
                max(_conn_key_hint(view) for _sig, view in members)
            )
            changes = self.database.relation(group_key[0]).changes_since(group_key[1])
            if changes is None or len(changes) > limit:
                pending.extend(signature for signature, _view in members)
                continue
            changed_keys = self._changed_conn_keys(node, group_key[0], changes, limit)
            if changed_keys is None:
                pending.extend(signature for signature, _view in members)
                continue
            groups[group_key] = members
            key_sets[group_key] = changed_keys

        refresh_started = time.perf_counter()
        for group_key, members in groups.items():
            changed_keys = key_sets[group_key]
            refreshed = self._refresh_key_groups(
                node, [signature for signature, _view in members], changed_keys, plan, views
            )
            changed_set = set(changed_keys)
            for signature, old_view in members:
                replacement = refreshed[signature]
                # The merged dict shares the untouched group dictionaries by
                # reference (O(conn keys)); the CSR table is patched in array
                # form so parents keep their vectorised consumption.
                new_view = PatchedView(
                    {
                        key: groups_
                        for key, groups_ in old_view.items()
                        if key not in changed_set
                    }
                )
                new_view.update(replacement.items())
                new_view.patched_table = patch_child_table(
                    _table_for(old_view), changed_keys, replacement
                )
                views[(node.relation_name, signature)] = new_view
                self._view_cache[(node.relation_name, signature)] = (versions, new_view)
                self._view_cache.move_to_end((node.relation_name, signature))
            if stats is not None:
                stats[STAT_DELTA_REFRESHED] = (
                    stats.get(STAT_DELTA_REFRESHED, 0) + len(members)
                )
        if groups:
            self._observe_cost(
                self._refresh_cost,
                node.relation_name,
                (time.perf_counter() - refresh_started)
                / sum(len(members) for members in groups.values()),
            )
            cache_limit = max(int(options.view_cache_size), 0)
            while len(self._view_cache) > cache_limit:
                self._view_cache.popitem(last=False)
        return pending

    def _try_patch_root(
        self,
        root: JoinTreeNode,
        stale: List[Tuple[ViewSignature, Tuple[Tuple[int, ...], View]]],
        versions: Tuple[int, ...],
        plan: BatchPlan,
        views: Dict[Tuple[str, ViewSignature], View],
        stats: Optional[Dict[str, int]],
    ) -> List[ViewSignature]:
        """Patch stale cached root views by adding a propagated delta view.

        A root view's value is *linear* in any single relation of the join:
        replacing that relation by its logged signed delta (and keeping every
        other relation as-is) evaluates to exactly the root view's change.
        When exactly one relation mutated since a root view was cached and
        its change log still covers the gap, the engine therefore computes a
        *delta view* — the changed rows at the mutated node, pushed up the
        root path by joining each ancestor's rows against the delta's
        connection keys with the (unchanged) sibling views — and splices it
        into the cached root view by plain value addition
        (:meth:`_propagate_root_delta`).  This is the F-IVM delta rule
        applied to the engine's view signatures; the patched extraction can
        keep group entries whose contributions cancelled to ~0.0 (a full
        recompute drops them), which is why equivalence holds to float
        tolerance rather than bitwise.  Returns the signatures that still
        need a full recompute.
        """
        options = self.options
        if not options.root_patching:
            return [signature for signature, _entry in stale]
        if options.delta_refresh == "auto" and not self._auto_refresh_pays(
            root.relation_name
        ):
            return [signature for signature, _entry in stale]
        names = self._subtree_names[root.relation_name]
        pending: List[ViewSignature] = []
        candidates: Dict[Tuple[str, int], List[Tuple[ViewSignature, View]]] = {}
        for signature, (old_versions, old_view) in stale:
            changed = [
                (name, old)
                for name, old, new in zip(names, old_versions, versions)
                if old != new
            ]
            if len(changed) != 1:
                pending.append(signature)
                continue
            candidates.setdefault(changed[0], []).append((signature, old_view))

        groups: Dict[Tuple[str, int], Tuple[List[Tuple[ViewSignature, View]],
                                            List[Tuple[Tuple, int]], int]] = {}
        for group_key, members in candidates.items():
            limit = options.refresh_budget(
                max(_root_group_hint(view) for _sig, view in members)
            )
            changes = self.database.relation(group_key[0]).changes_since(group_key[1])
            if changes is None or len(changes) > limit:
                pending.extend(signature for signature, _view in members)
                continue
            groups[group_key] = (members, changes, limit)

        use_columnar = bool(options.columnar_root_patch)
        patched_count = 0
        patch_started = time.perf_counter()
        for (changed_name, _old_version), (members, changes, limit) in groups.items():
            signatures = [signature for signature, _view in members]
            deltas = self._propagate_root_delta(
                changed_name, changes, signatures, plan, views, limit
            )
            if deltas is None:
                pending.extend(signatures)
                continue
            for signature, old_view in members:
                delta_view = deltas[signature]
                patched: Optional[View] = None
                if use_columnar and isinstance(old_view, ColumnarView):
                    # Splice the delta into the cached view's arrays in
                    # place; the dict merge below stays as the fallback for
                    # views the in-place patch cannot represent.
                    if old_view.apply_root_delta(_root_delta_items(delta_view)):
                        patched = old_view
                if patched is None:
                    merged: Dict[Tuple, Dict[Tuple, float]] = dict(old_view.items())
                    for conn_key, delta_groups in delta_view.items():
                        base = dict(merged.get(conn_key, {}))
                        for pairs, value in delta_groups.items():
                            base[pairs] = base.get(pairs, 0.0) + value
                        merged[conn_key] = base
                    patched = merged
                views[(root.relation_name, signature)] = patched
                self._view_cache[(root.relation_name, signature)] = (versions, patched)
                self._view_cache.move_to_end((root.relation_name, signature))
            patched_count += len(members)
            if stats is not None:
                stats[STAT_ROOT_PATCHED] = (
                    stats.get(STAT_ROOT_PATCHED, 0) + len(members)
                )
        if patched_count:
            self._observe_cost(
                self._refresh_cost,
                root.relation_name,
                (time.perf_counter() - patch_started) / patched_count,
            )
        if groups:
            cache_limit = max(int(self.options.view_cache_size), 0)
            while len(self._view_cache) > cache_limit:
                self._view_cache.popitem(last=False)
        return pending

    def _propagate_root_delta(
        self,
        changed_name: str,
        changes: List[Tuple[Tuple, int]],
        signatures: List[ViewSignature],
        plan: BatchPlan,
        views: Dict[Tuple[str, ViewSignature], View],
        limit: int,
    ) -> Optional[Dict[ViewSignature, View]]:
        """The root views' delta induced by one relation's signed changes.

        Walks the path from the changed relation to the root.  At the
        changed node the delta relation (changed rows with signed
        multiplicities) is evaluated with the current child views; at every
        ancestor, only the rows joining the delta's connection keys are
        evaluated, with the path child's view *replaced by the delta view*
        and all other children served from ``views`` (their subtrees are
        unchanged by the single-relation guard).  Linearity in one relation
        makes this exact.  None when a hop's key set outgrows ``limit`` —
        the caller's per-view refresh budget — and the caller then
        recomputes fully.
        """
        node = self.join_tree.node(changed_name)
        path: List[JoinTreeNode] = []
        current_node: Optional[JoinTreeNode] = node
        while current_node is not None:
            path.append(current_node)
            current_node = current_node.parent
        # Restrict every root signature down the path (root first).
        per_node_signatures: List[List[ViewSignature]] = [signatures]
        for position in range(len(path) - 1, 0, -1):
            parent_signatures = per_node_signatures[0]
            child = path[position - 1]
            per_node_signatures.insert(
                0,
                [
                    restrict_signature(signature, child, plan.designation)
                    for signature in parent_signatures
                ],
            )

        changed_relation = self.database.relation(changed_name)
        delta_relation = Relation(changed_relation.name, changed_relation.schema)
        delta_relation.add_batch(
            [row for row, _m in changes],
            [multiplicity for _row, multiplicity in changes],
            validated=True,
        )

        current = compute_node_views(
            node,
            delta_relation,
            per_node_signatures[0],
            plan.designation,
            views,
            specialize=self.options.specialize,
            share_scans=self.options.share,
            columnar=self.options.columnar,
            context_cache=None,
            stats=None,
        )
        for position in range(1, len(path)):
            child = path[position - 1]
            parent = path[position]
            seen_keys: set = set()
            delta_keys: List[Tuple] = []
            for delta_view in current.values():
                for key in delta_view.keys():
                    if key not in seen_keys:
                        seen_keys.add(key)
                        delta_keys.append(key)
            if len(delta_keys) > limit:
                return None
            relation = self.database.relation(parent.relation_name)
            store = relation.column_store()
            child_conn = tuple(sorted(child.connection_attributes()))
            mask = rows_matching_keys(store, child_conn, delta_keys)
            sub_relation = _sub_relation_from_mask(relation, store, mask)
            overlay = dict(views)
            for child_signature in per_node_signatures[position - 1]:
                overlay[(child.relation_name, child_signature)] = current[
                    child_signature
                ]
            current = compute_node_views(
                parent,
                sub_relation,
                per_node_signatures[position],
                plan.designation,
                overlay,
                specialize=self.options.specialize,
                share_scans=self.options.share,
                columnar=self.options.columnar,
                context_cache=None,
                stats=None,
            )
        return dict(zip(signatures, (current[s] for s in signatures)))

    def _refresh_key_groups(
        self,
        node: JoinTreeNode,
        signatures: List[ViewSignature],
        changed_keys: List[Tuple],
        plan: BatchPlan,
        views: Dict[Tuple[str, ViewSignature], View],
    ) -> Dict[ViewSignature, View]:
        """Recompute the views of ``node`` restricted to the changed conn keys.

        Builds a sub-relation holding exactly the rows whose connection key
        is affected and runs the ordinary executor over it with the current
        child views — the recomputed entries replace the affected keys
        one-for-one.
        """
        relation = self.database.relation(node.relation_name)
        store = relation.column_store()
        conn = tuple(sorted(node.connection_attributes()))
        mask = rows_matching_keys(store, conn, changed_keys)
        sub_relation = _sub_relation_from_mask(relation, store, mask)
        return compute_node_views(
            node,
            sub_relation,
            signatures,
            plan.designation,
            views,
            specialize=self.options.specialize,
            share_scans=self.options.share,
            columnar=self.options.columnar,
            context_cache=None,
            stats=None,
        )

    def _nodes_by_depth(self) -> Dict[int, List[JoinTreeNode]]:
        levels: Dict[int, List[JoinTreeNode]] = {}

        def visit(node: JoinTreeNode, depth: int) -> None:
            levels.setdefault(depth, []).append(node)
            for child in node.children:
                visit(child, depth + 1)

        visit(self.join_tree.root, 0)
        return levels

    @staticmethod
    def _extract(aggregate: Aggregate, root_view: View) -> AggregateValue:
        """Turn the root view into the aggregate's scalar or grouped value."""
        items = None
        attrs = None
        if isinstance(root_view, ColumnarView):
            # Read the arrays directly; materialising the nested dict shape
            # for a view that is only unpacked here would be wasted work.
            items = root_view.group_items()
            if items is not None:
                # group_attrs describes the raw (concatenation-order) pairs of
                # group_items; the materialised dict below re-sorts its keys,
                # so the positional fast path only applies to the former.
                attrs = root_view.group_attrs
        if items is None:
            items = root_view.get((), {}).items()
        if not aggregate.group_by:
            for group_pairs, value in items:
                if group_pairs == ():
                    return value
            return 0.0
        result: Dict[Tuple, float] = {}
        if attrs is not None and all(a in attrs for a in aggregate.group_by):
            # Every group key shares one attribute sequence: pick values by
            # position instead of rebuilding an assignment dict per entry.
            positions = [attrs.index(a) for a in aggregate.group_by]
            if len(positions) == 1:
                position = positions[0]
                for group_pairs, value in items:
                    key = (group_pairs[position][1],)
                    result[key] = result.get(key, 0.0) + value
            else:
                for group_pairs, value in items:
                    key = tuple(group_pairs[p][1] for p in positions)
                    result[key] = result.get(key, 0.0) + value
            return result
        for group_pairs, value in items:
            assignment = dict(group_pairs)
            key = tuple(assignment[attribute] for attribute in aggregate.group_by)
            result[key] = result.get(key, 0.0) + value
        return result

    def _evaluate_unsupported(
        self, aggregates: Sequence[Aggregate], values: Dict[str, AggregateValue]
    ) -> None:
        """Fallback for additive-inequality aggregates: evaluate over the join.

        Inequality conditions mix attributes of several relations and cannot be
        pushed past the joins by this engine; Section 2.3's dedicated
        algorithms live in :mod:`repro.inequality`.
        """
        joined = self.query.evaluate(self.database)
        names = joined.schema.names
        rows = [
            (dict(zip(names, row)), multiplicity) for row, multiplicity in joined.items()
        ]
        for aggregate in aggregates:
            values[self._unique_name(aggregate, values)] = evaluate_aggregate_over_rows(
                aggregate, rows
            )
