"""The LMFAO-style batch engine.

``LMFAOEngine`` evaluates an :class:`~repro.aggregates.spec.AggregateBatch`
over a feature-extraction query without materialising the join:

1. build a join tree of the (acyclic) query;
2. decompose every aggregate into per-node view signatures (aggregate
   pushdown) and deduplicate identical signatures (sharing);
3. evaluate views bottom-up, sharing the scan of each relation across the
   views rooted at it, optionally in parallel across independent nodes;
4. assemble the final aggregate values at the root.

The three optimisation flags — ``specialize``, ``share`` and ``parallel`` —
mirror the ablation of Figure 6; with all of them off the engine behaves like
the AC/DC baseline (plain aggregate pushdown, one aggregate at a time).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.aggregates.spec import Aggregate, AggregateBatch
from repro.data.database import Database
from repro.engine.executor import View, compute_node_views
from repro.engine.plan import BatchPlan, ViewSignature, plan_batch
from repro.engine.naive import evaluate_aggregate_over_rows
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.join_tree import JoinTree, JoinTreeNode, build_join_tree

AggregateValue = Union[float, Dict[Tuple, float]]


@dataclass
class EngineOptions:
    """Optimisation switches of the engine (the knobs ablated in Figure 6)."""

    specialize: bool = True     # position-resolved tuple access vs per-row dict interpretation
    share: bool = True          # share views across aggregates and scans across views
    parallel: bool = False      # evaluate independent join-tree nodes concurrently
    workers: int = 4
    root_relation: Optional[str] = None

    @staticmethod
    def baseline() -> "EngineOptions":
        """The AC/DC-like baseline: pushdown only, no further optimisations."""
        return EngineOptions(specialize=False, share=False, parallel=False)


@dataclass
class BatchResult:
    """Results of one batch evaluation plus execution statistics."""

    batch: AggregateBatch
    values: Dict[str, AggregateValue]
    plan_summary: Dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    views_computed: int = 0

    def __getitem__(self, name: str) -> AggregateValue:
        return self.values[name]

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def value_of(self, aggregate: Aggregate) -> AggregateValue:
        return self.values[aggregate.name]

    def scalar(self, name: str) -> float:
        value = self.values[name]
        if isinstance(value, dict):
            raise TypeError(f"aggregate {name!r} is grouped; use grouped() instead")
        return float(value)

    def grouped(self, name: str) -> Dict[Tuple, float]:
        value = self.values[name]
        if not isinstance(value, dict):
            raise TypeError(f"aggregate {name!r} is scalar; use scalar() instead")
        return value

    def as_mapping(self) -> Dict[str, AggregateValue]:
        return dict(self.values)


class LMFAOEngine:
    """Layered multiple functional aggregate optimisation, in Python."""

    def __init__(
        self,
        database: Database,
        query: ConjunctiveQuery,
        options: Optional[EngineOptions] = None,
    ) -> None:
        self.database = database
        self.query = query
        self.options = options or EngineOptions()
        self.join_tree = self._build_join_tree()

    # -- construction ---------------------------------------------------------------------

    def _build_join_tree(self) -> JoinTree:
        hypergraph = self.query.hypergraph(self.database)
        root = self.options.root_relation or self._default_root()
        return build_join_tree(hypergraph, root=root)

    def _default_root(self) -> str:
        """Root the join tree at the widest relation (typically the fact table)."""
        return max(
            self.query.relation_names,
            key=lambda name: (
                self.database.relation(name).arity,
                len(self.database.relation(name)),
                name,
            ),
        )

    # -- evaluation ------------------------------------------------------------------------

    def plan(self, batch: AggregateBatch) -> BatchPlan:
        return plan_batch(batch, self.join_tree, share_views=self.options.share)

    def evaluate(self, batch: AggregateBatch) -> BatchResult:
        """Evaluate all aggregates of ``batch`` and return their values."""
        started = time.perf_counter()
        plan = self.plan(batch)
        views = self._evaluate_views(plan)

        values: Dict[str, AggregateValue] = {}
        root_name = self.join_tree.root.relation_name
        for decomposition in plan.decompositions:
            aggregate = decomposition.aggregate
            root_view = views[(root_name, decomposition.root_signature)]
            values[self._unique_name(aggregate, values)] = self._extract(aggregate, root_view)

        if plan.unsupported:
            self._evaluate_unsupported(plan.unsupported, values)

        elapsed = time.perf_counter() - started
        return BatchResult(
            batch=batch,
            values=values,
            plan_summary=plan.summary(),
            elapsed_seconds=elapsed,
            views_computed=plan.total_views,
        )

    # -- internals ---------------------------------------------------------------------------

    @staticmethod
    def _unique_name(aggregate: Aggregate, existing: Mapping[str, AggregateValue]) -> str:
        name = aggregate.name or "aggregate"
        if name not in existing:
            return name
        suffix = 2
        while f"{name}#{suffix}" in existing:
            suffix += 1
        return f"{name}#{suffix}"

    def _evaluate_views(
        self, plan: BatchPlan
    ) -> Dict[Tuple[str, ViewSignature], View]:
        """Evaluate all planned views bottom-up over the join tree."""
        views: Dict[Tuple[str, ViewSignature], View] = {}
        levels = self._nodes_by_depth()
        share = self.options.share

        def run_node(node: JoinTreeNode) -> Dict[ViewSignature, View]:
            signatures = plan.views_per_node[node.relation_name]
            # Deduplicate for the result dictionary but keep the full list when
            # sharing is off so the (redundant) work is actually performed.
            return compute_node_views(
                node,
                self.database.relation(node.relation_name),
                signatures,
                plan.designation,
                views,
                specialize=self.options.specialize,
                share_scans=share,
            )

        for depth in sorted(levels, reverse=True):
            nodes = levels[depth]
            if self.options.parallel and len(nodes) > 1:
                with ThreadPoolExecutor(max_workers=self.options.workers) as pool:
                    futures = {pool.submit(run_node, node): node for node in nodes}
                    for future, node in futures.items():
                        for signature, view in future.result().items():
                            views[(node.relation_name, signature)] = view
            else:
                for node in nodes:
                    for signature, view in run_node(node).items():
                        views[(node.relation_name, signature)] = view
        return views

    def _nodes_by_depth(self) -> Dict[int, List[JoinTreeNode]]:
        levels: Dict[int, List[JoinTreeNode]] = {}

        def visit(node: JoinTreeNode, depth: int) -> None:
            levels.setdefault(depth, []).append(node)
            for child in node.children:
                visit(child, depth + 1)

        visit(self.join_tree.root, 0)
        return levels

    @staticmethod
    def _extract(aggregate: Aggregate, root_view: View) -> AggregateValue:
        """Turn the root view into the aggregate's scalar or grouped value."""
        groups = root_view.get((), {})
        if not aggregate.group_by:
            return groups.get((), 0.0)
        result: Dict[Tuple, float] = {}
        for group_pairs, value in groups.items():
            assignment = dict(group_pairs)
            key = tuple(assignment[attribute] for attribute in aggregate.group_by)
            result[key] = result.get(key, 0.0) + value
        return result

    def _evaluate_unsupported(
        self, aggregates: Sequence[Aggregate], values: Dict[str, AggregateValue]
    ) -> None:
        """Fallback for additive-inequality aggregates: evaluate over the join.

        Inequality conditions mix attributes of several relations and cannot be
        pushed past the joins by this engine; Section 2.3's dedicated
        algorithms live in :mod:`repro.inequality`.
        """
        joined = self.query.evaluate(self.database)
        names = joined.schema.names
        rows = [
            (dict(zip(names, row)), multiplicity) for row, multiplicity in joined.items()
        ]
        for aggregate in aggregates:
            values[self._unique_name(aggregate, values)] = evaluate_aggregate_over_rows(
                aggregate, rows
            )
