"""The LMFAO-style batch engine.

``LMFAOEngine`` evaluates an :class:`~repro.aggregates.spec.AggregateBatch`
over a feature-extraction query without materialising the join:

1. build a join tree of the (acyclic) query;
2. decompose every aggregate into per-node view signatures (aggregate
   pushdown) and deduplicate identical signatures (sharing);
3. evaluate views bottom-up, sharing the scan of each relation across the
   views rooted at it, optionally in parallel across independent nodes;
4. assemble the final aggregate values at the root.

The three optimisation flags — ``specialize``, ``share`` and ``parallel`` —
mirror the ablation of Figure 6; with all of them off the engine behaves like
the AC/DC baseline (plain aggregate pushdown, one aggregate at a time).
"""

from __future__ import annotations

import os
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.aggregates.spec import Aggregate, AggregateBatch
from repro.data.database import Database
from repro.engine.executor import ColumnarContext, ColumnarView, View, compute_node_views
from repro.engine.plan import BatchPlan, ViewSignature, plan_batch
from repro.engine.naive import evaluate_aggregate_over_rows
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.join_tree import JoinTree, JoinTreeNode, build_join_tree

AggregateValue = Union[float, Dict[Tuple, float]]


@dataclass
class EngineOptions:
    """Optimisation switches of the engine (the knobs ablated in Figure 6)."""

    specialize: bool = True     # compiled (columnar or tuple) access vs per-row dict interpretation
    columnar: bool = True       # with specialize: vectorise over the dictionary-encoded column store
    share: bool = True          # share views across aggregates and scans across views
    parallel: bool = False      # evaluate independent join-tree nodes concurrently
    workers: Optional[int] = None   # None: derived from os.cpu_count()
    root_relation: Optional[str] = None

    def resolved_workers(self) -> int:
        """The thread-pool size: explicit ``workers`` or a cpu-count default."""
        if self.workers:
            return self.workers
        return max(2, min(16, os.cpu_count() or 2))

    @staticmethod
    def baseline() -> "EngineOptions":
        """The AC/DC-like baseline: pushdown only, no further optimisations."""
        return EngineOptions(specialize=False, share=False, parallel=False)


@dataclass
class BatchResult:
    """Results of one batch evaluation plus execution statistics."""

    batch: AggregateBatch
    values: Dict[str, AggregateValue]
    plan_summary: Dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    views_computed: int = 0
    #: How many views each executor path computed (see executor.STAT_* keys);
    #: lets callers assert that e.g. no view fell off the vectorised path.
    executor_stats: Dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> AggregateValue:
        return self.values[name]

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def value_of(self, aggregate: Aggregate) -> AggregateValue:
        return self.values[aggregate.name]

    def scalar(self, name: str) -> float:
        value = self.values[name]
        if isinstance(value, dict):
            raise TypeError(f"aggregate {name!r} is grouped; use grouped() instead")
        return float(value)

    def grouped(self, name: str) -> Dict[Tuple, float]:
        value = self.values[name]
        if not isinstance(value, dict):
            raise TypeError(f"aggregate {name!r} is scalar; use scalar() instead")
        return value

    def as_mapping(self) -> Dict[str, AggregateValue]:
        return dict(self.values)


class LMFAOEngine:
    """Layered multiple functional aggregate optimisation, in Python."""

    def __init__(
        self,
        database: Database,
        query: ConjunctiveQuery,
        options: Optional[EngineOptions] = None,
    ) -> None:
        self.database = database
        self.query = query
        self.options = options or EngineOptions()
        self.join_tree = self._build_join_tree()
        # Columnar contexts survive across evaluate() calls: repeated batch
        # evaluations (gradient descent, decision-tree splits, IVM refreshes)
        # reuse the dictionary encodings.  Entries auto-refresh when the
        # underlying relation's version changes.
        self._context_cache: Dict[Tuple, ColumnarContext] = {}
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_finalizer: Optional[weakref.finalize] = None

    # -- construction ---------------------------------------------------------------------

    def _build_join_tree(self) -> JoinTree:
        hypergraph = self.query.hypergraph(self.database)
        root = self.options.root_relation or self._default_root()
        return build_join_tree(hypergraph, root=root)

    def _default_root(self) -> str:
        """Root the join tree at the widest relation (typically the fact table)."""
        return max(
            self.query.relation_names,
            key=lambda name: (
                self.database.relation(name).arity,
                len(self.database.relation(name)),
                name,
            ),
        )

    # -- evaluation ------------------------------------------------------------------------

    def plan(self, batch: AggregateBatch) -> BatchPlan:
        return plan_batch(batch, self.join_tree, share_views=self.options.share)

    def close(self) -> None:
        """Release the worker pool and cached columnar contexts."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
        self._context_cache.clear()

    def __enter__(self) -> "LMFAOEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.options.resolved_workers())
            # Reclaim the idle worker threads when the engine is collected,
            # even if the caller never invokes close().
            self._pool_finalizer = weakref.finalize(
                self, self._pool.shutdown, wait=False
            )
        return self._pool

    def evaluate(self, batch: AggregateBatch) -> BatchResult:
        """Evaluate all aggregates of ``batch`` and return their values."""
        started = time.perf_counter()
        plan = self.plan(batch)
        stats: Dict[str, int] = {}
        views = self._evaluate_views(plan, stats)

        values: Dict[str, AggregateValue] = {}
        root_name = self.join_tree.root.relation_name
        for decomposition in plan.decompositions:
            aggregate = decomposition.aggregate
            root_view = views[(root_name, decomposition.root_signature)]
            values[self._unique_name(aggregate, values)] = self._extract(aggregate, root_view)

        if plan.unsupported:
            self._evaluate_unsupported(plan.unsupported, values)

        elapsed = time.perf_counter() - started
        return BatchResult(
            batch=batch,
            values=values,
            plan_summary=plan.summary(),
            elapsed_seconds=elapsed,
            views_computed=plan.total_views,
            executor_stats=stats,
        )

    # -- internals ---------------------------------------------------------------------------

    @staticmethod
    def _unique_name(aggregate: Aggregate, existing: Mapping[str, AggregateValue]) -> str:
        name = aggregate.name or "aggregate"
        if name not in existing:
            return name
        suffix = 2
        while f"{name}#{suffix}" in existing:
            suffix += 1
        return f"{name}#{suffix}"

    def _evaluate_views(
        self, plan: BatchPlan, stats: Optional[Dict[str, int]] = None
    ) -> Dict[Tuple[str, ViewSignature], View]:
        """Evaluate all planned views bottom-up over the join tree."""
        views: Dict[Tuple[str, ViewSignature], View] = {}
        levels = self._nodes_by_depth()
        share = self.options.share

        def run_node(
            node: JoinTreeNode, node_stats: Optional[Dict[str, int]]
        ) -> Dict[ViewSignature, View]:
            signatures = plan.views_per_node[node.relation_name]
            # Deduplicate for the result dictionary but keep the full list when
            # sharing is off so the (redundant) work is actually performed.
            return compute_node_views(
                node,
                self.database.relation(node.relation_name),
                signatures,
                plan.designation,
                views,
                specialize=self.options.specialize,
                share_scans=share,
                columnar=self.options.columnar,
                context_cache=self._context_cache if share else None,
                stats=node_stats,
            )

        def merge_stats(node_stats: Dict[str, int]) -> None:
            if stats is not None:
                for key, count in node_stats.items():
                    stats[key] = stats.get(key, 0) + count

        for depth in sorted(levels, reverse=True):
            nodes = levels[depth]
            if self.options.parallel and len(nodes) > 1:
                # One pool for the whole engine lifetime: constructing and
                # tearing down an executor per tree level costs more than the
                # per-level work it parallelises.
                pool = self._ensure_pool()
                futures = []
                for node in nodes:
                    per_node: Dict[str, int] = {}
                    futures.append((pool.submit(run_node, node, per_node), node, per_node))
                for future, node, node_stats in futures:
                    for signature, view in future.result().items():
                        views[(node.relation_name, signature)] = view
                    merge_stats(node_stats)
            else:
                for node in nodes:
                    node_stats: Dict[str, int] = {}
                    for signature, view in run_node(node, node_stats).items():
                        views[(node.relation_name, signature)] = view
                    merge_stats(node_stats)
        return views

    def _nodes_by_depth(self) -> Dict[int, List[JoinTreeNode]]:
        levels: Dict[int, List[JoinTreeNode]] = {}

        def visit(node: JoinTreeNode, depth: int) -> None:
            levels.setdefault(depth, []).append(node)
            for child in node.children:
                visit(child, depth + 1)

        visit(self.join_tree.root, 0)
        return levels

    @staticmethod
    def _extract(aggregate: Aggregate, root_view: View) -> AggregateValue:
        """Turn the root view into the aggregate's scalar or grouped value."""
        items = None
        attrs = None
        if isinstance(root_view, ColumnarView):
            # Read the arrays directly; materialising the nested dict shape
            # for a view that is only unpacked here would be wasted work.
            items = root_view.group_items()
            if items is not None:
                # group_attrs describes the raw (concatenation-order) pairs of
                # group_items; the materialised dict below re-sorts its keys,
                # so the positional fast path only applies to the former.
                attrs = root_view.group_attrs
        if items is None:
            items = root_view.get((), {}).items()
        if not aggregate.group_by:
            for group_pairs, value in items:
                if group_pairs == ():
                    return value
            return 0.0
        result: Dict[Tuple, float] = {}
        if attrs is not None and all(a in attrs for a in aggregate.group_by):
            # Every group key shares one attribute sequence: pick values by
            # position instead of rebuilding an assignment dict per entry.
            positions = [attrs.index(a) for a in aggregate.group_by]
            if len(positions) == 1:
                position = positions[0]
                for group_pairs, value in items:
                    key = (group_pairs[position][1],)
                    result[key] = result.get(key, 0.0) + value
            else:
                for group_pairs, value in items:
                    key = tuple(group_pairs[p][1] for p in positions)
                    result[key] = result.get(key, 0.0) + value
            return result
        for group_pairs, value in items:
            assignment = dict(group_pairs)
            key = tuple(assignment[attribute] for attribute in aggregate.group_by)
            result[key] = result.get(key, 0.0) + value
        return result

    def _evaluate_unsupported(
        self, aggregates: Sequence[Aggregate], values: Dict[str, AggregateValue]
    ) -> None:
        """Fallback for additive-inequality aggregates: evaluate over the join.

        Inequality conditions mix attributes of several relations and cannot be
        pushed past the joins by this engine; Section 2.3's dedicated
        algorithms live in :mod:`repro.inequality`.
        """
        joined = self.query.evaluate(self.database)
        names = joined.schema.names
        rows = [
            (dict(zip(names, row)), multiplicity) for row, multiplicity in joined.items()
        ]
        for aggregate in aggregates:
            values[self._unique_name(aggregate, values)] = evaluate_aggregate_over_rows(
                aggregate, rows
            )
