"""View computation: one join-tree node at a time, bottom-up.

A *view* is the partial result of (a shared group of) aggregates over the
subtree rooted at a node: a map from the node's connection key (the join
attributes shared with its parent) to a map from group-by assignments to the
partial sum-product value.  Views are computed by scanning the node's relation
once, combining each tuple with the already-computed views of the children.

Three code paths implement the scan, from slowest to fastest:

``_scan_interpreted``
    every row becomes a dictionary and every attribute access resolves names
    at runtime — the unspecialised baseline;
``_scan_specialized``
    tuple-at-a-time with pre-resolved column positions — the classic
    code-specialisation step;
``_evaluate_columnar``
    fully vectorised over the relation's dictionary-encoded
    :class:`~repro.data.colstore.ColumnStore`: filters are evaluated per
    distinct value and gathered through codes, connection/group-by keys
    become integer row codes, and child views (including *grouped,
    multi-entry* ones) are joined through CSR-style offset tables — no
    per-row Python at all.

The columnar path handles every signature whose product attributes are
numeric; only non-numeric products fall back to the specialised scan.  The
per-path view counts are reported through the ``stats`` dictionary so callers
(and benchmarks) can assert which path actually ran; views the engine served
from its cross-evaluate cache never reach this module and are counted under
:data:`STAT_CACHED` by the engine itself.
"""

from __future__ import annotations

import os as _os
import threading as _threading
from concurrent.futures import ThreadPoolExecutor as _ThreadPoolExecutor
from dataclasses import dataclass
from operator import itemgetter as _itemgetter
from typing import Callable, Dict, List, Mapping, MutableMapping, Optional, Sequence, Tuple

import numpy as _np

from repro.aggregates.spec import FilterOp
from repro.data.colstore import ColumnEncoding, ColumnStore, as_sortable_array, combine_codes
from repro.data.relation import Relation
from repro.engine.deltas import match_key_columns as _match_key_columns
from repro.engine.plan import ViewSignature
from repro.query.join_tree import JoinTreeNode

# conn_key -> (group assignment as sorted (attribute, value) pairs) -> value
View = Dict[Tuple, Dict[Tuple, float]]

EMPTY_GROUP: Tuple = ()

#: Keys used in the executor statistics dictionary.
STAT_COLUMNAR = "views_columnar"
STAT_TUPLE_FALLBACK = "views_tuple_fallback"
STAT_TUPLE_SPECIALIZED = "views_tuple_specialized"
STAT_INTERPRETED = "views_interpreted"
#: Views served from the engine's cross-evaluate view cache (never computed
#: here; the key exists so one stats dictionary covers all view outcomes).
STAT_CACHED = "views_cached"
#: Stale cached views the engine patched in place by recomputing only their
#: changed key groups after a small update (see ``LMFAOEngine``); like
#: :data:`STAT_CACHED`, counted by the engine, never by this module.
STAT_DELTA_REFRESHED = "views_delta_refreshed"
#: Stale cached *root* views the engine patched by adding the propagated
#: delta view of a small update instead of recomputing the root from scratch
#: (see ``LMFAOEngine._try_patch_root``); counted by the engine.
STAT_ROOT_PATCHED = "root_patches"


class SubtreeScheduler:
    """Dispatches independent join-tree work units onto one shared thread pool.

    The fused multi-delta pass (see :mod:`repro.ivm.fivm`) processes one tree
    level at a time; within a level, the per-parent node groups of
    :func:`repro.engine.deltas.subtree_schedule` touch disjoint maintainer
    state, so they can run concurrently.  The hot work inside a group is
    numpy-heavy enough to release the GIL, which is what makes threads pay
    off despite CPython.  The pool is shared process-wide (maintainers come
    and go per benchmark round; one pool avoids thread churn) and built
    lazily on the first parallel dispatch.

    Determinism: the scheduler only ever runs *whole groups*, each on a
    single thread, and joins them all before returning (a level barrier).
    Group results land in per-group state, never in shared accumulators, so
    the observable outcome is identical to running the groups sequentially —
    bit-identical, not merely equivalent up to float reassociation.
    """

    _pool: Optional[_ThreadPoolExecutor] = None
    _lock = _threading.Lock()

    @classmethod
    def pool(cls) -> _ThreadPoolExecutor:
        if cls._pool is None:
            with cls._lock:
                if cls._pool is None:
                    workers = max(2, min(16, _os.cpu_count() or 2))
                    cls._pool = _ThreadPoolExecutor(
                        max_workers=workers,
                        thread_name_prefix="subtree-delta",
                    )
        return cls._pool

    @classmethod
    def run_groups(cls, units: Sequence[Callable[[], None]]) -> None:
        """Run the given thunks concurrently and wait for all of them.

        A single unit runs inline (no dispatch overhead), as does everything
        on a single-core machine — threads cannot overlap there, so the
        dispatch cost would be pure loss; the sequential order is the same
        one the pool's determinism guarantees, so results are unchanged.
        Failures propagate after every submitted unit has finished, so the
        caller never observes a half-processed level.
        """
        if len(units) == 1 or (_os.cpu_count() or 1) < 2:
            inline_error: Optional[Exception] = None
            for unit in units:
                try:
                    unit()
                except Exception as exc:
                    # Only plain failures are deferred until the level
                    # completes; KeyboardInterrupt and friends must abort
                    # immediately.
                    if inline_error is None:
                        inline_error = exc
            if inline_error is not None:
                raise inline_error
            return
        futures = [cls.pool().submit(unit) for unit in units]
        error: Optional[Exception] = None
        for future in futures:
            try:
                future.result()
            except Exception as exc:
                if error is None:
                    error = exc
        if error is not None:
            raise error


def restrict_signature(
    signature: ViewSignature,
    child: JoinTreeNode,
    designation: Mapping[str, str],
) -> ViewSignature:
    """Restrict a signature to the subtree of one child node."""
    child_relations = {node.relation_name for node in child.subtree_nodes()}
    product = tuple(
        (attribute, exponent)
        for attribute, exponent in signature.product
        if designation[attribute] in child_relations
    )
    group_by = tuple(
        attribute for attribute in signature.group_by if designation[attribute] in child_relations
    )
    filters = tuple(
        condition
        for condition in signature.filters
        if designation[condition.attribute] in child_relations
    )
    return ViewSignature(
        relation_name=child.relation_name,
        product=product,
        group_by=group_by,
        filters=filters,
    )


@dataclass
class _SignatureTask:
    """Pre-resolved evaluation metadata for one signature at one node."""

    signature: ViewSignature
    local_product: List[Tuple[int, int]]          # (column position, exponent)
    local_group: List[Tuple[str, int]]            # (attribute, column position)
    local_filters: List[Tuple[int, object]]       # (column position, Filter)
    child_views: List[Tuple[List[int], View]]     # (child conn positions, child view)
    result: View


def _prepare_task(
    node: JoinTreeNode,
    relation: Relation,
    signature: ViewSignature,
    designation: Mapping[str, str],
    child_views: Mapping[Tuple[str, ViewSignature], View],
) -> _SignatureTask:
    schema = relation.schema
    here = node.relation_name

    local_product = [
        (schema.index_of(attribute), exponent)
        for attribute, exponent in signature.product
        if designation[attribute] == here
    ]
    local_group = [
        (attribute, schema.index_of(attribute))
        for attribute in signature.group_by
        if designation[attribute] == here
    ]
    local_filters = [
        (schema.index_of(condition.attribute), condition)
        for condition in signature.filters
        if designation[condition.attribute] == here
    ]

    children: List[Tuple[List[int], View]] = []
    for child in node.children:
        child_signature = restrict_signature(signature, child, designation)
        view = child_views[(child.relation_name, child_signature)]
        child_conn = sorted(child.attributes & node.attributes)
        positions = [schema.index_of(attribute) for attribute in child_conn]
        children.append((positions, view))

    return _SignatureTask(
        signature=signature,
        local_product=local_product,
        local_group=local_group,
        local_filters=local_filters,
        child_views=children,
        result={},
    )


def _scan_specialized(
    relation: Relation,
    conn_positions: Sequence[int],
    tasks: Sequence[_SignatureTask],
) -> None:
    """Single scan of ``relation`` computing all ``tasks`` (position-based access)."""
    for row, multiplicity in relation.items():
        conn_key = tuple(row[position] for position in conn_positions)
        for task in tasks:
            alive = True
            for position, condition in task.local_filters:
                if not condition.test(row[position]):
                    alive = False
                    break
            if not alive:
                continue

            factor = float(multiplicity)
            for position, exponent in task.local_product:
                factor *= float(row[position]) ** exponent

            partial: List[Tuple[Tuple, float]] = [
                (
                    tuple((attribute, row[position]) for attribute, position in task.local_group),
                    factor,
                )
            ]
            for child_positions, child_view in task.child_views:
                child_key = tuple(row[position] for position in child_positions)
                entries = child_view.get(child_key)
                if not entries:
                    alive = False
                    break
                expanded: List[Tuple[Tuple, float]] = []
                for group_pairs, value in partial:
                    for child_pairs, child_value in entries.items():
                        expanded.append((group_pairs + child_pairs, value * child_value))
                partial = expanded
            if not alive:
                continue

            groups = task.result.setdefault(conn_key, {})
            for group_pairs, value in partial:
                key = tuple(sorted(group_pairs)) if group_pairs else EMPTY_GROUP
                groups[key] = groups.get(key, 0.0) + value


def _scan_interpreted(
    relation: Relation,
    conn_attributes: Sequence[str],
    tasks: Sequence[_SignatureTask],
    node: JoinTreeNode,
    designation: Mapping[str, str],
) -> None:
    """Row-dict based scan: the unspecialised (interpretation-heavy) code path.

    This models an engine without workload compilation: every row is converted
    to a dictionary and every attribute access resolves names at runtime.
    """
    names = relation.schema.names
    here = node.relation_name
    for row, multiplicity in relation.items():
        row_dict = dict(zip(names, row))
        conn_key = tuple(row_dict[attribute] for attribute in conn_attributes)
        for task in tasks:
            signature = task.signature
            alive = True
            for condition in signature.filters:
                if designation[condition.attribute] == here and not condition.test(
                    row_dict[condition.attribute]
                ):
                    alive = False
                    break
            if not alive:
                continue

            factor = float(multiplicity)
            for attribute, exponent in signature.product:
                if designation[attribute] == here:
                    factor *= float(row_dict[attribute]) ** exponent

            local_group = tuple(
                (attribute, row_dict[attribute])
                for attribute in signature.group_by
                if designation[attribute] == here
            )
            partial: List[Tuple[Tuple, float]] = [(local_group, factor)]
            for child_positions, child_view in task.child_views:
                child_key = tuple(row[position] for position in child_positions)
                entries = child_view.get(child_key)
                if not entries:
                    alive = False
                    break
                expanded: List[Tuple[Tuple, float]] = []
                for group_pairs, value in partial:
                    for child_pairs, child_value in entries.items():
                        expanded.append((group_pairs + child_pairs, value * child_value))
                partial = expanded
            if not alive:
                continue

            groups = task.result.setdefault(conn_key, {})
            for group_pairs, value in partial:
                key = tuple(sorted(group_pairs)) if group_pairs else EMPTY_GROUP
                groups[key] = groups.get(key, 0.0) + value


class _ChildTable:
    """A child view in CSR form for vectorised joins.

    Join keys become *slots*; ``offsets[slot] .. offsets[slot + 1]`` delimit
    the view's group entries for that key inside the flat ``values`` /
    ``group_ids`` arrays.  Grouped child views therefore do not need a
    single-entry-per-key shape to be joined vectorised: a parent row matching
    a key with *k* group entries simply expands into *k* output rows.
    """

    __slots__ = ("slot_index", "offsets", "counts", "values", "group_ids",
                 "group_pairs", "has_groups", "key_columns", "group_attrs",
                 "slot_conn_ids", "conn_space", "_pair_index")

    def __init__(
        self,
        slot_index: Dict[Tuple, int],
        offsets: _np.ndarray,
        values: _np.ndarray,
        group_ids: _np.ndarray,
        group_pairs: List[Tuple],
        has_groups: bool,
        key_columns: Optional[List[_np.ndarray]] = None,
        group_attrs: Optional[Tuple[str, ...]] = None,
        slot_conn_ids: Optional[_np.ndarray] = None,
        conn_space: Optional[Tuple[object, int]] = None,
    ) -> None:
        self.slot_index = slot_index
        self.offsets = offsets
        self.counts = _np.diff(offsets)
        self.values = values
        self.group_ids = group_ids
        self.group_pairs = group_pairs
        self.has_groups = has_groups
        # Per key attribute: typed value arrays in slot order, when every
        # attribute's values reduce to a comparable numpy dtype (enables the
        # fully vectorised searchsorted join-key matching).
        self.key_columns = key_columns
        # The attribute sequence shared by every group-pair entry, when the
        # entries are known to be uniform (lets parents merge group keys with
        # one precomputed permutation instead of sorting per combination).
        self.group_attrs = group_attrs
        # Per slot: the key's code in the producing store's key space, plus
        # that space's (store, cardinality) identity — lets parents reuse one
        # cached store-to-store key mapping for every view of this child.
        self.slot_conn_ids = slot_conn_ids
        self.conn_space = conn_space
        self._pair_index: Optional[Dict[Tuple, int]] = None

    def pair_index(self) -> Dict[Tuple, int]:
        """Group pairs -> group id, built once and shared with patched copies.

        ``group_pairs`` is append-only, so a patched table (see
        :func:`patch_child_table`) extends this same dictionary and list; the
        original table's entries keep referencing their old ids unchanged.
        """
        if self._pair_index is None:
            self._pair_index = {
                pairs: gid for gid, pairs in enumerate(self.group_pairs)
            }
        return self._pair_index

    @staticmethod
    def from_view(view: "View") -> "_ChildTable":
        """Flatten a plain dict view (tuple-scan or hand-built) into CSR form."""
        slot_index: Dict[Tuple, int] = {}
        offsets = _np.empty(len(view) + 1, dtype=_np.int64)
        offsets[0] = 0
        values: List[float] = []
        group_ids: List[int] = []
        pair_index: Dict[Tuple, int] = {}
        group_pairs: List[Tuple] = []
        for slot, (key, groups) in enumerate(view.items()):
            slot_index[key] = slot
            for pairs, value in groups.items():
                values.append(value)
                gid = pair_index.get(pairs)
                if gid is None:
                    gid = len(group_pairs)
                    pair_index[pairs] = gid
                    group_pairs.append(pairs)
                group_ids.append(gid)
            offsets[slot + 1] = len(values)
        key_columns: Optional[List[_np.ndarray]] = None
        keys = list(slot_index)
        if keys and keys[0]:
            candidate = [
                as_sortable_array([key[position] for key in keys])
                for position in range(len(keys[0]))
            ]
            if all(column is not None for column in candidate):
                key_columns = candidate  # type: ignore[assignment]
        group_attrs: Optional[Tuple[str, ...]] = None
        if group_pairs:
            first = tuple(attribute for attribute, _value in group_pairs[0])
            if all(
                tuple(attribute for attribute, _value in pairs) == first
                for pairs in group_pairs
            ):
                group_attrs = first
        return _ChildTable(
            slot_index,
            offsets,
            _np.asarray(values, dtype=_np.float64),
            _np.asarray(group_ids, dtype=_np.int64),
            group_pairs,
            any(pairs != EMPTY_GROUP for pairs in group_pairs),
            key_columns,
            group_attrs,
        )


def _table_for(view: "View") -> _ChildTable:
    """CSR table of a child view, array-native when the view is columnar."""
    if isinstance(view, ColumnarView):
        return view.table()
    if isinstance(view, PatchedView):
        return view.patched_table
    return _ChildTable.from_view(view)


class PatchedView(dict):
    """A cached view refreshed in place by the delta-aware view cache.

    Behaves as the plain nested-dict view (the merged content), but carries
    a pre-patched CSR table so parent nodes keep consuming arrays instead of
    re-flattening the whole dict after every small update.
    """

    patched_table: _ChildTable


def patch_child_table(
    old: _ChildTable,
    changed_keys: Sequence[Tuple],
    replacement: Mapping[Tuple, Mapping[Tuple, float]],
) -> _ChildTable:
    """Rebuild a CSR child table with the entries of ``changed_keys`` replaced.

    Kept slots are selected with one boolean gather over the entry arrays;
    only the replacement entries are visited in Python.  The group-pair
    dictionary is shared (append-only) with the old table, so successive
    patches never re-encode the unchanged group keys.
    """
    counts = old.counts
    keep = _np.ones(counts.shape[0], dtype=bool)
    for key in changed_keys:
        slot = old.slot_index.get(key)
        if slot is not None:
            keep[slot] = False
    entry_mask = _np.repeat(keep, counts)
    kept_values = old.values[entry_mask]
    kept_group_ids = old.group_ids[entry_mask]
    kept_counts = counts[keep]

    # Kept keys stay in slot order (slot_index insertion order is slot order).
    slot_index: Dict[Tuple, int] = {}
    position = 0
    for key, slot in old.slot_index.items():
        if keep[slot]:
            slot_index[key] = position
            position += 1

    group_pairs = old.group_pairs       # shared, append-only
    pair_index = old.pair_index()       # extends in place alongside the list
    attrs = old.group_attrs
    extra_values: List[float] = []
    extra_group_ids: List[int] = []
    extra_counts: List[int] = []
    has_new_groups = False
    for key in changed_keys:
        groups = replacement.get(key)
        if not groups:
            continue
        slot_index[key] = position
        position += 1
        extra_counts.append(len(groups))
        for pairs, value in groups.items():
            if pairs and attrs is not None:
                # Align the replacement's (canonically sorted) pairs with the
                # old table's fixed attribute sequence so equal group keys
                # share one group id.
                mapping = dict(pairs)
                if len(mapping) == len(attrs) and all(a in mapping for a in attrs):
                    pairs = tuple((attribute, mapping[attribute]) for attribute in attrs)
                else:
                    attrs = None
            if pairs != EMPTY_GROUP:
                has_new_groups = True
            gid = pair_index.get(pairs)
            if gid is None:
                gid = len(group_pairs)
                pair_index[pairs] = gid
                group_pairs.append(pairs)
            extra_group_ids.append(gid)
            extra_values.append(value)

    values = kept_values
    group_ids = kept_group_ids
    all_counts = kept_counts
    if extra_values:
        values = _np.concatenate((kept_values, _np.asarray(extra_values, dtype=_np.float64)))
        group_ids = _np.concatenate(
            (kept_group_ids, _np.asarray(extra_group_ids, dtype=_np.int64))
        )
        all_counts = _np.concatenate(
            (kept_counts, _np.asarray(extra_counts, dtype=_np.int64))
        )
    offsets = _np.concatenate(
        ([0], _np.cumsum(all_counts))
    ).astype(_np.int64, copy=False)
    table = _ChildTable(
        slot_index,
        offsets,
        values,
        group_ids,
        group_pairs,
        old.has_groups or has_new_groups,
        None,            # key columns: dropped, parents fall back to probing
        attrs,
    )
    table._pair_index = pair_index
    return table


class ColumnarView(dict):
    """A view held in columnar form, materialising its dict shape lazily.

    The arrays describe one entry per *key code*: ``conn_ids[code]`` /
    ``group_ids[code]`` index the decoded connection-key and group-pair
    dictionaries, ``sums[code]`` is the aggregated value, and ``present``
    (when not None) lists the codes that actually received contributions.
    A parent node's columnar evaluation consumes :meth:`table` directly —
    the nested-dict shape is only built if somebody *reads* the view as a
    mapping (the root extraction, the tuple-scan fallback, or tests).
    """

    __slots__ = ("_conn_ids", "_group_ids", "_conn_keys", "_group_keys",
                 "_sums", "_present", "_ready", "_table", "_conn_columns",
                 "_group_attrs", "_conn_store", "_root_index")

    def __init__(
        self,
        conn_ids: _np.ndarray,
        group_ids: _np.ndarray,
        conn_keys: List[Tuple],
        group_keys: List[Tuple],
        sums: _np.ndarray,
        present: Optional[_np.ndarray],
        conn_columns: Optional[List[_np.ndarray]] = None,
        group_attrs: Optional[Tuple[str, ...]] = None,
        conn_store: Optional[ColumnStore] = None,
    ) -> None:
        super().__init__()
        self._conn_ids = conn_ids
        self._group_ids = group_ids
        self._conn_keys = conn_keys
        self._group_keys = group_keys
        self._sums = sums
        self._present = present
        self._ready = False
        self._table: Optional[_ChildTable] = None
        self._conn_columns = conn_columns
        self._group_attrs = group_attrs
        self._conn_store = conn_store
        # Canonical group pairs -> entry code, built by the first
        # apply_root_delta and maintained across patches.
        self._root_index: Optional[Dict[Tuple, int]] = None

    # -- columnar access -------------------------------------------------------------------

    def _codes(self) -> _np.ndarray:
        if self._present is None:
            return _np.arange(len(self._sums), dtype=_np.int64)
        return self._present

    @property
    def group_attrs(self) -> Optional[Tuple[str, ...]]:
        """The fixed attribute sequence of every group key, when known."""
        return self._group_attrs

    def conn_key_count_hint(self) -> int:
        """Roughly how many distinct connection keys the view holds.

        Cheap on purpose: before the dict shape exists this reads the decoded
        key list (an upper bound — unused codes may linger), afterwards the
        exact dict length.  Never triggers materialisation; the adaptive
        delta-refresh policy sizes its budget from this.
        """
        if self._ready:
            return dict.__len__(self)
        return len(self._conn_keys)

    def entry_count_hint(self) -> int:
        """Roughly how many (connection key, group) entries the view holds.

        Like :meth:`conn_key_count_hint` but at entry granularity (the root
        patch budget); reads the code arrays, never materialises the dict.
        """
        if self._ready:
            return sum(len(groups) for groups in dict.values(self))
        if self._present is not None:
            return len(self._present)
        return len(self._sums)

    def group_items(self) -> Optional[List[Tuple[Tuple, float]]]:
        """All (group pairs, value) entries when the view has no connection key.

        Lets the root extraction consume the arrays directly instead of first
        materialising the nested dict; None when a real connection key exists
        (or the dict shape was already built — then reading it is cheaper).
        """
        if self._ready or self._conn_keys != [()]:
            return None
        codes = self._codes()
        group_keys = self._group_keys
        return [
            (group_keys[group_id], value)
            for group_id, value in zip(
                self._group_ids[codes].tolist(), self._sums[codes].tolist()
            )
        ]

    def apply_root_delta(self, items: Sequence[Tuple[Tuple, float]]) -> bool:
        """Splice a signed delta into this *root* view's arrays in place.

        ``items`` are ``(group pairs, value)`` entries of a propagated delta
        view over the same signature.  Entries whose group key already exists
        are added straight into :attr:`_sums` — allocation-free, however wide
        the group-by — and only genuinely new group keys append to the
        arrays (copy-on-write, since a view family shares its key arrays).
        Returns False when the view is not patchable in place (a real
        connection key, or a delta group that cannot be aligned with the
        view's fixed attribute sequence); the caller then falls back to the
        nested-dict merge.
        """
        if self._conn_keys != [()]:
            return False
        attrs = self._group_attrs
        group_keys = self._group_keys
        group_ids = self._group_ids
        index = self._root_index
        if index is None:
            codes = self._codes()
            index = {}
            for code in codes.tolist():
                pairs = group_keys[group_ids[code]]
                index[tuple(sorted(pairs)) if pairs else EMPTY_GROUP] = code
            self._root_index = index

        # Stage the whole delta before touching any state: a mid-splice
        # abort must leave the view unmodified, or the caller's dict-merge
        # fallback would re-apply entries that already landed.
        hits: List[Tuple[int, float]] = []             # (existing code, value)
        appended: List[Tuple[Tuple, float]] = []       # (pairs in view order, value)
        staged: Dict[Tuple, int] = {}                  # canonical -> appended position
        for pairs, value in items:
            canonical = tuple(sorted(pairs)) if pairs else EMPTY_GROUP
            code = index.get(canonical)
            if code is not None:
                hits.append((code, value))
                continue
            position = staged.get(canonical)
            if position is not None:                   # duplicate delta groups fold
                appended[position] = (appended[position][0], appended[position][1] + value)
                continue
            if pairs and attrs is not None:
                mapping = dict(pairs)
                if len(mapping) == len(attrs) and all(a in mapping for a in attrs):
                    ordered = tuple((attribute, mapping[attribute]) for attribute in attrs)
                else:
                    return False     # cannot align with the fixed sequence
            elif pairs and attrs is None:
                # attrs None means every stored key is canonically sorted.
                ordered = canonical
            else:
                ordered = EMPTY_GROUP
            staged[canonical] = len(appended)
            appended.append((ordered, value))

        for code, value in hits:
            self._sums[code] += value
        for canonical, position in staged.items():
            index[canonical] = len(self._sums) + position

        if appended:
            # The key arrays may be shared with sibling views of the same
            # family: extend copies, never the originals.
            base_keys = len(group_keys)
            self._group_keys = list(group_keys) + [pairs for pairs, _v in appended]
            new_gids = _np.arange(base_keys, base_keys + len(appended), dtype=_np.int64)
            self._group_ids = _np.concatenate((group_ids, new_gids))
            self._conn_ids = _np.concatenate(
                (self._conn_ids, _np.zeros(len(appended), dtype=_np.int64))
            )
            new_codes = _np.arange(
                len(self._sums), len(self._sums) + len(appended), dtype=_np.int64
            )
            self._sums = _np.concatenate(
                (self._sums, _np.asarray([v for _p, v in appended], dtype=_np.float64))
            )
            if self._present is not None:
                self._present = _np.concatenate((self._present, new_codes))
        # Derived shapes are stale now; rebuild lazily on next read.
        self._table = None
        if self._ready:
            dict.clear(self)
            self._ready = False
        return True

    def table(self) -> _ChildTable:
        """CSR form grouped by connection key (built without the dict shape)."""
        if self._table is None:
            codes = self._codes()
            conn = self._conn_ids[codes]
            order = _np.argsort(conn, kind="stable")
            selected = codes[order]
            conn_sorted = conn[order]
            if selected.size:
                boundaries = _np.nonzero(_np.diff(conn_sorted))[0] + 1
                starts = _np.concatenate(([0], boundaries))
                offsets = _np.concatenate((starts, [selected.size]))
                distinct = conn_sorted[starts]
            else:
                offsets = _np.zeros(1, dtype=_np.int64)
                distinct = _np.empty(0, dtype=_np.int64)
            distinct_keys = [self._conn_keys[conn_id] for conn_id in distinct.tolist()]
            slot_index = {key: slot for slot, key in enumerate(distinct_keys)}
            key_columns = None
            if self._conn_columns is not None:
                key_columns = [column[distinct] for column in self._conn_columns]
            group_ids = self._group_ids[selected]
            referenced = set(_np.unique(group_ids).tolist())
            has_groups = any(
                self._group_keys[gid] != EMPTY_GROUP for gid in referenced
            )
            conn_space = None
            if self._conn_store is not None:
                conn_space = (self._conn_store, len(self._conn_keys))
            self._table = _ChildTable(
                slot_index,
                offsets.astype(_np.int64, copy=False),
                self._sums[selected],
                group_ids,
                self._group_keys,
                has_groups,
                key_columns,
                self._group_attrs,
                distinct,
                conn_space,
            )
        return self._table

    # -- lazy dict materialisation ---------------------------------------------------------

    def _canonical_keys(self) -> List[Tuple]:
        """Group keys in the canonical attribute-sorted order of the scans."""
        attrs = self._group_attrs
        keys = self._group_keys
        if attrs is None or not attrs or list(attrs) == sorted(attrs):
            return keys
        permutation = sorted(range(len(attrs)), key=attrs.__getitem__)
        if len(permutation) == 1:
            return keys
        pick = _itemgetter(*permutation)
        return [pick(pairs) if pairs else EMPTY_GROUP for pairs in keys]

    def _materialise(self) -> "ColumnarView":
        if not self._ready:
            self._ready = True
            codes = self._codes()
            conn_keys = self._conn_keys
            group_keys = self._canonical_keys()
            setdefault = dict.setdefault
            for conn_id, group_id, value in zip(
                self._conn_ids[codes].tolist(),
                self._group_ids[codes].tolist(),
                self._sums[codes].tolist(),
            ):
                groups = setdefault(self, conn_keys[conn_id], {})
                pairs = group_keys[group_id]
                groups[pairs] = groups.get(pairs, 0.0) + value
        return self

    def __getitem__(self, key):
        return dict.__getitem__(self._materialise(), key)

    def __iter__(self):
        return dict.__iter__(self._materialise())

    def __len__(self):
        return dict.__len__(self._materialise())

    def __contains__(self, key):
        return dict.__contains__(self._materialise(), key)

    def __eq__(self, other):
        if isinstance(other, ColumnarView):
            # dict.__eq__ would read the other side's raw (possibly not yet
            # materialised) backing storage directly.
            other = other._materialise()
        return dict.__eq__(self._materialise(), other)

    def __ne__(self, other):
        if isinstance(other, ColumnarView):
            other = other._materialise()
        return dict.__ne__(self._materialise(), other)

    __hash__ = None

    def __repr__(self):
        return dict.__repr__(self._materialise())

    def __bool__(self):
        return dict.__len__(self._materialise()) > 0

    def get(self, key, default=None):
        return dict.get(self._materialise(), key, default)

    def keys(self):
        return dict.keys(self._materialise())

    def values(self):
        return dict.values(self._materialise())

    def items(self):
        return dict.items(self._materialise())

    def copy(self):
        return dict(self._materialise())

    def setdefault(self, key, default=None):
        return dict.setdefault(self._materialise(), key, default)

    def pop(self, *args):
        return dict.pop(self._materialise(), *args)

    def popitem(self):
        return dict.popitem(self._materialise())

    def update(self, *args, **kwargs):
        return dict.update(self._materialise(), *args, **kwargs)

    def __reduce__(self):
        return (dict, (dict(self._materialise()),))


class _BaseKeys:
    """Joint (connection key, local group-by key) coding for one node.

    ``codes`` assigns every row its dense joint-key code; ``conn_ids`` and
    ``group_ids`` decompose each code into indices of the decoded connection
    keys and sorted group pairs.  Cached per group-by attribute tuple inside
    the :class:`ColumnarContext`, so every view family — and every later
    batch — reuses the arrays.
    """

    __slots__ = ("codes", "size", "conn_ids", "group_ids", "conn_keys",
                 "group_keys", "conn_columns", "group_attrs")

    def __init__(self, store: ColumnStore, conn: Tuple[str, ...], local: Tuple[str, ...]):
        conn_row_codes, conn_tuples = store.codes_for(conn)
        self.conn_columns = store.key_columns(conn) if conn else []
        self.group_attrs = tuple(sorted(local))
        joint = conn + tuple(a for a in local if a not in conn)
        joint_codes, joint_tuples = store.codes_for(joint)
        size = len(joint_tuples)
        self.codes = joint_codes
        self.size = size
        self.conn_keys = conn_tuples
        conn_ids = _np.zeros(size, dtype=_np.int64)
        conn_ids[joint_codes] = conn_row_codes
        self.conn_ids = conn_ids
        if local:
            local_row_codes, local_tuples = store.codes_for(local)
            group_ids = _np.zeros(size, dtype=_np.int64)
            group_ids[joint_codes] = local_row_codes
            self.group_ids = group_ids
            self.group_keys = [
                tuple(sorted(zip(local, values))) for values in local_tuples
            ]
        else:
            self.group_ids = _np.zeros(size, dtype=_np.int64)
            self.group_keys = [EMPTY_GROUP]


class ColumnarContext:
    """Columnar precomputations for one node, reusable across batches.

    Everything cached here depends only on the relation snapshot (through its
    :class:`ColumnStore`) and on stable keys — attribute tuples and filter
    conditions — never on a particular batch's child views.  The engine keeps
    these contexts alive across ``evaluate()`` calls and drops them only when
    the underlying relation's version changes.
    """

    def __init__(
        self,
        node: JoinTreeNode,
        relation: Relation,
        conn_attributes: Sequence[str],
        store: Optional[ColumnStore] = None,
    ) -> None:
        self.node = node
        self.relation = relation
        self.store = store if store is not None else relation.column_store()
        self.conn_attributes = tuple(conn_attributes)
        self._filter_masks: Dict[object, _np.ndarray] = {}
        self._base_keys: Dict[Tuple[str, ...], _BaseKeys] = {}
        # (signature, child relation) -> restricted child signature
        self.restrict_cache: Dict[Tuple[ViewSignature, str], ViewSignature] = {}
        # (key attrs, child store id) -> (store ref, parent key code -> child key code)
        self._cross_maps: Dict[Tuple, Tuple[object, Optional[_np.ndarray]]] = {}

    def filter_mask(self, condition) -> _np.ndarray:
        """Boolean row mask for one filter, evaluated over the dictionary.

        Comparison filters against typed dictionaries are pure array
        operations; anything else runs the condition's Python test once per
        *distinct* value, never per row.
        """
        key = (condition.attribute, condition.op, repr(condition.value))
        mask = self._filter_masks.get(key)
        if mask is None:
            encoding = self.store.encoding(condition.attribute)
            value_mask = _vectorised_value_mask(encoding, condition)
            if value_mask is None:
                value_mask = _np.fromiter(
                    (bool(condition.test(value)) for value in encoding.values),
                    dtype=bool,
                    count=encoding.cardinality,
                )
            mask = value_mask[encoding.codes]
            self._filter_masks[key] = mask
        return mask

    def base_keys(self, local_attributes: Tuple[str, ...]) -> _BaseKeys:
        base = self._base_keys.get(local_attributes)
        if base is None:
            base = _BaseKeys(self.store, self.conn_attributes, local_attributes)
            self._base_keys[local_attributes] = base
        return base

    def child_key_codes(self, attributes: Tuple[str, ...]) -> Tuple[_np.ndarray, List[Tuple]]:
        return self.store.codes_for(attributes)

    def cross_map(
        self, key_attributes: Tuple[str, ...], table: "_ChildTable"
    ) -> Optional[_np.ndarray]:
        """Parent key code -> child-store key code (or -1), cached per store pair.

        Every view of the same child reuses this one mapping; only a cheap
        slot scatter remains per view.
        """
        if table.conn_space is None:
            return None
        child_store, _size = table.conn_space
        # Keyed by relation name, not store identity: when the child mutates,
        # the fresh store *replaces* the stale entry instead of accumulating
        # one pinned snapshot per mutation over the engine's lifetime.
        key = (key_attributes, child_store.relation_name)  # type: ignore[attr-defined]
        cached = self._cross_maps.get(key)
        if cached is not None and cached[0] is child_store:
            return cached[1]
        parent_columns = self.store.key_columns(key_attributes)
        child_columns = child_store.key_columns(key_attributes)  # type: ignore[attr-defined]
        mapping = None
        if parent_columns is not None and child_columns is not None:
            mapping = _match_key_columns(parent_columns, child_columns)
        self._cross_maps[key] = (child_store, mapping)
        return mapping


def _vectorised_value_mask(encoding: ColumnEncoding, condition) -> Optional[_np.ndarray]:
    """Array evaluation of one filter over the dictionary values, or None.

    Only taken when numpy's comparison semantics provably coincide with the
    condition's Python ``test``: numeric dictionaries against numeric
    constants, string dictionaries against string constants.
    """
    typed = encoding.sortable_values()
    if typed is None:
        return None
    value = condition.value
    numeric = typed.dtype.kind in "iufb"
    if condition.op is FilterOp.IN:
        try:
            elements = list(value)
        except TypeError:
            return None
        if numeric:
            if not all(isinstance(e, (int, float, bool)) for e in elements):
                return None
        elif not all(isinstance(e, str) for e in elements):
            return None
        return _np.isin(typed, elements)
    if numeric:
        if not isinstance(value, (int, float, bool)):
            return None
    elif not isinstance(value, str):
        return None
    try:
        if condition.op is FilterOp.EQ:
            return typed == value
        if condition.op is FilterOp.NE:
            return typed != value
        if condition.op is FilterOp.GE:
            return typed >= value
        if condition.op is FilterOp.GT:
            return typed > value
        if condition.op is FilterOp.LE:
            return typed <= value
        if condition.op is FilterOp.LT:
            return typed < value
    except (TypeError, OverflowError):
        # e.g. a python int beyond int64 against an integer dictionary: fall
        # back to the exact per-value Python test.
        return None
    return None


def _slot_mapping(
    store: ColumnStore,
    key_attributes: Tuple[str, ...],
    table: _ChildTable,
    row_keys: List[Tuple],
) -> _np.ndarray:
    """Child-table slot (or -1) per distinct parent join-key combination.

    Keys whose attributes all reduce to comparable typed arrays are matched
    fully vectorised; everything else probes the table's key dictionary once
    per distinct combination.
    """
    if key_attributes and table.key_columns is not None:
        parent_columns = store.key_columns(key_attributes)
        if parent_columns is not None:
            mapped = _match_key_columns(parent_columns, table.key_columns)
            if mapped is not None:
                return mapped
    return _np.fromiter(
        (table.slot_index.get(key, -1) for key in row_keys),
        dtype=_np.int64,
        count=len(row_keys),
    )


@dataclass
class _ViewFamily:
    """A group of signatures at one node sharing everything but their weights.

    Signatures with identical locally-designated group-by attributes and
    identical child views differ only in which numeric columns they multiply
    and which filters zero rows out — so the engine evaluates the whole
    family with one shared pipeline (one key coding, one child-join
    expansion) and a *weight matrix* with one column per signature.  This is
    the columnar analogue of LMFAO compiling all aggregates of a batch into
    one generated scan per node.
    """

    local_attributes: Tuple[str, ...]
    children: List[Tuple[Tuple[str, ViewSignature], Tuple[str, ...]]]
    signatures: List[ViewSignature]


def _build_families(
    node: JoinTreeNode,
    signatures: Sequence[ViewSignature],
    designation: Mapping[str, str],
    restrict_cache: Optional[Dict[Tuple[ViewSignature, str], ViewSignature]] = None,
) -> List[_ViewFamily]:
    """Group distinct signatures into view families (see :class:`_ViewFamily`)."""
    here = node.relation_name
    key_attributes = [
        (child, tuple(sorted(child.attributes & node.attributes)))
        for child in node.children
    ]
    families: Dict[Tuple, _ViewFamily] = {}
    ordered: List[_ViewFamily] = []
    for signature in signatures:
        children = []
        for child, attributes in key_attributes:
            cache_key = (signature, child.relation_name)
            restricted = None if restrict_cache is None else restrict_cache.get(cache_key)
            if restricted is None:
                restricted = restrict_signature(signature, child, designation)
                if restrict_cache is not None:
                    restrict_cache[cache_key] = restricted
            children.append(((child.relation_name, restricted), attributes))
        local_attributes = tuple(
            attribute for attribute in signature.group_by if designation[attribute] == here
        )
        key = (tuple(pair[0] for pair in children), local_attributes)
        family = families.get(key)
        if family is None:
            family = _ViewFamily(local_attributes, children, [])
            families[key] = family
            ordered.append(family)
        family.signatures.append(signature)
    return ordered


def _evaluate_family(
    context: ColumnarContext,
    node: JoinTreeNode,
    family: _ViewFamily,
    designation: Mapping[str, str],
    child_views: Mapping[Tuple[str, ViewSignature], View],
    child_tables: MutableMapping[Tuple[str, ViewSignature], _ChildTable],
) -> Tuple[Dict[ViewSignature, View], List[ViewSignature]]:
    """Vectorised evaluation of one view family.

    Returns the computed views plus the signatures that must fall back to the
    tuple scan (only those whose product references a non-numeric column).
    Filters *zero* a signature's weight column instead of dropping rows, so
    filtered and unfiltered signatures share the pipeline; per-signature
    presence columns (0/1 riding along unweighted) keep the semantics of the
    tuple scans — a group exists iff at least one row passing the signature's
    filters reached it, even when the contributions cancel to exactly 0.0.
    """
    here = node.relation_name
    store = context.store
    results: Dict[ViewSignature, View] = {}
    if store.row_count == 0:
        for signature in family.signatures:
            results[signature] = {}
        return results, []

    # Per-signature weight columns (multiplicity x local product, zeroed by
    # local filters) and presence columns for the filtered signatures.
    weight_columns: List[_np.ndarray] = []
    presence_columns: List[Optional[_np.ndarray]] = []
    computed: List[ViewSignature] = []
    fallback: List[ViewSignature] = []
    for signature in family.signatures:
        weights = store.multiplicities
        supported = True
        for attribute, exponent in signature.product:
            if designation[attribute] != here:
                continue
            column = store.float_column(attribute)
            if column is None:
                supported = False
                break
            weights = weights * (column if exponent == 1 else column ** exponent)
        if not supported:
            fallback.append(signature)
            continue
        mask: Optional[_np.ndarray] = None
        for condition in signature.filters:
            if designation[condition.attribute] != here:
                continue
            condition_mask = context.filter_mask(condition)
            mask = condition_mask if mask is None else (mask & condition_mask)
        if mask is not None:
            # np.where, not multiplication: `inf * 0` would turn a filtered-out
            # non-finite row into NaN, while the tuple scan skips it entirely.
            weights = _np.where(mask, weights, 0.0)
        computed.append(signature)
        weight_columns.append(weights)
        presence_columns.append(None if mask is None else mask.astype(_np.float64))
    if not computed:
        return results, fallback

    def all_empty() -> Tuple[Dict[ViewSignature, View], List[ViewSignature]]:
        for signature in computed:
            results[signature] = {}
        return results, fallback

    matrix = _np.stack(weight_columns, axis=1)            # (rows, signatures)
    filtered = [p for p in presence_columns if p is not None]
    presence = _np.stack(filtered, axis=1) if filtered else None
    base = context.base_keys(family.local_attributes)
    codes = base.codes

    # Child views: vectorised hash-join through per-key CSR offsets.  A row
    # matching a key with several group entries expands into several output
    # rows; rows without a match die (their key is absent from the join).
    components: List[_np.ndarray] = []
    decoders: List[List[Tuple]] = []
    decoder_attrs: List[Optional[Tuple[str, ...]]] = []
    rows: Optional[_np.ndarray] = None    # original row index per pipeline row
    for table_key, key_attributes in family.children:
        table = child_tables.get(table_key)
        if table is None:
            table = _table_for(child_views[table_key])
            child_tables[table_key] = table
        row_codes, row_keys = context.child_key_codes(key_attributes)
        # At most one probe per *distinct* key combination, never per row —
        # and when both sides are columnar, one cached store-to-store code
        # mapping plus a slot scatter, with no per-key work at all.
        cross = context.cross_map(key_attributes, table)
        if cross is not None and table.slot_conn_ids is not None:
            space = table.conn_space[1] if table.conn_space else 0
            inverse = _np.full(max(space, 1), -1, dtype=_np.int64)
            inverse[table.slot_conn_ids] = _np.arange(
                table.slot_conn_ids.size, dtype=_np.int64
            )
            slot_of_key = _np.where(cross >= 0, inverse[cross], -1)
        else:
            slot_of_key = _slot_mapping(store, key_attributes, table, row_keys)
        slots = slot_of_key[row_codes] if rows is None else slot_of_key[row_codes[rows]]
        live = slots >= 0
        all_live = bool(live.all())
        if all_live and bool((table.counts[slots] == 1).all()):
            # Every row matches exactly one entry: plain gather, no expansion.
            entries = table.offsets[slots]
            matrix = matrix * table.values[entries][:, None]
            if table.has_groups:
                components.append(table.group_ids[entries])
                decoders.append(table.group_pairs)
                decoder_attrs.append(table.group_attrs)
            continue
        counts = _np.zeros(slots.size, dtype=_np.int64)
        if all_live:
            counts = table.counts[slots]
        else:
            counts[live] = table.counts[slots[live]]
        total = int(counts.sum())
        if total == 0:
            return all_empty()
        repeats = _np.repeat(_np.arange(slots.size), counts)
        starts = _np.zeros(slots.size, dtype=_np.int64)
        starts[live] = table.offsets[slots[live]]
        exclusive = _np.cumsum(counts) - counts
        within = _np.arange(total, dtype=_np.int64) - _np.repeat(exclusive, counts)
        entries = _np.repeat(starts, counts) + within
        matrix = matrix[repeats] * table.values[entries][:, None]
        if presence is not None:
            presence = presence[repeats]
        codes = codes[repeats]
        rows = repeats if rows is None else rows[repeats]
        components = [component[repeats] for component in components]
        if table.has_groups:
            components.append(table.group_ids[entries])
            decoders.append(table.group_pairs)
            decoder_attrs.append(table.group_attrs)

    if not components:
        # Base codes are dense: bincount directly, no re-uniquing needed.
        size = base.size
        contributing = _np.bincount(codes, minlength=size)
        shared_present = _np.nonzero(contributing)[0]
        conn_ids, group_ids = base.conn_ids, base.group_ids
        conn_keys, group_keys = base.conn_keys, base.group_keys
        group_attrs: Optional[Tuple[str, ...]] = base.group_attrs
    else:
        columns = [codes] + components
        cardinalities = [max(base.size, 1)] + [max(len(d), 1) for d in decoders]
        codes, combos = combine_codes(columns, cardinalities)
        size = combos.shape[0]
        conn_ids = base.conn_ids[combos[:, 0]]
        conn_keys = base.conn_keys
        # Compact the group identity: a code combines (connection, group) but
        # the distinct group keys are usually far fewer than the codes, and
        # downstream consumers (parent joins, extraction) loop over them.
        group_columns = [base.group_ids[combos[:, 0]]] + [
            combos[:, position] for position in range(1, combos.shape[1])
        ]
        group_cardinalities = [max(len(base.group_keys), 1)] + [
            max(len(decoder), 1) for decoder in decoders
        ]
        group_ids, group_combos = combine_codes(group_columns, group_cardinalities)
        base_group_keys = base.group_keys
        group_keys = []
        if all(attrs is not None for attrs in decoder_attrs):
            # Group pairs stay in concatenation order; the attribute sequence
            # travels with the view and canonical (attribute-sorted) keys are
            # only produced at dict-materialisation boundaries.
            group_attrs: Optional[Tuple[str, ...]] = base.group_attrs + tuple(
                attribute for attrs in decoder_attrs for attribute in attrs  # type: ignore[union-attr]
            )
            append = group_keys.append
            for combo in group_combos.tolist():
                pairs = base_group_keys[combo[0]]
                for decoder, pair_code in zip(decoders, combo[1:]):
                    pairs = pairs + decoder[pair_code]
                append(pairs)
        else:
            group_attrs = None
            for combo in group_combos.tolist():
                pairs = base_group_keys[combo[0]]
                for decoder, pair_code in zip(decoders, combo[1:]):
                    pairs = pairs + decoder[pair_code]
                group_keys.append(tuple(sorted(pairs)) if pairs else EMPTY_GROUP)
        shared_present = None  # every combo stems from at least one pipeline row

    filtered_position = 0
    scalar_sums: Optional[_np.ndarray] = None
    if size == 1:
        # One key (scalar views): column sums replace per-signature bincounts.
        scalar_sums = matrix.sum(axis=0)
    for position, signature in enumerate(computed):
        if scalar_sums is not None:
            sums = scalar_sums[position : position + 1]
        else:
            sums = _np.bincount(codes, weights=matrix[:, position], minlength=size)
        if presence_columns[position] is None:
            present = shared_present
        else:
            passing = _np.bincount(
                codes, weights=presence[:, filtered_position], minlength=size
            )
            filtered_position += 1
            present = _np.nonzero(passing)[0]
        results[signature] = ColumnarView(
            conn_ids, group_ids, conn_keys, group_keys, sums, present,
            base.conn_columns, group_attrs, store,
        )
    return results, fallback


def _context_for(
    node: JoinTreeNode,
    relation: Relation,
    conn_attributes: Sequence[str],
    context_cache: Optional[MutableMapping[Tuple, ColumnarContext]],
) -> ColumnarContext:
    """Fetch (or build) the node's columnar context, honouring relation versions."""
    if context_cache is None:
        return ColumnarContext(node, relation, conn_attributes)
    key = (node.relation_name, tuple(conn_attributes))
    context = context_cache.get(key)
    store = relation.column_store()
    if context is None or context.store is not store:
        context = ColumnarContext(node, relation, conn_attributes, store=store)
        context_cache[key] = context
    return context


def compute_node_views(
    node: JoinTreeNode,
    relation: Relation,
    signatures: Sequence[ViewSignature],
    designation: Mapping[str, str],
    child_views: Mapping[Tuple[str, ViewSignature], View],
    specialize: bool = True,
    share_scans: bool = True,
    columnar: bool = True,
    context_cache: Optional[MutableMapping[Tuple, ColumnarContext]] = None,
    stats: Optional[MutableMapping[str, int]] = None,
) -> Dict[ViewSignature, View]:
    """Compute the views for all ``signatures`` at one node.

    With ``specialize`` the evaluation is compiled: to vectorised operations
    over the relation's dictionary-encoded column store when ``columnar`` is
    on (falling back to a position-resolved tuple scan only for non-numeric
    product attributes), or to the tuple scan for every signature when it is
    off.  Without ``specialize`` every row is interpreted through dictionary
    lookups.  ``share_scans=True`` shares the per-node precomputation (and
    the scan) across all signatures; otherwise each signature re-encodes and
    re-scans the relation, modelling an engine without scan sharing.
    ``context_cache`` (used by the engine) carries columnar contexts across
    batch evaluations; ``stats`` counts how many views each path computed.
    """
    conn_attributes = sorted(node.connection_attributes())
    conn_positions = [relation.schema.index_of(attribute) for attribute in conn_attributes]

    results: Dict[ViewSignature, View] = {}

    def tick(key: str, amount: int = 1) -> None:
        if stats is not None:
            stats[key] = stats.get(key, 0) + amount

    if specialize and columnar:
        remaining = []
        if share_scans:
            distinct: List[ViewSignature] = []
            seen = set()
            for signature in signatures:
                if signature not in seen:
                    seen.add(signature)
                    distinct.append(signature)
            context = _context_for(node, relation, conn_attributes, context_cache)
            child_tables: Dict[Tuple[str, ViewSignature], _ChildTable] = {}
            for family in _build_families(
                node, distinct, designation, context.restrict_cache
            ):
                computed, fallback = _evaluate_family(
                    context, node, family, designation, child_views, child_tables
                )
                results.update(computed)
                remaining.extend(fallback)
                tick(STAT_COLUMNAR, len(computed))
                tick(STAT_TUPLE_FALLBACK, len(fallback))
        else:
            # No sharing: every signature runs its own single-view pipeline
            # (its own family, key codings, filter masks and child joins), so
            # the ablation measures what *pipeline* sharing buys.  The
            # dictionary encoding itself is served by the relation's cached
            # column store — re-encoding per signature measured storage
            # duplication no real engine would exhibit, and the IVM paths
            # mutating relations mid-stream made the duplicate snapshots
            # actively misleading.
            for signature in signatures:
                context = ColumnarContext(node, relation, conn_attributes)
                (family,) = _build_families(node, [signature], designation)
                computed, fallback = _evaluate_family(
                    context, node, family, designation, child_views, {}
                )
                if fallback:
                    remaining.extend(fallback)
                    tick(STAT_TUPLE_FALLBACK)
                else:
                    results[signature] = computed[signature]
                    tick(STAT_COLUMNAR)
    elif specialize:
        remaining = list(signatures)
        tick(STAT_TUPLE_SPECIALIZED, len(remaining))
    else:
        remaining = list(signatures)
        tick(STAT_INTERPRETED, len(remaining))

    if remaining:
        tasks = [
            _prepare_task(node, relation, signature, designation, child_views)
            for signature in remaining
        ]
        task_groups: List[List[_SignatureTask]]
        if share_scans:
            task_groups = [list(tasks)]
        else:
            task_groups = [[task] for task in tasks]
        for group in task_groups:
            if specialize:
                _scan_specialized(relation, conn_positions, group)
            else:
                _scan_interpreted(relation, conn_attributes, group, node, designation)
        for task in tasks:
            results[task.signature] = task.result

    return {signature: results[signature] for signature in signatures}
