"""View computation: one join-tree node at a time, bottom-up.

A *view* is the partial result of (a shared group of) aggregates over the
subtree rooted at a node: a map from the node's connection key (the join
attributes shared with its parent) to a map from group-by assignments to the
partial sum-product value.  Views are computed by scanning the node's relation
once, combining each tuple with the already-computed views of the children.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as _np

from repro.data.relation import Relation
from repro.engine.plan import ViewSignature
from repro.query.join_tree import JoinTreeNode

# conn_key -> (group assignment as sorted (attribute, value) pairs) -> value
View = Dict[Tuple, Dict[Tuple, float]]

EMPTY_GROUP: Tuple = ()


def restrict_signature(
    signature: ViewSignature,
    child: JoinTreeNode,
    designation: Mapping[str, str],
) -> ViewSignature:
    """Restrict a signature to the subtree of one child node."""
    child_relations = {node.relation_name for node in child.subtree_nodes()}
    product = tuple(
        (attribute, exponent)
        for attribute, exponent in signature.product
        if designation[attribute] in child_relations
    )
    group_by = tuple(
        attribute for attribute in signature.group_by if designation[attribute] in child_relations
    )
    filters = tuple(
        condition
        for condition in signature.filters
        if designation[condition.attribute] in child_relations
    )
    return ViewSignature(
        relation_name=child.relation_name,
        product=product,
        group_by=group_by,
        filters=filters,
    )


@dataclass
class _SignatureTask:
    """Pre-resolved evaluation metadata for one signature at one node."""

    signature: ViewSignature
    local_product: List[Tuple[int, int]]          # (column position, exponent)
    local_group: List[Tuple[str, int]]            # (attribute, column position)
    local_filters: List[Tuple[int, object]]       # (column position, Filter)
    child_views: List[Tuple[List[int], View]]     # (child conn positions, child view)
    result: View


def _prepare_task(
    node: JoinTreeNode,
    relation: Relation,
    signature: ViewSignature,
    designation: Mapping[str, str],
    child_views: Mapping[Tuple[str, ViewSignature], View],
) -> _SignatureTask:
    schema = relation.schema
    here = node.relation_name

    local_product = [
        (schema.index_of(attribute), exponent)
        for attribute, exponent in signature.product
        if designation[attribute] == here
    ]
    local_group = [
        (attribute, schema.index_of(attribute))
        for attribute in signature.group_by
        if designation[attribute] == here
    ]
    local_filters = [
        (schema.index_of(condition.attribute), condition)
        for condition in signature.filters
        if designation[condition.attribute] == here
    ]

    children: List[Tuple[List[int], View]] = []
    for child in node.children:
        child_signature = restrict_signature(signature, child, designation)
        view = child_views[(child.relation_name, child_signature)]
        child_conn = sorted(child.attributes & node.attributes)
        positions = [schema.index_of(attribute) for attribute in child_conn]
        children.append((positions, view))

    return _SignatureTask(
        signature=signature,
        local_product=local_product,
        local_group=local_group,
        local_filters=local_filters,
        child_views=children,
        result={},
    )


def _scan_specialized(
    relation: Relation,
    conn_positions: Sequence[int],
    tasks: Sequence[_SignatureTask],
) -> None:
    """Single scan of ``relation`` computing all ``tasks`` (position-based access)."""
    for row, multiplicity in relation.items():
        conn_key = tuple(row[position] for position in conn_positions)
        for task in tasks:
            alive = True
            for position, condition in task.local_filters:
                if not condition.test(row[position]):
                    alive = False
                    break
            if not alive:
                continue

            factor = float(multiplicity)
            for position, exponent in task.local_product:
                factor *= float(row[position]) ** exponent

            partial: List[Tuple[Tuple, float]] = [
                (
                    tuple((attribute, row[position]) for attribute, position in task.local_group),
                    factor,
                )
            ]
            for child_positions, child_view in task.child_views:
                child_key = tuple(row[position] for position in child_positions)
                entries = child_view.get(child_key)
                if not entries:
                    alive = False
                    break
                expanded: List[Tuple[Tuple, float]] = []
                for group_pairs, value in partial:
                    for child_pairs, child_value in entries.items():
                        expanded.append((group_pairs + child_pairs, value * child_value))
                partial = expanded
            if not alive:
                continue

            groups = task.result.setdefault(conn_key, {})
            for group_pairs, value in partial:
                key = tuple(sorted(group_pairs)) if group_pairs else EMPTY_GROUP
                groups[key] = groups.get(key, 0.0) + value


def _scan_interpreted(
    relation: Relation,
    conn_attributes: Sequence[str],
    tasks: Sequence[_SignatureTask],
    node: JoinTreeNode,
    designation: Mapping[str, str],
) -> None:
    """Row-dict based scan: the unspecialised (interpretation-heavy) code path.

    This models an engine without workload compilation: every row is converted
    to a dictionary and every attribute access resolves names at runtime.
    """
    names = relation.schema.names
    here = node.relation_name
    for row, multiplicity in relation.items():
        row_dict = dict(zip(names, row))
        conn_key = tuple(row_dict[attribute] for attribute in conn_attributes)
        for task in tasks:
            signature = task.signature
            alive = True
            for condition in signature.filters:
                if designation[condition.attribute] == here and not condition.test(
                    row_dict[condition.attribute]
                ):
                    alive = False
                    break
            if not alive:
                continue

            factor = float(multiplicity)
            for attribute, exponent in signature.product:
                if designation[attribute] == here:
                    factor *= float(row_dict[attribute]) ** exponent

            local_group = tuple(
                (attribute, row_dict[attribute])
                for attribute in signature.group_by
                if designation[attribute] == here
            )
            partial: List[Tuple[Tuple, float]] = [(local_group, factor)]
            for child_positions, child_view in task.child_views:
                child_key = tuple(row[position] for position in child_positions)
                entries = child_view.get(child_key)
                if not entries:
                    alive = False
                    break
                expanded: List[Tuple[Tuple, float]] = []
                for group_pairs, value in partial:
                    for child_pairs, child_value in entries.items():
                        expanded.append((group_pairs + child_pairs, value * child_value))
                partial = expanded
            if not alive:
                continue

            groups = task.result.setdefault(conn_key, {})
            for group_pairs, value in partial:
                key = tuple(sorted(group_pairs)) if group_pairs else EMPTY_GROUP
                groups[key] = groups.get(key, 0.0) + value


class _NodeContext:
    """Shared, columnar precomputations for one scan group at a node.

    This is the engine's model of workload compilation: the relation is turned
    into columns, child-view lookups are aligned to row positions once per
    distinct child signature, filters become boolean masks, and group-by key
    combinations become integer codes — after which every signature reduces to
    a handful of vectorised numpy operations.
    """

    def __init__(self, node: JoinTreeNode, relation: Relation, conn_attributes: Sequence[str]):
        self.node = node
        self.relation = relation
        self.conn_attributes = tuple(conn_attributes)
        self.rows: List[Tuple] = []
        multiplicities: List[float] = []
        for row, multiplicity in relation.items():
            self.rows.append(row)
            multiplicities.append(float(multiplicity))
        self.multiplicities = _np.asarray(multiplicities, dtype=float)
        self.row_count = len(self.rows)
        conn_positions = [relation.schema.index_of(attribute) for attribute in conn_attributes]
        self.conn_keys: List[Tuple] = [
            tuple(row[position] for position in conn_positions) for row in self.rows
        ]
        self._float_columns: Dict[str, Optional[_np.ndarray]] = {}
        self._filter_masks: Dict[object, _np.ndarray] = {}
        self._alignments: Dict[object, Optional[Tuple[_np.ndarray, Optional[List[Tuple]]]]] = {}
        self._key_codes: Dict[object, Tuple[_np.ndarray, List[Tuple[Tuple, Tuple]]]] = {}

    # -- columns, filters -----------------------------------------------------------------

    def float_column(self, attribute: str) -> Optional[_np.ndarray]:
        if attribute not in self._float_columns:
            position = self.relation.schema.index_of(attribute)
            try:
                column = _np.asarray(
                    [float(row[position]) for row in self.rows], dtype=float
                )
            except (TypeError, ValueError):
                column = None
            self._float_columns[attribute] = column
        return self._float_columns[attribute]

    def filter_mask(self, condition) -> _np.ndarray:
        key = (condition.attribute, condition.op, repr(condition.value))
        mask = self._filter_masks.get(key)
        if mask is None:
            position = self.relation.schema.index_of(condition.attribute)
            mask = _np.fromiter(
                (condition.test(row[position]) for row in self.rows),
                dtype=bool,
                count=self.row_count,
            )
            self._filter_masks[key] = mask
        return mask

    # -- child-view alignment -----------------------------------------------------------------

    def child_alignment(
        self, child_name: str, child_signature: ViewSignature,
        positions: Sequence[int], child_view: View,
    ) -> Optional[Tuple[_np.ndarray, Optional[List[Tuple]]]]:
        """Per-row child factors (and group pairs) or None when not vectorisable."""
        key = (child_name, child_signature)
        if key in self._alignments:
            return self._alignments[key]

        # Vectorisable only when every join key maps to at most one group entry.
        single_entry = all(len(groups) <= 1 for groups in child_view.values())
        if not single_entry:
            self._alignments[key] = None
            return None

        factors = _np.zeros(self.row_count)
        has_groups = any(
            next(iter(groups), EMPTY_GROUP) != EMPTY_GROUP for groups in child_view.values()
        )
        group_pairs: Optional[List[Tuple]] = [EMPTY_GROUP] * self.row_count if has_groups else None
        for index, row in enumerate(self.rows):
            child_key = tuple(row[position] for position in positions)
            entries = child_view.get(child_key)
            if not entries:
                continue  # dead row: factor stays 0
            pairs, value = next(iter(entries.items()))
            factors[index] = value
            if group_pairs is not None:
                group_pairs[index] = pairs
        alignment = (factors, group_pairs)
        self._alignments[key] = alignment
        return alignment

    # -- combined key codes ------------------------------------------------------------------------

    def key_codes(
        self,
        cache_key: object,
        local_group: Sequence[Tuple[str, int]],
        child_group_sources: Sequence[List[Tuple]],
    ) -> Tuple[_np.ndarray, List[Tuple[Tuple, Tuple]]]:
        """Integer codes per row for the combination (conn key, group-by pairs)."""
        cached = self._key_codes.get(cache_key)
        if cached is not None:
            return cached
        codes = _np.empty(self.row_count, dtype=_np.int64)
        uniques: List[Tuple[Tuple, Tuple]] = []
        index_of: Dict[Tuple[Tuple, Tuple], int] = {}
        for index, row in enumerate(self.rows):
            pairs: Tuple = tuple(
                (attribute, row[position]) for attribute, position in local_group
            )
            for source in child_group_sources:
                pairs = pairs + source[index]
            combined = (self.conn_keys[index], tuple(sorted(pairs)) if pairs else EMPTY_GROUP)
            code = index_of.get(combined)
            if code is None:
                code = len(uniques)
                index_of[combined] = code
                uniques.append(combined)
            codes[index] = code
        result = (codes, uniques)
        self._key_codes[cache_key] = result
        return result


def _evaluate_vectorized(
    context: _NodeContext,
    node: JoinTreeNode,
    relation: Relation,
    signature: ViewSignature,
    designation: Mapping[str, str],
    child_views: Mapping[Tuple[str, ViewSignature], View],
) -> Optional[View]:
    """Vectorised evaluation of one signature; None when it must fall back."""
    here = node.relation_name
    schema = relation.schema
    if context.row_count == 0:
        return {}

    values = context.multiplicities.copy()

    for attribute, exponent in signature.product:
        if designation[attribute] != here:
            continue
        column = context.float_column(attribute)
        if column is None:
            return None
        values = values * (column ** exponent)

    child_group_sources: List[List[Tuple]] = []
    child_source_names: List[Tuple[str, ViewSignature]] = []
    for child in node.children:
        child_signature = restrict_signature(signature, child, designation)
        view = child_views[(child.relation_name, child_signature)]
        positions = [
            schema.index_of(attribute) for attribute in sorted(child.attributes & node.attributes)
        ]
        alignment = context.child_alignment(
            child.relation_name, child_signature, positions, view
        )
        if alignment is None:
            return None
        factors, group_pairs = alignment
        values = values * factors
        if group_pairs is not None:
            child_group_sources.append(group_pairs)
            child_source_names.append((child.relation_name, child_signature))

    mask: Optional[_np.ndarray] = None
    for condition in signature.filters:
        if designation[condition.attribute] != here:
            continue
        condition_mask = context.filter_mask(condition)
        mask = condition_mask if mask is None else (mask & condition_mask)
    if mask is not None:
        values = values * mask

    local_group = [
        (attribute, schema.index_of(attribute))
        for attribute in signature.group_by
        if designation[attribute] == here
    ]
    cache_key = (tuple(attribute for attribute, _ in local_group), tuple(child_source_names))
    codes, uniques = context.key_codes(cache_key, local_group, child_group_sources)
    sums = _np.bincount(codes, weights=values, minlength=len(uniques))

    view: View = {}
    for position, (conn_key, group_pairs) in enumerate(uniques):
        total = float(sums[position])
        if total == 0.0:
            continue
        groups = view.setdefault(conn_key, {})
        groups[group_pairs] = groups.get(group_pairs, 0.0) + total
    return view


def compute_node_views(
    node: JoinTreeNode,
    relation: Relation,
    signatures: Sequence[ViewSignature],
    designation: Mapping[str, str],
    child_views: Mapping[Tuple[str, ViewSignature], View],
    specialize: bool = True,
    share_scans: bool = True,
) -> Dict[ViewSignature, View]:
    """Compute the views for all ``signatures`` at one node.

    With ``specialize`` the evaluation is compiled to columnar numpy operations
    (with a tuple-at-a-time fallback for signatures the fast path cannot
    handle); without it every row is interpreted through dictionary lookups.
    ``share_scans=True`` shares the per-node precomputation (and the scan)
    across all signatures; otherwise each signature re-scans the relation.
    """
    conn_attributes = sorted(node.connection_attributes())
    conn_positions = [relation.schema.index_of(attribute) for attribute in conn_attributes]

    results: Dict[ViewSignature, View] = {}

    if specialize:
        context: Optional[_NodeContext] = None
        fallback: List[ViewSignature] = []
        for signature in signatures:
            if signature in results and share_scans:
                continue
            if context is None or not share_scans:
                context = _NodeContext(node, relation, conn_attributes)
            view = _evaluate_vectorized(
                context, node, relation, signature, designation, child_views
            )
            if view is None:
                fallback.append(signature)
            else:
                results[signature] = view
        remaining = fallback
    else:
        remaining = list(signatures)

    if remaining:
        tasks = [
            _prepare_task(node, relation, signature, designation, child_views)
            for signature in remaining
        ]
        task_groups: List[List[_SignatureTask]]
        if share_scans:
            task_groups = [list(tasks)]
        else:
            task_groups = [[task] for task in tasks]
        for group in task_groups:
            if specialize:
                _scan_specialized(relation, conn_positions, group)
            else:
                _scan_interpreted(relation, conn_attributes, group, node, designation)
        for task in tasks:
            results[task.signature] = task.result

    return {signature: results[signature] for signature in signatures}
