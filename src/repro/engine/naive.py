"""Baseline engines: evaluate the batch one aggregate at a time over the join.

``MaterializedJoinEngine`` models what a classical DBMS (or the
PostgreSQL-based pipeline of Figure 3) does with an aggregate batch: compute
the feature-extraction join once, then answer every aggregate with an
independent scan of the materialised result.  There is no cross-aggregate
sharing, which is exactly what Figure 4 (left) isolates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.aggregates.spec import Aggregate, AggregateBatch
from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.conjunctive import ConjunctiveQuery

AggregateValue = Union[float, Dict[Tuple, float]]


def evaluate_aggregate_over_rows(
    aggregate: Aggregate,
    rows: Sequence[Tuple[Mapping[str, object], int]],
) -> AggregateValue:
    """Evaluate one aggregate by scanning (row dict, multiplicity) pairs."""
    grouped: Dict[Tuple, float] = {}
    scalar = 0.0
    for row, multiplicity in rows:
        passes = all(condition.test(row[condition.attribute]) for condition in aggregate.filters)
        if passes and aggregate.inequality is not None:
            passes = aggregate.inequality.test(row)
        if not passes:
            continue
        value = float(multiplicity)
        for attribute in aggregate.product:
            value *= float(row[attribute])  # type: ignore[arg-type]
        if aggregate.group_by:
            key = tuple(row[attribute] for attribute in aggregate.group_by)
            grouped[key] = grouped.get(key, 0.0) + value
        else:
            scalar += value
    return grouped if aggregate.group_by else scalar


@dataclass
class NaiveBatchResult:
    """Results plus timing split into join materialisation and aggregate scans."""

    batch: AggregateBatch
    values: Dict[str, AggregateValue]
    join_seconds: float = 0.0
    aggregate_seconds: float = 0.0
    join_rows: int = 0

    @property
    def elapsed_seconds(self) -> float:
        return self.join_seconds + self.aggregate_seconds

    def __getitem__(self, name: str) -> AggregateValue:
        return self.values[name]

    def scalar(self, name: str) -> float:
        value = self.values[name]
        if isinstance(value, dict):
            raise TypeError(f"aggregate {name!r} is grouped")
        return float(value)

    def grouped(self, name: str) -> Dict[Tuple, float]:
        value = self.values[name]
        if not isinstance(value, dict):
            raise TypeError(f"aggregate {name!r} is scalar")
        return value

    def as_mapping(self) -> Dict[str, AggregateValue]:
        return dict(self.values)


class MaterializedJoinEngine:
    """One-aggregate-at-a-time evaluation over the materialised join."""

    def __init__(self, database: Database, query: ConjunctiveQuery) -> None:
        self.database = database
        self.query = query
        self._join: Optional[Relation] = None
        self._rows: Optional[List[Tuple[Dict[str, object], int]]] = None

    def materialize(self) -> Relation:
        """Materialise (and cache) the feature-extraction join."""
        if self._join is None:
            self._join = self.query.evaluate(self.database)
            names = self._join.schema.names
            self._rows = [
                (dict(zip(names, row)), multiplicity)
                for row, multiplicity in self._join.items()
            ]
        return self._join

    def invalidate(self) -> None:
        """Drop the cached join (used after updates to the base relations)."""
        self._join = None
        self._rows = None

    def evaluate(self, batch: AggregateBatch) -> NaiveBatchResult:
        started = time.perf_counter()
        joined = self.materialize()
        join_seconds = time.perf_counter() - started
        assert self._rows is not None

        values: Dict[str, AggregateValue] = {}
        started = time.perf_counter()
        for aggregate in batch:
            name = aggregate.name or "aggregate"
            if name in values:
                suffix = 2
                while f"{name}#{suffix}" in values:
                    suffix += 1
                name = f"{name}#{suffix}"
            values[name] = evaluate_aggregate_over_rows(aggregate, self._rows)
        aggregate_seconds = time.perf_counter() - started

        return NaiveBatchResult(
            batch=batch,
            values=values,
            join_seconds=join_seconds,
            aggregate_seconds=aggregate_seconds,
            join_rows=len(joined),
        )
