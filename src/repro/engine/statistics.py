"""Data statistics and the cost-based join-tree rooting optimizer.

The LMFAO-style engine decomposes an aggregate batch over a *rooted* join
tree, and the choice of root changes how much work the decomposition shares:
an aggregate whose attributes all live inside one subtree collapses, at every
node of that subtree's complement, into the same count-only view as every
other such aggregate.  Rooting at the widest relation (the seed heuristic,
typically the fact table) therefore maximises the number of *distinct*
signatures at the most expensive node — the fact table hosts one view family
per aggregate — while rooting at a small dimension lets most aggregates share
count views at the fact node.  Measured on the yelp/retailer generators the
spread between the best and worst root is 2-4x.

This module derives the statistics that make the choice data-driven — row
counts and distinct connection-key counts, read straight off the column
store's code arrays (:meth:`~repro.data.colstore.ColumnStore.distinct_count`
never materialises the distinct value tuples a planner would not read) —
and scores every candidate root with a simple analytical model:

``cost(root) = sum over nodes n of weight(n) * (rows(n) + distinct_keys(n))``

where ``distinct_keys(n)`` is the number of distinct connection-key values of
``n`` towards its parent (the size of the views flowing out of ``n``) and
``weight(n) = (1 + payload(subtree(n))) ** 2`` estimates the number of
distinct view signatures at ``n``: batches quadratic in the features (the
covariance and regression-tree batches of the paper) induce one signature per
feature pair designated inside the subtree, and ``payload`` counts the
single-relation (non-join) attributes as a feature proxy.  The model is
deliberately batch-independent so the engine can pick the root once at
construction time; forcing the seed heuristic back on is one
:class:`~repro.engine.lmfao.EngineOptions` knob away (``root_strategy``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.data.database import Database
from repro.query.join_tree import JoinTree, JoinTreeNode

__all__ = [
    "RelationStatistics",
    "RootChoice",
    "collect_statistics",
    "estimate_root_costs",
    "estimate_root_costs_for_batch",
    "choose_root",
    "choose_root_for_batch",
    "widest_relation",
]


@dataclass
class RelationStatistics:
    """Cardinality statistics of one relation, read off its column store.

    ``distinct_counts`` caches the number of distinct value combinations per
    attribute tuple; the underlying ``codes_for`` results are themselves
    cached on the relation's :class:`~repro.data.colstore.ColumnStore`, so
    collecting statistics costs nothing that evaluation would not also pay.
    """

    name: str
    row_count: int
    distinct_counts: Dict[Tuple[str, ...], int] = field(default_factory=dict)

    def distinct(self, database: Database, attributes: Tuple[str, ...]) -> int:
        """Distinct combinations of ``attributes`` in the relation."""
        key = tuple(sorted(attributes))
        count = self.distinct_counts.get(key)
        if count is None:
            store = database.relation(self.name).column_store()
            count = store.distinct_count(key)
            self.distinct_counts[key] = count
        return count


@dataclass(frozen=True)
class RootChoice:
    """The outcome of the root optimisation: the pick plus its evidence."""

    root: str
    strategy: str                     # "cost" or "widest" (the fallback)
    costs: Mapping[str, float]        # estimated cost per candidate root

    def ranked(self) -> List[Tuple[str, float]]:
        """Candidates from cheapest to most expensive (ties by name)."""
        return sorted(self.costs.items(), key=lambda item: (item[1], item[0]))


def collect_statistics(
    database: Database, join_tree: JoinTree
) -> Dict[str, RelationStatistics]:
    """Row-count statistics for every relation of the join tree."""
    return {
        node.relation_name: RelationStatistics(
            name=node.relation_name,
            row_count=len(database.relation(node.relation_name)),
        )
        for node in join_tree.nodes()
    }


def _payloads(join_tree: JoinTree) -> Dict[str, int]:
    """Per relation: the number of its attributes owned by no other relation.

    Join attributes (shared by two or more relations) carry no aggregation
    payload of their own; the single-relation attributes proxy the features a
    batch can designate to the relation.
    """
    owners: Dict[str, int] = {}
    for node in join_tree.nodes():
        for attribute in node.attributes:
            owners[attribute] = owners.get(attribute, 0) + 1
    return {
        node.relation_name: sum(
            1 for attribute in node.attributes if owners[attribute] == 1
        )
        for node in join_tree.nodes()
    }


def _subtree_weights(
    root: JoinTreeNode, payloads: Mapping[str, int]
) -> Dict[str, float]:
    """``(1 + subtree payload) ** 2`` per node: the signature-count estimate."""
    weights: Dict[str, float] = {}

    def visit(node: JoinTreeNode) -> int:
        total = payloads[node.relation_name]
        for child in node.children:
            total += visit(child)
        weights[node.relation_name] = float(1 + total) ** 2
        return total

    visit(root)
    return weights


def estimate_root_costs(
    database: Database,
    join_tree: JoinTree,
    statistics: Optional[Dict[str, RelationStatistics]] = None,
) -> Dict[str, float]:
    """Estimated view-family work for every candidate root of the join tree.

    For each candidate the tree is re-rooted and every node ``n`` contributes
    ``weight(n) * (rows(n) + distinct_keys(n))``, where ``distinct_keys(n)``
    is the distinct count of ``n``'s connection key towards its parent (zero
    at the root) and ``weight(n)`` the quadratic subtree-payload estimate of
    the number of distinct signatures evaluated at ``n`` (see the module
    docstring).  Distinct counts come from the relations' cached column
    stores, so repeated calls — and the evaluation that follows — share the
    encodings.
    """
    if statistics is None:
        statistics = collect_statistics(database, join_tree)
    payloads = _payloads(join_tree)

    costs: Dict[str, float] = {}
    for candidate in join_tree.relation_names:
        tree = (
            join_tree
            if join_tree.root.relation_name == candidate
            else join_tree.rerooted(candidate)
        )
        weights = _subtree_weights(tree.root, payloads)
        total = 0.0
        for node in tree.nodes():
            stats = statistics[node.relation_name]
            connection = tuple(sorted(node.connection_attributes()))
            distinct_keys = (
                stats.distinct(database, connection) if connection else 0
            )
            total += weights[node.relation_name] * (stats.row_count + distinct_keys)
        costs[candidate] = total
    return costs


def widest_relation(database: Database, relation_names) -> str:
    """The seed heuristic: root at the widest (then largest) relation."""
    return max(
        relation_names,
        key=lambda name: (
            database.relation(name).arity,
            len(database.relation(name)),
            name,
        ),
    )


def estimate_root_costs_for_batch(
    database: Database,
    join_tree: JoinTree,
    batch,
    statistics: Optional[Dict[str, RelationStatistics]] = None,
) -> Dict[str, float]:
    """Batch-aware root costs: the *planned* signature counts replace the proxy.

    Where :func:`estimate_root_costs` estimates the number of distinct view
    signatures per node with the quadratic subtree-payload proxy (so the root
    can be fixed before any batch is seen), this variant actually *plans* the
    given batch over every candidate rooting (one
    :func:`~repro.engine.plan.plan_batch` call each — cheap: no data is
    touched) and charges every node its true deduplicated signature count:

    ``cost(root) = sum over nodes n of |signatures(n)| * (rows(n) + distinct_keys(n))``

    The difference shows up for batches whose sharing pattern the proxy
    cannot see — e.g. heavily filtered or narrow batches designating far
    fewer features than the schema offers.
    """
    from repro.engine.plan import plan_batch

    if statistics is None:
        statistics = collect_statistics(database, join_tree)
    costs: Dict[str, float] = {}
    for candidate in join_tree.relation_names:
        tree = (
            join_tree
            if join_tree.root.relation_name == candidate
            else join_tree.rerooted(candidate)
        )
        plan = plan_batch(batch, tree, share_views=True)
        total = 0.0
        for node in tree.nodes():
            stats = statistics[node.relation_name]
            connection = tuple(sorted(node.connection_attributes()))
            distinct_keys = (
                stats.distinct(database, connection) if connection else 0
            )
            signatures = len(plan.views_per_node[node.relation_name])
            total += signatures * (stats.row_count + distinct_keys)
        costs[candidate] = total
    return costs


def choose_root_for_batch(database: Database, join_tree: JoinTree, batch) -> RootChoice:
    """Pick the cheapest root for one concrete batch (planned, not proxied).

    Falls back exactly like :func:`choose_root` when the statistics are
    uninformative (an empty database makes every candidate cost the same).
    """
    costs = estimate_root_costs_for_batch(database, join_tree, batch)
    if len(set(costs.values())) <= 1:
        return RootChoice(
            root=widest_relation(database, join_tree.relation_names),
            strategy="widest",
            costs=costs,
        )
    root = min(costs.items(), key=lambda item: (item[1], item[0]))[0]
    return RootChoice(root=root, strategy="cost-batch", costs=costs)


def choose_root(database: Database, join_tree: JoinTree) -> RootChoice:
    """Pick the cheapest root by estimated cost, with a degenerate fallback.

    When the statistics are uninformative — every relation is empty, so all
    candidates cost the same — the choice falls back to the widest-relation
    heuristic so that e.g. IVM maintainers built over an initially empty
    database keep the seed behaviour instead of an arbitrary alphabetical
    tie-break.
    """
    costs = estimate_root_costs(database, join_tree)
    if len(set(costs.values())) <= 1:
        return RootChoice(
            root=widest_relation(database, join_tree.relation_names),
            strategy="widest",
            costs=costs,
        )
    root = min(costs.items(), key=lambda item: (item[1], item[0]))[0]
    return RootChoice(root=root, strategy="cost", costs=costs)
