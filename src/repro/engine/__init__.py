"""LMFAO-style layered aggregate engine (the paper's core systems contribution).

The engine evaluates a *batch* of group-by sum-product aggregates directly
over the input relations, never materialising the feature-extraction join.
Each aggregate is decomposed top-down over a join tree into per-node views
(partial aggregates); views with identical structure are shared across the
batch; views at the same node share the scan of the node's relation; and view
groups without dependencies can be evaluated in parallel (Section 4).
"""

from repro.engine.plan import AggregateDecomposition, ViewSignature, plan_batch
from repro.engine.lmfao import BatchResult, EngineOptions, LMFAOEngine
from repro.engine.naive import MaterializedJoinEngine
from repro.engine.statistics import (
    RelationStatistics,
    RootChoice,
    choose_root,
    choose_root_for_batch,
    collect_statistics,
    estimate_root_costs,
    estimate_root_costs_for_batch,
)

__all__ = [
    "LMFAOEngine",
    "EngineOptions",
    "BatchResult",
    "MaterializedJoinEngine",
    "ViewSignature",
    "AggregateDecomposition",
    "plan_batch",
    "RelationStatistics",
    "RootChoice",
    "choose_root",
    "choose_root_for_batch",
    "collect_statistics",
    "estimate_root_costs",
    "estimate_root_costs_for_batch",
]
