"""Planning: decomposing an aggregate batch over a join tree.

Every attribute of the query is *designated* to exactly one join-tree node
(the deepest node whose relation contains it), so that each attribute
contributes its factor, group-by key or filter exactly once.  The restriction
of an aggregate to the subtree rooted at a node — its :class:`ViewSignature` —
determines the partial view computed at that node.  Aggregates with equal
signatures at a node share the view; this is the cross-aggregate sharing that
LMFAO exploits (Section 4, "Sharing computation").

How much sharing the designation yields depends on where the join tree is
rooted: an aggregate whose attributes all sit inside one subtree collapses to
the count-only signature at every node outside it.  The rooting decision
itself is made before planning, by the cost model of
:mod:`repro.engine.statistics`; signatures double as the keys of the engine's
cross-evaluate view cache, which is why they are immutable, hash-cached and
independent of any particular batch object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.aggregates.spec import Aggregate, AggregateBatch, Filter
from repro.query.join_tree import JoinTree, JoinTreeNode


@dataclass(frozen=True)
class ViewSignature:
    """The restriction of an aggregate to the subtree of one join-tree node.

    Two aggregates with the same signature at a node need the same partial
    view there and therefore share its computation.
    """

    relation_name: str
    product: Tuple[Tuple[str, int], ...]       # (attribute, exponent), sorted
    group_by: Tuple[str, ...]                   # sorted group-by attributes in the subtree
    filters: Tuple[Filter, ...]                 # filters on attributes in the subtree, sorted

    def __hash__(self) -> int:
        # Signatures are hashed constantly (sharing, families, view maps);
        # caching beats re-hashing the nested field tuples every time.
        value = self.__dict__.get("_hash")
        if value is None:
            value = hash((self.relation_name, self.product, self.group_by, self.filters))
            object.__setattr__(self, "_hash", value)
        return value

    def is_count_only(self) -> bool:
        """True when the view degenerates to a per-key COUNT."""
        return not self.product and not self.group_by and not self.filters


@dataclass
class AggregateDecomposition:
    """Where each attribute of one aggregate is handled in the join tree."""

    aggregate: Aggregate
    signatures: Dict[str, ViewSignature]        # relation name -> signature at that node
    root_signature: ViewSignature

    def signature_at(self, relation_name: str) -> ViewSignature:
        return self.signatures[relation_name]


@dataclass
class BatchPlan:
    """The full plan for a batch: designations, signatures, and view groups."""

    join_tree: JoinTree
    designation: Dict[str, str]                               # attribute -> relation name
    decompositions: List[AggregateDecomposition]
    views_per_node: Dict[str, List[ViewSignature]]            # relation name -> distinct signatures
    unsupported: List[Aggregate] = field(default_factory=list)

    @property
    def total_views(self) -> int:
        return sum(len(signatures) for signatures in self.views_per_node.values())

    @property
    def total_views_without_sharing(self) -> int:
        return len(self.decompositions) * len(self.views_per_node)

    def sharing_factor(self) -> float:
        """How many per-aggregate views collapse into one shared view on average."""
        if self.total_views == 0:
            return 1.0
        return self.total_views_without_sharing / self.total_views

    def summary(self) -> Dict[str, float]:
        return {
            "aggregates": len(self.decompositions),
            "nodes": len(self.views_per_node),
            "views": self.total_views,
            "views_without_sharing": self.total_views_without_sharing,
            "sharing_factor": round(self.sharing_factor(), 2),
            "unsupported": len(self.unsupported),
        }


def designate_attributes(join_tree: JoinTree) -> Dict[str, str]:
    """Assign every attribute to the deepest join-tree node containing it.

    Depth ties are broken by relation name so the designation is deterministic.
    """
    depths: Dict[str, int] = {}

    def assign_depths(node: JoinTreeNode, depth: int) -> None:
        depths[node.relation_name] = depth
        for child in node.children:
            assign_depths(child, depth + 1)

    assign_depths(join_tree.root, 0)

    designation: Dict[str, str] = {}
    for node in join_tree.nodes():
        for attribute in node.attributes:
            current = designation.get(attribute)
            if current is None:
                designation[attribute] = node.relation_name
                continue
            current_rank = (depths[current], current)
            candidate_rank = (depths[node.relation_name], node.relation_name)
            if candidate_rank > current_rank:
                designation[attribute] = node.relation_name
    return designation


def _signature_for_subtree(
    aggregate: Aggregate,
    node: JoinTreeNode,
    designation: Mapping[str, str],
    subtree_relations: Optional[FrozenSet[str]] = None,
) -> ViewSignature:
    """The restriction of ``aggregate`` to the nodes of ``node``'s subtree."""
    if subtree_relations is None:
        subtree_relations = frozenset(child.relation_name for child in node.subtree_nodes())

    product_counts: Dict[str, int] = {}
    for attribute, exponent in aggregate.product_multiplicities().items():
        if designation[attribute] in subtree_relations:
            product_counts[attribute] = exponent
    group_by = tuple(
        sorted(
            attribute
            for attribute in aggregate.group_by
            if designation[attribute] in subtree_relations
        )
    )
    filters = tuple(
        sorted(
            (
                condition
                for condition in aggregate.filters
                if designation[condition.attribute] in subtree_relations
            ),
            key=lambda condition: (condition.attribute, condition.op.value, str(condition.value)),
        )
    )
    return ViewSignature(
        relation_name=node.relation_name,
        product=tuple(sorted(product_counts.items())),
        group_by=group_by,
        filters=filters,
    )


def decompose_aggregate(
    aggregate: Aggregate,
    join_tree: JoinTree,
    designation: Mapping[str, str],
    subtree_relations: Optional[Mapping[str, FrozenSet[str]]] = None,
) -> AggregateDecomposition:
    """Decompose one aggregate into its per-node view signatures."""
    signatures = {
        node.relation_name: _signature_for_subtree(
            aggregate,
            node,
            designation,
            subtree_relations.get(node.relation_name) if subtree_relations else None,
        )
        for node in join_tree.nodes()
    }
    return AggregateDecomposition(
        aggregate=aggregate,
        signatures=signatures,
        root_signature=signatures[join_tree.root.relation_name],
    )


def plan_batch(
    batch: AggregateBatch,
    join_tree: JoinTree,
    share_views: bool = True,
) -> BatchPlan:
    """Plan a batch over a join tree.

    With ``share_views`` the distinct signatures per node are deduplicated
    (LMFAO's sharing); without it every aggregate keeps its own copies, which
    models the baseline engines that evaluate the batch one aggregate at a
    time.  Aggregates with additive-inequality conditions cannot be pushed
    past joins and are reported in ``unsupported`` so the engine can fall back
    to evaluation over the join for them.
    """
    known_attributes = set(join_tree.attributes())
    designation = designate_attributes(join_tree)
    subtree_relations = {
        node.relation_name: frozenset(
            child.relation_name for child in node.subtree_nodes()
        )
        for node in join_tree.nodes()
    }
    decompositions: List[AggregateDecomposition] = []
    unsupported: List[Aggregate] = []

    for aggregate in batch:
        if aggregate.inequality is not None:
            unsupported.append(aggregate)
            continue
        missing = [
            attribute for attribute in aggregate.attributes() if attribute not in known_attributes
        ]
        if missing:
            raise ValueError(
                f"aggregate {aggregate.name!r} references attributes {missing} "
                "that do not occur in the query"
            )
        decompositions.append(
            decompose_aggregate(aggregate, join_tree, designation, subtree_relations)
        )

    views_per_node: Dict[str, List[ViewSignature]] = {
        node.relation_name: [] for node in join_tree.nodes()
    }
    seen_per_node: Dict[str, set] = {name: set() for name in views_per_node}
    for decomposition in decompositions:
        for relation_name, signature in decomposition.signatures.items():
            if share_views:
                seen = seen_per_node[relation_name]
                if signature not in seen:
                    seen.add(signature)
                    views_per_node[relation_name].append(signature)
            else:
                views_per_node[relation_name].append(signature)

    return BatchPlan(
        join_tree=join_tree,
        designation=designation,
        decompositions=decompositions,
        views_per_node=views_per_node,
        unsupported=unsupported,
    )
