"""Reusable columnar delta machinery: CSR grouping and join-key alignment.

The vectorised executor joins child views through CSR-style offset tables and
matches join keys in code space; the batched IVM path propagates *delta
relations* through the join tree with exactly the same primitives.  This
module is the shared home for that machinery:

- :func:`match_key_columns` — vectorised key matching between two typed key
  dictionaries (factored out of :mod:`repro.engine.executor`);
- :func:`csr_from_codes` — group the rows of a store by key code into
  ``(offsets, order)`` CSR form;
- :func:`expand_matches` — the `np.repeat` expansion joining a coded item
  array against a CSR table (items with code ``-1`` drop out);
- :func:`key_codes_for` — align arbitrary key tuples with a
  :class:`~repro.data.colstore.ColumnStore`'s code space, typed-vectorised
  when possible and via the store's cached key index otherwise.

Since PR 4 it also hosts the *multi-delta pass* primitives shared by the
fused IVM propagation:

- :func:`merge_keyed_deltas` — deterministically merge several keyed payload
  blocks (the per-relation deltas arriving at one join-tree node) into one;
- :func:`subtree_schedule` — the level/parent-group traversal plan a fused
  leaf-to-root pass follows, which is also the unit of independence the
  subtree scheduler parallelises over.

Everything here is pure array manipulation over dictionary-encoded keys —
no per-row Python on any hot path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.colstore import ColumnStore, as_sortable_array

__all__ = [
    "match_key_columns",
    "csr_from_codes",
    "expand_matches",
    "key_codes_for",
    "typed_key_columns",
    "merge_keyed_deltas",
    "rows_matching_keys",
    "subtree_schedule",
]


def rows_matching_keys(
    store: ColumnStore, attributes: Sequence[str], keys
) -> np.ndarray:
    """Boolean row mask of the store rows whose key tuple is in ``keys``.

    The delta-refresh and root-patching paths all restrict a relation to the
    rows joining a small set of affected keys; this is their shared
    key-index probe + ``np.isin`` over the cached key codes.
    """
    codes, _tuples = store.codes_for(attributes)
    index = store.key_index(attributes)
    matched = [index[key] for key in keys if key in index]
    if not matched:
        return np.zeros(store.row_count, dtype=bool)
    return np.isin(codes, np.asarray(matched, dtype=np.int64))


def match_key_columns(
    parent_columns: List[np.ndarray], child_columns: List[np.ndarray]
) -> Optional[np.ndarray]:
    """Vectorised key matching: child slot (or -1) per parent key combination.

    Both sides are re-coded per attribute into the shared value domain (one
    ``np.unique`` over the concatenated dictionaries), the per-attribute codes
    are mixed arithmetically, and the parent's mixed codes are located among
    the child's via ``searchsorted`` — no per-key Python at all.
    """
    parent_mixed: Optional[np.ndarray] = None
    child_mixed: Optional[np.ndarray] = None
    capacity = 1
    for parent, child in zip(parent_columns, child_columns):
        parent_kind = parent.dtype.kind
        child_kind = child.dtype.kind
        if (parent_kind in "iufb") != (child_kind in "iufb"):
            return None
        if (parent_kind in "iub") != (child_kind in "iub"):
            # One integer side, one float side: concatenation would promote
            # to float64 and collapse distinct integers beyond 2**53 —
            # Python equality would keep them apart.  Probe the dictionary.
            return None
        domain = np.unique(np.concatenate((parent, child)))
        capacity *= max(int(domain.size), 1)
        if capacity > 2 ** 62:
            return None
        parent_codes = np.searchsorted(domain, parent)
        child_codes = np.searchsorted(domain, child)
        if parent_mixed is None:
            parent_mixed, child_mixed = parent_codes, child_codes
        else:
            parent_mixed = parent_mixed * domain.size + parent_codes
            child_mixed = child_mixed * domain.size + child_codes
    if parent_mixed is None or child_mixed is None:
        return None
    if child_mixed.size == 0:
        return np.full(parent_mixed.size, -1, dtype=np.int64)
    order = np.argsort(child_mixed)
    ordered = child_mixed[order]
    positions = np.searchsorted(ordered, parent_mixed)
    inside = positions < ordered.size
    clipped = np.where(inside, positions, 0)
    matches = inside & (ordered[clipped] == parent_mixed)
    return np.where(matches, order[clipped], -1).astype(np.int64, copy=False)


def csr_from_codes(codes: np.ndarray, size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Group row positions by key code: ``(offsets, order)`` in CSR form.

    ``order[offsets[code] : offsets[code + 1]]`` are the row positions whose
    key has ``code``; built with one stable argsort, no Python loop.
    """
    order = np.argsort(codes, kind="stable")
    counts = np.bincount(codes, minlength=size)
    offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64, copy=False)
    return offsets, order.astype(np.int64, copy=False)


def expand_matches(
    item_codes: np.ndarray, offsets: np.ndarray, order: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Join items against a CSR table: ``(item_index, member_row)`` pairs.

    ``item_codes[i]`` is item ``i``'s key code in the table's code space (or
    ``-1`` for no match).  Item ``i`` expands into one output pair per member
    row of its bucket; items with empty buckets or code ``-1`` disappear —
    the CSR analogue of a join dropping dangling tuples.
    """
    live = item_codes >= 0
    counts = np.zeros(item_codes.size, dtype=np.int64)
    if live.any():
        bucket_sizes = offsets[1:] - offsets[:-1]
        counts[live] = bucket_sizes[item_codes[live]]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    item_index = np.repeat(np.arange(item_codes.size, dtype=np.int64), counts)
    starts = np.zeros(item_codes.size, dtype=np.int64)
    starts[live] = offsets[item_codes[live]]
    exclusive = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(exclusive, counts)
    member_rows = order[np.repeat(starts, counts) + within]
    return item_index, member_rows


def merge_keyed_deltas(contributions, concatenate: Callable):
    """Merge keyed payload blocks into one ``(keys, block)`` delta.

    ``contributions`` is a non-empty sequence of ``(keys, block)`` pairs — the
    deltas arriving at one join-tree node from its children plus its own
    update group.  The merged key list holds every distinct key in
    first-seen order (contribution order, then key order within each), and
    the merged block sums the rows of equal keys via the block's
    ``segment_sum``; ``concatenate`` stacks the blocks (payload-type
    specific, e.g. ``CovarianceBlock.concatenate``).  Both the key order and
    the floating-point reduction order are therefore fully determined by the
    contribution order, which is what keeps the parallel subtree schedule
    bit-identical to the sequential pass.
    """
    if len(contributions) == 1:
        return contributions[0]
    first_keys = contributions[0][0]
    if all(keys == first_keys for keys, _block in contributions[1:]):
        # Identical key lists (e.g. every contribution targets the root's
        # single empty key): elementwise block addition, no re-coding.
        merged = contributions[0][1]
        for _keys, block in contributions[1:]:
            merged = merged.add(block)
        return first_keys, merged
    index: Dict[Tuple, int] = {}
    merged_keys: List[Tuple] = []
    codes: List[int] = []
    for keys, _block in contributions:
        for key in keys:
            code = index.get(key)
            if code is None:
                code = len(merged_keys)
                index[key] = code
                merged_keys.append(key)
            codes.append(code)
    stacked = concatenate([block for _keys, block in contributions])
    merged = stacked.segment_sum(
        np.asarray(codes, dtype=np.int64), len(merged_keys)
    )
    return merged_keys, merged


def subtree_schedule(join_tree) -> List[List[List]]:
    """The traversal plan of a fused leaf-to-root multi-delta pass.

    Returns the join tree's nodes as *levels* in deepest-first order; each
    level is a list of *parent groups* — the nodes of the level sharing one
    parent, in the parent's child order.  Two groups of one level touch
    disjoint state during a propagation hop (each node writes its own view
    and its own parent's pending delta, and reads only sibling views inside
    its group), so groups are the unit the subtree scheduler may dispatch
    concurrently; *within* a group the order is significant — a node's delta
    must land in its view before a later sibling's hop reads it.
    """
    levels: Dict[int, Dict[Optional[str], List]] = {}

    def visit(node, depth: int) -> None:
        parent = node.parent.relation_name if node.parent is not None else None
        levels.setdefault(depth, {}).setdefault(parent, []).append(node)
        for child in node.children:
            visit(child, depth + 1)

    visit(join_tree.root, 0)
    return [
        list(levels[depth].values()) for depth in sorted(levels, reverse=True)
    ]


def typed_key_columns(keys: Sequence[Tuple]) -> Optional[List[np.ndarray]]:
    """Per-position typed arrays over a list of key tuples (None when mixed)."""
    if not keys or not keys[0]:
        return None
    columns = [
        as_sortable_array([key[position] for key in keys])
        for position in range(len(keys[0]))
    ]
    if any(column is None for column in columns):
        return None
    return columns  # type: ignore[return-value]


def key_codes_for(
    keys: Sequence[Tuple], store: ColumnStore, attributes: Tuple[str, ...]
) -> np.ndarray:
    """Code (or -1) of each key tuple in ``store``'s key space for ``attributes``.

    Keys whose positions all reduce to comparable typed arrays are matched
    fully vectorised against the store's key columns; anything else probes
    the store's cached key index once per key.
    """
    if attributes:
        store_columns = store.key_columns(attributes)
        if store_columns is not None:
            columns = typed_key_columns(keys)
            if columns is not None:
                mapped = match_key_columns(columns, store_columns)
                if mapped is not None:
                    return mapped
    index = store.key_index(attributes)
    get = index.get
    return np.fromiter(
        (get(key, -1) for key in keys), dtype=np.int64, count=len(keys)
    )
