"""Columnar payload views for the IVM layer.

A :class:`PayloadStore` is the columnar replacement for the seed's
``Dict[Tuple, CovariancePayload]`` view: the join keys live in a dictionary
mapping each key tuple to a *slot*, and the payloads of all slots are held as
one stacked :class:`~repro.rings.covariance.CovarianceBlock` (count/sums/
quadratic arrays with amortised-doubling capacity).  The batched delta path
gathers and scatters whole :class:`CovarianceBlock`\\ s by slot arrays; the
per-tuple path reads and writes single slots through the same storage, so
both code paths maintain one state.

Keys are never evicted when their payload cancels to zero — exactly the
behaviour of the seed's dict views, whose entries also lingered at zero — so
the store size is bounded by the number of distinct join keys ever seen.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels import get_kernels
from repro.rings.covariance import CovarianceBlock, CovariancePayload

#: The stable kernel-dispatch singleton: `set_backend` rebinds its
#: attributes in place, so a module-level binding still sees every switch
#: while the hot loops skip one function call per kernel invocation.
_KERNELS = get_kernels()


__all__ = ["PayloadStore"]


class PayloadStore:
    """Key-coded covariance payloads: one slot per join key, stacked arrays."""

    __slots__ = ("dimension", "_slots", "_keys", "counts", "sums", "moments",
                 "support")

    def __init__(self, dimension: int, capacity: int = 8) -> None:
        self.dimension = dimension
        self._slots: Dict[Tuple, int] = {}
        self._keys: List[Tuple] = []
        capacity = max(int(capacity), 1)
        self.counts = np.zeros(capacity)
        self.sums = np.zeros((capacity, dimension))
        self.moments = np.zeros((capacity, dimension, dimension))
        #: Feature positions this store's payloads can be nonzero at, when
        #: the owner knows them (a view's payloads only involve the features
        #: designated inside its subtree).  None means unknown/dense; ring
        #: consumers use small supports to skip dense outer products.
        self.support: Optional[Tuple[int, ...]] = None

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._slots

    def keys(self) -> List[Tuple]:
        return list(self._keys)

    # -- capacity ------------------------------------------------------------------------

    def _grow_to(self, size: int) -> None:
        capacity = self.counts.shape[0]
        if size <= capacity:
            return
        while capacity < size:
            capacity *= 2
        counts = np.zeros(capacity)
        sums = np.zeros((capacity, self.dimension))
        moments = np.zeros((capacity, self.dimension, self.dimension))
        used = self.counts.shape[0]
        counts[:used] = self.counts
        sums[:used] = self.sums
        moments[:used] = self.moments
        self.counts, self.sums, self.moments = counts, sums, moments

    # -- slot resolution -----------------------------------------------------------------

    def slot_of(self, key: Tuple, create: bool = False) -> int:
        """The slot of ``key`` (-1 when absent and ``create`` is off)."""
        slot = self._slots.get(key)
        if slot is None:
            if not create:
                return -1
            slot = len(self._keys)
            self._slots[key] = slot
            self._keys.append(key)
            self._grow_to(slot + 1)
        return slot

    def slots_for(self, keys: Sequence[Tuple], create: bool = False) -> np.ndarray:
        """Slot per key (-1 for misses), probing the key dictionary once each."""
        get = self._slots.get
        if not create:
            # A list comprehension beats fromiter-over-generator here (no
            # generator frame per probe), and this is the hot join probe.
            return np.array([get(key, -1) for key in keys], dtype=np.int64)
        return np.array(
            [self.slot_of(key, create=True) for key in keys], dtype=np.int64
        )

    # -- per-tuple access (the single-update path) ---------------------------------------

    def get(self, key: Tuple) -> Optional[CovariancePayload]:
        slot = self._slots.get(key)
        if slot is None:
            return None
        return CovariancePayload(
            float(self.counts[slot]), self.sums[slot].copy(), self.moments[slot].copy()
        )

    def peek(self, key: Tuple) -> Optional[CovariancePayload]:
        """Like :meth:`get` but aliasing the store's arrays (no copies).

        For transient use as a ring-operation operand only — the arrays are
        the live storage and later slot updates write through them.
        """
        slot = self._slots.get(key)
        if slot is None:
            return None
        return CovariancePayload(
            float(self.counts[slot]), self.sums[slot], self.moments[slot]
        )

    def add(self, key: Tuple, payload: CovariancePayload) -> None:
        slot = self.slot_of(key, create=True)
        self.counts[slot] += payload.count
        self.sums[slot] += payload.sums
        self.moments[slot] += payload.moments

    # -- block access (the batched path) -------------------------------------------------

    def gather(self, slots: np.ndarray) -> CovarianceBlock:
        """The payload stack at the given slots (all must be valid)."""
        return CovarianceBlock(
            self.counts[slots], self.sums[slots], self.moments[slots]
        )

    def gather_point(
        self, slots: np.ndarray, position: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Counts, sums and squared moments at one feature position.

        For single-feature-support stores (see :attr:`support`): three thin
        columns describe the payloads completely, so consumers gather
        ``O(k)`` floats instead of a full ``(k, d, d)`` stack and multiply
        through :meth:`~repro.rings.covariance.CovarianceBlock.multiply_point`.
        """
        return (
            self.counts[slots],
            self.sums[slots, position],
            self.moments[slots, position, position],
        )

    def multiply_into(self, block: CovarianceBlock, slots: np.ndarray) -> CovarianceBlock:
        """``block[i] * payload(slots[i])``, exploiting a known small support."""
        support = self.support
        if support is not None and len(support) == 0:
            # Count-only payloads: the ring product collapses to a scale.
            return block.scale(self.counts[slots])
        if support is not None and len(support) == 1:
            position = support[0]
            return block.multiply_point(*self.gather_point(slots, position), position)
        return block.multiply(self.gather(slots))

    def multiply_into_total(
        self, block: CovarianceBlock, slots: np.ndarray
    ) -> CovarianceBlock:
        """:meth:`multiply_into` fused with a sum-to-one-row reduction.

        The terminal multiply of a delta collapsing onto a single connection
        key; dispatches to the fused dot-product kernels so no ``(k, d, d)``
        intermediate is materialised.
        """
        support = self.support
        if support is not None and len(support) == 0:
            return block.scale_total(self.counts[slots])
        if support is not None and len(support) == 1:
            position = support[0]
            return block.multiply_point_total(
                *self.gather_point(slots, position), position
            )
        return block.multiply_total(self.gather(slots))

    def multiply_scratch(self, scratch, slot: int) -> None:
        """``scratch *= payload(slot)`` in place, exploiting a known support.

        The per-tuple counterpart of :meth:`multiply_into`; ``scratch`` is a
        :class:`~repro.rings.covariance.PayloadScratch`.  Calls the scratch
        kernels of the active :mod:`repro.kernels` backend directly (no
        method hop) — this is the hottest per-update chain.
        """
        support = self.support
        if support is not None and len(support) == 0:
            scratch.scale_by(self.counts[slot])
            return
        if support is not None and len(support) == 1:
            position = support[0]
            scratch.count = _KERNELS.scratch_multiply_point(
                scratch.count,
                scratch.sums,
                scratch.moments,
                self.counts[slot],
                self.sums[slot, position],
                self.moments[slot, position, position],
                position,
            )
            return
        scratch.count = _KERNELS.scratch_multiply_dense(
            scratch.count,
            scratch.sums,
            scratch.moments,
            self.counts[slot],
            self.sums[slot],
            self.moments[slot],
        )

    def add_scratch(self, key: Tuple, scratch) -> None:
        """Add a scratch payload into one slot (creating the key if new)."""
        slot = self.slot_of(key, create=True)
        self.counts[slot] += scratch.count
        self.sums[slot] += scratch.sums
        self.moments[slot] += scratch.moments

    def scatter_add(self, keys: Sequence[Tuple], block: CovarianceBlock) -> np.ndarray:
        """Add one block row per (distinct) key; returns the slot array used."""
        if len(keys) == 1:
            # The root's single empty key is the hottest scatter: basic
            # indexing beats a one-element fancy-index add.
            slot = self.slot_of(keys[0], create=True)
            self.counts[slot] += block.counts[0]
            self.sums[slot] += block.sums[0]
            self.moments[slot] += block.moments[0]
            return np.array([slot], dtype=np.int64)
        slots = self.slots_for(keys, create=True)
        self.counts[slots] += block.counts
        self.sums[slots] += block.sums
        self.moments[slots] += block.moments
        return slots
