"""Shared infrastructure for the IVM strategies.

All maintainers keep their own copies of the base relations (starting from an
initially empty database, as in the paper's streaming experiment), accept
signed tuple updates, and expose the maintained covariance statistics over the
continuous features of the feature-extraction join.

Updates arrive one at a time (:meth:`CovarianceMaintainer.apply`) or as
batches (:meth:`CovarianceMaintainer.apply_batch`).  A batch is itself a
*delta relation*: :meth:`apply_batch` nets out multiplicities per tuple,
groups the batch per relation, encodes each group as a delta
:class:`~repro.data.colstore.ColumnStore`, and hands it to the strategy —
either one vectorised propagation per touched relation
(``_apply_delta_group``) or, for strategies flagging
``supports_fused_deltas``, one *fused multi-delta pass* over the whole join
tree (``_apply_multi_delta``) that carries every touched relation's delta in
a single leaf-to-root traversal.  Grouping is sound because the delta effect
on any view is *linear* in the delta of a single relation (a group's tuples
never join against their own relation), and the final state is
order-independent across relations (every maintainer invariant is a
function of the base relations alone); the fused pass realises the
telescoped form of that sum (new views before the current child, old views
after it), so it lands on the same state in one traversal.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.colstore import ColumnStore
from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.deltas import csr_from_codes, key_codes_for
from repro.kernels import kernel_stats, kernel_stats_enabled
from repro.engine.statistics import choose_root
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.join_tree import JoinTree, JoinTreeNode, build_join_tree
from repro.rings.covariance import CovarianceBlock, CovariancePayload, CovarianceRing


@dataclass(frozen=True)
class Update:
    """A signed tuple update: +1 multiplicity inserts, -1 deletes."""

    relation_name: str
    row: Tuple
    multiplicity: int = 1


def net_update_stream(
    database: Database, updates: Iterable[Update]
) -> List[Tuple[str, List[Tuple], List[int]]]:
    """Net a batch per (relation, row) against ``database``'s schemas.

    The shared netting step behind :meth:`CovarianceMaintainer.net_updates`
    and :class:`repro.sharding.ShardedMaintainer` — netting happens exactly
    once, whoever routes the groups afterwards.  Returns
    ``(relation_name, rows, multiplicities)`` groups with relations in
    first-touched order, rows in first-seen order and zero-netting rows
    dropped; raises (without side effects) if any update's arity disagrees
    with its relation's schema.
    """
    arities: Dict[str, int] = {}
    schemas: Dict[str, Sequence[str]] = {}
    grouped: Dict[str, Dict[Tuple, int]] = {}
    grouped_get = grouped.get
    for update in updates:
        name = update.relation_name
        row = update.row
        bucket = grouped_get(name)
        if bucket is None:
            bucket = grouped[name] = {}
            relation = database.relation(name)
            arities[name] = relation.arity
            schemas[name] = list(relation.schema.names)
        if len(row) != arities[name]:
            raise ValueError(
                f"update row {row!r} has arity {len(row)}, but relation "
                f"{name!r} has schema {schemas[name]} (arity {arities[name]})"
            )
        bucket[row] = bucket.get(row, 0) + update.multiplicity
    groups: List[Tuple[str, List[Tuple], List[int]]] = []
    for relation_name, bucket in grouped.items():
        rows: List[Tuple] = []
        netted: List[int] = []
        for row, multiplicity in bucket.items():
            if multiplicity != 0:
                rows.append(row)
                netted.append(multiplicity)
        if rows:
            groups.append((relation_name, rows, netted))
    return groups


def recompute_covariance(
    query: ConjunctiveQuery,
    database: Database,
    features: Sequence[str],
    ring: CovarianceRing,
) -> CovariancePayload:
    """Evaluate ``query`` over ``database`` and lift the result into the ring.

    The from-scratch ground truth shared by
    :meth:`CovarianceMaintainer.recompute_statistics` and the sharded facade:
    the join result is read through its dictionary-encoded column store, so
    count, sums and the quadratic form are three matrix expressions over the
    feature columns instead of a Python loop over tuples.
    """
    joined = query.evaluate(database)
    store = joined.column_store()
    columns = [store.float_column(feature) for feature in features]
    if store.row_count and all(column is not None for column in columns):
        weights = store.multiplicities
        if columns:
            data = np.stack(columns, axis=1)          # (rows, features)
            weighted = data * weights[:, None]
            return CovariancePayload(
                float(weights.sum()), weighted.sum(axis=0), data.T @ weighted
            )
        return CovariancePayload(float(weights.sum()), np.zeros(0), np.zeros((0, 0)))
    names = joined.schema.names
    positions = [names.index(feature) for feature in features]
    total = ring.zero()
    for row, multiplicity in joined.items():
        vector = np.array([float(row[position]) for position in positions])
        payload = CovariancePayload(1.0, vector.copy(), np.outer(vector, vector))
        total = ring.add(total, ring.scale(payload, multiplicity))
    return total


class JoinIndex:
    """A maintained hash index of a relation on a subset of its attributes.

    The buckets are built lazily from the relation's cached column store —
    one pass over the store's precomputed key codes instead of re-deriving a
    key tuple per row — and kept in sync incrementally through :meth:`add`
    (batched callers loop it per applied row; unbuilt indexes absorb updates
    for free and rebuild from the store on first use).  :meth:`mark_stale`
    is the explicit escape hatch: it drops the buckets so the next
    :meth:`lookup` rebuilds them from the relation's current state, for
    callers that mutated the relation without mirroring every row into the
    index.
    """

    def __init__(self, relation: Relation, key_attributes: Sequence[str]) -> None:
        self.relation = relation
        self.key_attributes = tuple(key_attributes)
        self.positions = relation.schema.indices_of(self.key_attributes)
        self._buckets: Optional[Dict[Tuple, Dict[Tuple, int]]] = None
        # Updates land here first and are folded into the buckets on the
        # next lookup — per-update cost is one list append instead of a
        # handful of dictionary operations on paths that may never probe
        # this index again.
        self._pending: List[Tuple[Tuple, int]] = []

    @property
    def buckets(self) -> Dict[Tuple, Dict[Tuple, int]]:
        self._ensure()
        return self._buckets  # type: ignore[return-value]

    def _ensure(self) -> None:
        if self._buckets is not None:
            self._drain()
            return
        self._pending.clear()
        store = self.relation.column_store()
        codes, tuples = store.codes_for(self.key_attributes)
        per_code: List[Dict[Tuple, int]] = [{} for _ in tuples]
        multiplicities = store.multiplicities
        for position, code in enumerate(codes.tolist()):
            multiplicity = int(multiplicities[position])
            if multiplicity == 0:
                # Tombstones: while a pinned snapshot defers compaction the
                # store may expose netted-to-zero rows; `_drain` pops rows
                # that net to zero, so the rebuild must drop them too.
                continue
            per_code[code][store.rows[position]] = multiplicity
        self._buckets = {
            key: bucket for key, bucket in zip(tuples, per_code) if bucket
        }

    def mark_stale(self) -> None:
        """Drop the buckets; the next lookup rebuilds them from the store."""
        self._buckets = None
        self._pending.clear()

    @property
    def is_built(self) -> bool:
        """Whether the buckets exist; unbuilt indexes absorb updates for free."""
        return self._buckets is not None

    def key_of(self, row: Tuple) -> Tuple:
        return tuple(row[position] for position in self.positions)

    def add(self, row: Tuple, multiplicity: int) -> None:
        if self._buckets is None:
            # Not built yet: the lazy rebuild will read the relation (which
            # receives the same update) instead of patching nothing.
            return
        self._pending.append((row, multiplicity))

    def _drain(self) -> None:
        if not self._pending:
            return
        buckets = self._buckets
        assert buckets is not None
        for row, multiplicity in self._pending:
            key = self.key_of(row)
            bucket = buckets.setdefault(key, {})
            updated = bucket.get(row, 0) + multiplicity
            if updated == 0:
                bucket.pop(row, None)
                if not bucket:
                    buckets.pop(key, None)
            else:
                bucket[row] = updated
        self._pending.clear()

    def lookup(self, key: Tuple) -> Dict[Tuple, int]:
        self._ensure()
        return self._buckets.get(key, {})  # type: ignore[union-attr]


def bucket_source(
    relation: Relation, index: JoinIndex, keys: List[Tuple]
) -> Tuple[ColumnStore, np.ndarray, np.ndarray, np.ndarray]:
    """The relation's rows matching ``keys``, in CSR form over a column store.

    Returns ``(store, key_codes, offsets, order)``: ``key_codes[i]`` is the
    code of ``keys[i]`` in the store's key space (or -1), and
    ``order[offsets[code] : offsets[code + 1]]`` are the store row positions
    carrying that key — the shape :func:`repro.engine.deltas.expand_matches`
    consumes.

    When the relation's cached column store is *fresh*, the CSR covers the
    full encoding and costs nothing new.  When it is stale (mid-batch, after
    earlier groups mutated the relation), re-encoding would cost O(rows), so
    the incrementally maintained :class:`JoinIndex` buckets of exactly the
    requested keys are concatenated into a small delta store instead — the
    propagation then only ever pays for the rows it actually joins.
    """
    attributes = index.key_attributes
    store = relation.cached_column_store()
    if store is not None:
        row_codes, distinct = store.codes_for(attributes)
        offsets, order = csr_from_codes(row_codes, len(distinct))
        return store, key_codes_for(keys, store, attributes), offsets, order
    rows: List[Tuple] = []
    multiplicities: List[float] = []
    offsets = np.zeros(len(keys) + 1, dtype=np.int64)
    for position, key in enumerate(keys):
        for row, multiplicity in index.lookup(key).items():
            rows.append(row)
            multiplicities.append(float(multiplicity))
        offsets[position + 1] = len(rows)
    store = ColumnStore.from_rows(
        relation.name, relation.schema, rows, np.asarray(multiplicities)
    )
    return (
        store,
        np.arange(len(keys), dtype=np.int64),
        offsets,
        np.arange(len(rows), dtype=np.int64),
    )


class CovarianceMaintainer(abc.ABC):
    """Base class: schema bookkeeping shared by all three IVM strategies."""

    def __init__(
        self,
        schema_database: Database,
        query: ConjunctiveQuery,
        features: Sequence[str],
        root_relation: Optional[str] = None,
        root_strategy: str = "cost",
    ) -> None:
        """Set up the maintained state.

        ``root_relation`` forces the join-tree root.  Otherwise
        ``root_strategy="cost"`` scores the candidates with the statistics of
        ``schema_database`` (see :mod:`repro.engine.statistics`) — when the
        schema database carries representative data this picks the root that
        minimises view-tree work, and when it is empty the choice degrades to
        the widest-relation heuristic that ``root_strategy="widest"`` forces
        unconditionally (the seed behaviour).  ``root_strategy="largest"``
        roots at the relation with the most rows in the schema database: for
        *maintenance* (as opposed to batch evaluation) the dominant cost is
        the leaf-to-root propagation distance weighted by each relation's
        update mass, and absent a workload trace the representative row
        counts are the best static proxy for where updates will land — an
        update stream drawn from the data (the Figure-4 experiment) hits the
        fact table in proportion to its size, and rooting there makes the
        bulk of all deltas root-local (zero propagation hops).
        """
        self.query = query
        self.features = tuple(features)
        self.ring = CovarianceRing(len(self.features))
        #: Counters mirroring ``BatchResult.executor_stats``: strategies with
        #: a fused path record ``delta_passes`` (fused traversals run) and
        #: ``delta_pass_ns`` (time spent inside them), so benchmarks can
        #: attribute maintenance time without profiling.
        self.executor_stats: Dict[str, int] = {}
        # Maintainers are single-writer by contract: updates mutate mirrors,
        # indexes and payload stores with no internal synchronisation.  The
        # gate turns a violated contract (two threads applying concurrently)
        # into an immediate error instead of silent corruption; it is an
        # RLock so apply_batch's per-tuple fallback can re-enter apply().
        self._writer_gate = threading.RLock()
        # The maintainer owns an initially-empty copy of the database: the
        # streaming experiment of Figure 4 (right) starts from nothing.
        self.database = schema_database.empty_copy()
        hypergraph = query.hypergraph(schema_database)
        if root_strategy not in ("cost", "widest", "largest"):
            raise ValueError(
                f"unknown root_strategy {root_strategy!r}; "
                "expected 'cost', 'widest' or 'largest'"
            )
        root = root_relation
        if root is None:
            if root_strategy == "cost":
                root = choose_root(schema_database, build_join_tree(hypergraph)).root
            elif root_strategy == "largest":
                root = max(
                    query.relation_names,
                    key=lambda name: (
                        len(schema_database.relation(name)),
                        schema_database.relation(name).arity,
                        name,
                    ),
                )
            else:
                root = max(
                    query.relation_names,
                    key=lambda name: (schema_database.relation(name).arity, name),
                )
        self.join_tree: JoinTree = build_join_tree(hypergraph, root=root)
        self._designation = self._designate_features()
        self._feature_positions = {
            feature: position for position, feature in enumerate(self.features)
        }
        # Per relation: (schema position, feature position) of each feature
        # designated to it — the hot lift paths skip all name resolution.
        self._lift_plans: Dict[str, List[Tuple[int, int]]] = {}
        for relation_name in self.query.relation_names:
            schema = self.database.relation(relation_name).schema
            self._lift_plans[relation_name] = [
                (schema.index_of(feature), self._feature_positions[feature])
                for feature in self.features_of(relation_name)
            ]

    # -- feature designation -----------------------------------------------------------

    def _designate_features(self) -> Dict[str, str]:
        """Assign each feature to the deepest join-tree node containing it."""
        depths: Dict[str, int] = {}

        def assign(node: JoinTreeNode, depth: int) -> None:
            depths[node.relation_name] = depth
            for child in node.children:
                assign(child, depth + 1)

        assign(self.join_tree.root, 0)

        designation: Dict[str, str] = {}
        for feature in self.features:
            owners = [
                node.relation_name
                for node in self.join_tree.nodes()
                if feature in node.attributes
            ]
            if not owners:
                raise ValueError(f"feature {feature!r} does not occur in the query")
            designation[feature] = max(owners, key=lambda name: (depths[name], name))
        return designation

    def features_of(self, relation_name: str) -> List[str]:
        return [
            feature
            for feature in self.features
            if self._designation[feature] == relation_name
        ]

    def lift_row(self, relation_name: str, row: Tuple) -> CovariancePayload:
        """Lift one tuple of a relation into the covariance ring.

        The payload carries the values of the features designated to that
        relation; relations with no designated features lift to the ring's one.
        The construction is direct (one sparse outer product) rather than a
        chain of ring multiplications, which is what a code-specialised engine
        would generate.
        """
        plan = self._lift_plans[relation_name]
        if not plan:
            return self.ring.one()
        sums = np.zeros(len(self.features))
        for source, target in plan:
            sums[target] = float(row[source])
        return CovariancePayload(1.0, sums, np.outer(sums, sums))

    # -- update protocol -----------------------------------------------------------------

    #: Strategies overriding ``_apply_delta_group`` flip this on; the base
    #: ``apply_batch`` then takes the grouped, columnar path for real batches.
    supports_batch_deltas = False

    #: Strategies overriding ``_apply_multi_delta`` flip this on (instances
    #: may flip it back off to force the per-relation path, e.g. for
    #: equivalence testing); the base ``apply_batch`` then hands *all* of a
    #: batch's per-relation groups to one fused tree pass.
    supports_fused_deltas = False

    def _validate(self, update: Update) -> None:
        """Check the update's row arity against the relation schema."""
        relation = self.database.relation(update.relation_name)
        if len(update.row) != relation.arity:
            raise ValueError(
                f"update row {update.row!r} has arity {len(update.row)}, but "
                f"relation {update.relation_name!r} has schema "
                f"{list(relation.schema.names)} (arity {relation.arity})"
            )

    def apply(self, update: Update) -> None:
        """Apply one signed tuple update.

        ``Relation.add`` bumps the relation's mutation counter, which also
        invalidates any cached column store (see ``Relation.column_store``) —
        engines holding columnar contexts over the maintained database
        re-encode lazily on their next evaluation.
        """
        if not self._writer_gate.acquire(blocking=False):
            raise RuntimeError(
                "concurrent writers: CovarianceMaintainer.apply is single-writer; "
                "serialize updates through one thread (e.g. QueryServer.apply_batch)"
            )
        try:
            self._validate(update)
            self._apply_update(update)
            self.database.relation(update.relation_name).add(
                update.row, update.multiplicity
            )
        finally:
            self._writer_gate.release()

    def apply_batch(self, updates: Iterable[Update]) -> int:
        """Apply a stream of updates, propagating whole per-relation deltas.

        The batch is netted out per (relation, row) — an insert/delete pair
        inside one batch cancels — and grouped per relation, with every
        update's arity validated *before* anything is applied (an invalid
        update anywhere in the batch leaves the maintainer untouched).
        Strategies flagging ``supports_fused_deltas`` receive *all* groups at
        once through ``_apply_multi_delta`` (one leaf-to-root traversal for
        the whole batch); otherwise each group is applied through the
        vectorised ``_apply_delta_group`` (one delta propagation per touched
        relation).  Either way the groups' rows then land in the base
        relations and the per-relation after-hooks keep the incremental
        indexes in sync.  Strategies without a batched path, and batches
        netting to a single row, fall back to the per-tuple :meth:`apply`
        over the *netted* pairs — the same rule :meth:`apply_groups` uses, so
        ``apply_batch(U)`` and ``apply_groups(net_updates(U))`` retrace the
        identical computation (the durability journal relies on this for
        bit-identical replay).

        Kernel-stat deltas fold into ``executor_stats`` and the writer gate
        releases in ``finally`` blocks, so a raising batch neither loses its
        partial counters nor wedges future writers.
        """
        batch = list(updates)
        if not self._writer_gate.acquire(blocking=False):
            raise RuntimeError(
                "concurrent writers: CovarianceMaintainer.apply_batch is "
                "single-writer; serialize updates through one thread "
                "(e.g. QueryServer.apply_batch)"
            )
        try:
            before = kernel_stats() if kernel_stats_enabled() else None
            try:
                self._apply_groups_locked(self.net_updates(batch))
            finally:
                if before is not None:
                    self._merge_kernel_stats(before)
            return len(batch)
        finally:
            self._writer_gate.release()

    def net_updates(
        self, updates: Iterable[Update]
    ) -> List[Tuple[str, List[Tuple], List[int]]]:
        """Net a batch per (relation, row) and validate every update up front.

        Returns ``(relation_name, rows, multiplicities)`` groups — relations
        in first-touched order, rows in first-seen order, zero-netting rows
        dropped — the exact shape :meth:`apply_groups` consumes and the
        write-ahead journal records.  Raises (without side effects) if any
        update's arity disagrees with its relation's schema.
        """
        return net_update_stream(self.database, updates)

    def apply_groups(
        self,
        groups: Iterable[Tuple[str, Sequence[Tuple], Sequence[int]]],
        validated: bool = False,
    ) -> int:
        """Apply already-netted per-relation groups (the journal replay path).

        ``groups`` is the shape :meth:`net_updates` produces; applying them
        here runs exactly the code path :meth:`apply_batch` would have run on
        the original batch, so replaying journaled groups reproduces the
        original maintainer state bit for bit.  Returns the number of netted
        rows applied.

        ``validated=True`` skips the row/multiplicity normalization — only
        for groups that came straight out of this maintainer's own
        :meth:`net_updates` (the durable server's write path); journal replay
        and any hand-built groups must keep the default.
        """
        if validated:
            prepared = groups if isinstance(groups, list) else list(groups)
        else:
            prepared = [
                (name, [tuple(row) for row in rows], [int(m) for m in netted])
                for name, rows, netted in groups
            ]
        if not self._writer_gate.acquire(blocking=False):
            raise RuntimeError(
                "concurrent writers: CovarianceMaintainer.apply_groups is "
                "single-writer; serialize updates through one thread "
                "(e.g. QueryServer.apply_batch)"
            )
        try:
            before = kernel_stats() if kernel_stats_enabled() else None
            try:
                self._apply_groups_locked(prepared)
            finally:
                if before is not None:
                    self._merge_kernel_stats(before)
            return sum(len(rows) for _name, rows, _netted in prepared)
        finally:
            self._writer_gate.release()

    def _merge_kernel_stats(self, before: Dict[str, Dict[str, int]]) -> None:
        """Fold this batch's kernel counter deltas into ``executor_stats``.

        Only runs when :func:`repro.kernels.enable_kernel_stats` turned
        counting on (the counters are process-global; the delta against the
        batch-start snapshot attributes them to this maintainer).  Keys are
        ``kernel_<name>_calls`` / ``kernel_<name>_ns``.
        """
        stats = self.executor_stats
        for name, counters in kernel_stats().items():
            calls = counters["calls"] - before[name]["calls"]
            if not calls:
                continue
            calls_key = f"kernel_{name}_calls"
            ns_key = f"kernel_{name}_ns"
            stats[calls_key] = stats.get(calls_key, 0) + calls
            stats[ns_key] = (
                stats.get(ns_key, 0) + counters["ns"] - before[name]["ns"]
            )

    def _apply_groups_locked(
        self, groups: List[Tuple[str, List[Tuple], List[int]]]
    ) -> None:
        """Propagate netted groups; the single dispatch point both
        :meth:`apply_batch` and :meth:`apply_groups` funnel through.

        The fallback rule keys on the *netted* row count (not the raw batch
        length), so netting a batch and replaying its groups later picks the
        same code path — a precondition for bit-identical journal replay.
        """
        total_rows = sum(len(rows) for _name, rows, _netted in groups)
        if total_rows < 2 or not self.supports_batch_deltas:
            for relation_name, rows, netted in groups:
                for row, multiplicity in zip(rows, netted):
                    self.apply(Update(relation_name, row, multiplicity))
            return
        prepared = [
            (name, rows, netted, np.asarray(netted, dtype=np.float64))
            for name, rows, netted in groups
        ]
        if self.supports_fused_deltas:
            self._apply_multi_delta(
                [(name, rows, floats) for name, rows, _netted, floats in prepared]
            )
            for relation_name, rows, netted, multiplicities in prepared:
                self.database.relation(relation_name).add_batch(
                    rows, netted, validated=True
                )
                self._after_delta_group(relation_name, rows, multiplicities)
            return
        for relation_name, rows, netted, multiplicities in prepared:
            self._apply_delta_group(relation_name, rows, multiplicities)
            self.database.relation(relation_name).add_batch(
                rows, netted, validated=True
            )
            self._after_delta_group(relation_name, rows, multiplicities)

    @abc.abstractmethod
    def _apply_update(self, update: Update) -> None:
        """Strategy-specific maintenance, run before the base relation changes."""

    def _apply_delta_group(
        self, relation_name: str, rows: List[Tuple], multiplicities: np.ndarray
    ) -> None:
        """Strategy-specific batched maintenance for one relation's delta.

        Run before the group's rows reach the base relation, exactly like
        ``_apply_update``; only called when ``supports_batch_deltas`` is on.
        """
        raise NotImplementedError

    def _apply_multi_delta(
        self, groups: List[Tuple[str, List[Tuple], np.ndarray]]
    ) -> None:
        """Strategy-specific fused maintenance for a whole batch.

        ``groups`` lists every touched relation's netted delta as
        ``(relation_name, rows, multiplicities)``.  Run before any group's
        rows reach the base relations — the fused pass reads every mirror and
        index in its pre-batch state; only called when
        ``supports_fused_deltas`` is on.
        """
        raise NotImplementedError

    def _after_delta_group(
        self, relation_name: str, rows: List[Tuple], multiplicities: np.ndarray
    ) -> None:
        """Hook run after a group's rows landed in the base relation.

        Strategies use it to keep their incremental join indexes over the
        updated relation in sync (one cheap dictionary update per row), so
        later groups and per-tuple updates see the applied delta without an
        O(rows) index rebuild.
        """

    # -- durability support ---------------------------------------------------------------

    def __getstate__(self) -> Dict:
        """Checkpoint pickling: the writer gate is process-local, drop it."""
        state = self.__dict__.copy()
        state.pop("_writer_gate", None)
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._writer_gate = threading.RLock()

    # -- columnar delta helpers -----------------------------------------------------------

    def _delta_store(
        self, relation_name: str, rows: List[Tuple], multiplicities: np.ndarray
    ) -> ColumnStore:
        """Encode one per-relation update group as a delta column store."""
        relation = self.database.relation(relation_name)
        return ColumnStore.from_rows(
            relation.name, relation.schema, rows, multiplicities
        )


    @abc.abstractmethod
    def statistics(self) -> CovariancePayload:
        """The maintained covariance statistics over the join."""

    # -- reference -------------------------------------------------------------------------

    def recompute_statistics(self) -> CovariancePayload:
        """Recompute the statistics from scratch (used by tests as ground truth).

        The join result is read through its dictionary-encoded column store:
        count, sums and the quadratic form are three matrix expressions over
        the feature columns instead of a Python loop over tuples.
        """
        return recompute_covariance(self.query, self.database, self.features, self.ring)
