"""Shared infrastructure for the IVM strategies.

All maintainers keep their own copies of the base relations (starting from an
initially empty database, as in the paper's streaming experiment), accept
signed tuple updates, and expose the maintained covariance statistics over the
continuous features of the feature-extraction join.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.statistics import choose_root
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.join_tree import JoinTree, JoinTreeNode, build_join_tree
from repro.rings.covariance import CovariancePayload, CovarianceRing


@dataclass(frozen=True)
class Update:
    """A signed tuple update: +1 multiplicity inserts, -1 deletes."""

    relation_name: str
    row: Tuple
    multiplicity: int = 1


class JoinIndex:
    """A maintained hash index of a relation on a subset of its attributes."""

    def __init__(self, relation: Relation, key_attributes: Sequence[str]) -> None:
        self.key_attributes = tuple(key_attributes)
        self.positions = relation.schema.indices_of(self.key_attributes)
        self.buckets: Dict[Tuple, Dict[Tuple, int]] = {}
        for row, multiplicity in relation.items():
            self.add(row, multiplicity)

    def key_of(self, row: Tuple) -> Tuple:
        return tuple(row[position] for position in self.positions)

    def add(self, row: Tuple, multiplicity: int) -> None:
        bucket = self.buckets.setdefault(self.key_of(row), {})
        updated = bucket.get(row, 0) + multiplicity
        if updated == 0:
            bucket.pop(row, None)
            if not bucket:
                self.buckets.pop(self.key_of(row), None)
        else:
            bucket[row] = updated

    def lookup(self, key: Tuple) -> Dict[Tuple, int]:
        return self.buckets.get(key, {})


class CovarianceMaintainer(abc.ABC):
    """Base class: schema bookkeeping shared by all three IVM strategies."""

    def __init__(
        self,
        schema_database: Database,
        query: ConjunctiveQuery,
        features: Sequence[str],
        root_relation: Optional[str] = None,
        root_strategy: str = "cost",
    ) -> None:
        """Set up the maintained state.

        ``root_relation`` forces the join-tree root.  Otherwise
        ``root_strategy="cost"`` scores the candidates with the statistics of
        ``schema_database`` (see :mod:`repro.engine.statistics`) — when the
        schema database carries representative data this picks the root that
        minimises view-tree work, and when it is empty the choice degrades to
        the widest-relation heuristic that ``root_strategy="widest"`` forces
        unconditionally (the seed behaviour).
        """
        self.query = query
        self.features = tuple(features)
        self.ring = CovarianceRing(len(self.features))
        # The maintainer owns an initially-empty copy of the database: the
        # streaming experiment of Figure 4 (right) starts from nothing.
        self.database = schema_database.empty_copy()
        hypergraph = query.hypergraph(schema_database)
        if root_strategy not in ("cost", "widest"):
            raise ValueError(
                f"unknown root_strategy {root_strategy!r}; expected 'cost' or 'widest'"
            )
        root = root_relation
        if root is None:
            if root_strategy == "cost":
                root = choose_root(schema_database, build_join_tree(hypergraph)).root
            else:
                root = max(
                    query.relation_names,
                    key=lambda name: (schema_database.relation(name).arity, name),
                )
        self.join_tree: JoinTree = build_join_tree(hypergraph, root=root)
        self._designation = self._designate_features()
        self._feature_positions = {
            feature: position for position, feature in enumerate(self.features)
        }

    # -- feature designation -----------------------------------------------------------

    def _designate_features(self) -> Dict[str, str]:
        """Assign each feature to the deepest join-tree node containing it."""
        depths: Dict[str, int] = {}

        def assign(node: JoinTreeNode, depth: int) -> None:
            depths[node.relation_name] = depth
            for child in node.children:
                assign(child, depth + 1)

        assign(self.join_tree.root, 0)

        designation: Dict[str, str] = {}
        for feature in self.features:
            owners = [
                node.relation_name
                for node in self.join_tree.nodes()
                if feature in node.attributes
            ]
            if not owners:
                raise ValueError(f"feature {feature!r} does not occur in the query")
            designation[feature] = max(owners, key=lambda name: (depths[name], name))
        return designation

    def features_of(self, relation_name: str) -> List[str]:
        return [
            feature
            for feature in self.features
            if self._designation[feature] == relation_name
        ]

    def lift_row(self, relation_name: str, row: Tuple) -> CovariancePayload:
        """Lift one tuple of a relation into the covariance ring.

        The payload carries the values of the features designated to that
        relation; relations with no designated features lift to the ring's one.
        The construction is direct (one sparse outer product) rather than a
        chain of ring multiplications, which is what a code-specialised engine
        would generate.
        """
        relation = self.database.relation(relation_name)
        local_features = self.features_of(relation_name)
        if not local_features:
            return self.ring.one()
        sums = np.zeros(len(self.features))
        for feature in local_features:
            position = relation.schema.index_of(feature)
            sums[self._feature_positions[feature]] = float(row[position])
        return CovariancePayload(1.0, sums, np.outer(sums, sums))

    # -- update protocol -----------------------------------------------------------------

    def apply(self, update: Update) -> None:
        """Apply one signed tuple update.

        ``Relation.add`` bumps the relation's mutation counter, which also
        invalidates any cached column store (see ``Relation.column_store``) —
        engines holding columnar contexts over the maintained database
        re-encode lazily on their next evaluation.
        """
        self._apply_update(update)
        self.database.relation(update.relation_name).add(update.row, update.multiplicity)

    def apply_batch(self, updates: Iterable[Update]) -> int:
        count = 0
        for update in updates:
            self.apply(update)
            count += 1
        return count

    @abc.abstractmethod
    def _apply_update(self, update: Update) -> None:
        """Strategy-specific maintenance, run before the base relation changes."""

    @abc.abstractmethod
    def statistics(self) -> CovariancePayload:
        """The maintained covariance statistics over the join."""

    # -- reference -------------------------------------------------------------------------

    def recompute_statistics(self) -> CovariancePayload:
        """Recompute the statistics from scratch (used by tests as ground truth).

        The join result is read through its dictionary-encoded column store:
        count, sums and the quadratic form are three matrix expressions over
        the feature columns instead of a Python loop over tuples.
        """
        joined = self.query.evaluate(self.database)
        store = joined.column_store()
        columns = [store.float_column(feature) for feature in self.features]
        if store.row_count and all(column is not None for column in columns):
            weights = store.multiplicities
            if columns:
                data = np.stack(columns, axis=1)          # (rows, features)
                weighted = data * weights[:, None]
                return CovariancePayload(
                    float(weights.sum()), weighted.sum(axis=0), data.T @ weighted
                )
            return CovariancePayload(float(weights.sum()),
                                     np.zeros(0), np.zeros((0, 0)))
        names = joined.schema.names
        positions = [names.index(feature) for feature in self.features]
        total = self.ring.zero()
        for row, multiplicity in joined.items():
            vector = np.array([float(row[position]) for position in positions])
            payload = CovariancePayload(1.0, vector.copy(), np.outer(vector, vector))
            total = self.ring.add(total, self.ring.scale(payload, multiplicity))
        return total
