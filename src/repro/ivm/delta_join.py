"""Delta-join expansion: all join tuples that contain a given delta tuple.

Used by the first-order and higher-order IVM strategies to turn one update of
a base relation into the corresponding delta of the feature-extraction join.
The expansion walks the join tree outwards from the updated relation, probing
maintained hash indexes on the edge attributes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.data.database import Database
from repro.data.relation import Relation
from repro.ivm.base import JoinIndex
from repro.query.join_tree import JoinTree, JoinTreeNode

Assignment = Dict[str, object]


class DeltaJoiner:
    """Maintains per-edge indexes and expands delta tuples into join deltas."""

    def __init__(self, database: Database, join_tree: JoinTree) -> None:
        self.database = database
        self.join_tree = join_tree
        self._adjacency: Dict[str, List[Tuple[str, Tuple[str, ...]]]] = {}
        self._indexes: Dict[Tuple[str, Tuple[str, ...]], JoinIndex] = {}

        for node in join_tree.nodes():
            neighbours: List[JoinTreeNode] = list(node.children)
            if node.parent is not None:
                neighbours.append(node.parent)
            edges = []
            for neighbour in neighbours:
                shared = tuple(sorted(node.attributes & neighbour.attributes))
                edges.append((neighbour.relation_name, shared))
                self._ensure_index(neighbour.relation_name, shared)
            self._adjacency[node.relation_name] = edges

    def _ensure_index(self, relation_name: str, key_attributes: Tuple[str, ...]) -> JoinIndex:
        key = (relation_name, key_attributes)
        index = self._indexes.get(key)
        if index is None:
            index = JoinIndex(self.database.relation(relation_name), key_attributes)
            self._indexes[key] = index
        return index

    def register_update(self, relation_name: str, row: Tuple, multiplicity: int) -> None:
        """Keep the edge indexes in sync with an update to a base relation."""
        for (indexed_relation, _key), index in self._indexes.items():
            if indexed_relation == relation_name:
                index.add(row, multiplicity)

    def expand(
        self, relation_name: str, row: Tuple, multiplicity: int
    ) -> List[Tuple[Assignment, int]]:
        """All full join tuples (as attribute dictionaries) containing ``row``."""
        start_relation = self.database.relation(relation_name)
        assignments: List[Tuple[Assignment, int]] = [
            (dict(zip(start_relation.schema.names, row)), multiplicity)
        ]
        visited = {relation_name}
        frontier = [relation_name]
        while frontier and assignments:
            current = frontier.pop()
            for neighbour_name, shared in self._adjacency[current]:
                if neighbour_name in visited:
                    continue
                visited.add(neighbour_name)
                frontier.append(neighbour_name)
                index = self._ensure_index(neighbour_name, shared)
                neighbour_schema = self.database.relation(neighbour_name).schema.names
                expanded: List[Tuple[Assignment, int]] = []
                for assignment, mult in assignments:
                    key = tuple(assignment[attribute] for attribute in shared)
                    for other_row, other_mult in index.lookup(key).items():
                        merged = dict(assignment)
                        merged.update(zip(neighbour_schema, other_row))
                        expanded.append((merged, mult * other_mult))
                assignments = expanded
        return assignments
