"""Delta-join expansion: all join tuples that contain a given delta tuple.

Used by the first-order and higher-order IVM strategies to turn one update of
a base relation into the corresponding delta of the feature-extraction join.
The expansion walks the join tree outwards from the updated relation, probing
maintained hash indexes on the edge attributes.

Two code paths share the walk order:

- :meth:`DeltaJoiner.expand` — the per-tuple path: one delta tuple becomes a
  list of assignment dictionaries;
- :meth:`DeltaJoiner.expand_columnar` — the batched path: a whole delta
  :class:`~repro.data.colstore.ColumnStore` is joined hop by hop against the
  base relations' column stores through the CSR machinery of
  :mod:`repro.engine.deltas`, and the requested attributes come back as
  float arrays over the expanded join delta — no per-row Python.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.colstore import ColumnStore
from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.deltas import expand_matches
from repro.ivm.base import JoinIndex, bucket_source
from repro.query.join_tree import JoinTree, JoinTreeNode

Assignment = Dict[str, object]


class DeltaJoiner:
    """Maintains per-edge indexes and expands delta tuples into join deltas."""

    def __init__(self, database: Database, join_tree: JoinTree) -> None:
        self.database = database
        self.join_tree = join_tree
        self._adjacency: Dict[str, List[Tuple[str, Tuple[str, ...]]]] = {}
        self._indexes: Dict[Tuple[str, Tuple[str, ...]], JoinIndex] = {}

        for node in join_tree.nodes():
            neighbours: List[JoinTreeNode] = list(node.children)
            if node.parent is not None:
                neighbours.append(node.parent)
            edges = []
            for neighbour in neighbours:
                shared = tuple(sorted(node.attributes & neighbour.attributes))
                edges.append((neighbour.relation_name, shared))
                self._ensure_index(neighbour.relation_name, shared)
            self._adjacency[node.relation_name] = edges

    def _ensure_index(self, relation_name: str, key_attributes: Tuple[str, ...]) -> JoinIndex:
        key = (relation_name, key_attributes)
        index = self._indexes.get(key)
        if index is None:
            index = JoinIndex(self.database.relation(relation_name), key_attributes)
            self._indexes[key] = index
        return index

    def register_update(self, relation_name: str, row: Tuple, multiplicity: int) -> None:
        """Keep the edge indexes in sync with an update to a base relation."""
        for (indexed_relation, _key), index in self._indexes.items():
            if indexed_relation == relation_name:
                index.add(row, multiplicity)

    def register_batch(
        self, relation_name: str, rows: Sequence[Tuple], multiplicities
    ) -> None:
        """Keep the edge indexes in sync with one applied delta group."""
        for (indexed_relation, _key), index in self._indexes.items():
            if indexed_relation == relation_name and index.is_built:
                for row, multiplicity in zip(rows, multiplicities):
                    index.add(row, int(multiplicity))

    def expand(
        self, relation_name: str, row: Tuple, multiplicity: int
    ) -> List[Tuple[Assignment, int]]:
        """All full join tuples (as attribute dictionaries) containing ``row``."""
        start_relation = self.database.relation(relation_name)
        assignments: List[Tuple[Assignment, int]] = [
            (dict(zip(start_relation.schema.names, row)), multiplicity)
        ]
        visited = {relation_name}
        frontier = [relation_name]
        while frontier and assignments:
            current = frontier.pop()
            for neighbour_name, shared in self._adjacency[current]:
                if neighbour_name in visited:
                    continue
                visited.add(neighbour_name)
                frontier.append(neighbour_name)
                index = self._ensure_index(neighbour_name, shared)
                neighbour_schema = self.database.relation(neighbour_name).schema.names
                expanded: List[Tuple[Assignment, int]] = []
                for assignment, mult in assignments:
                    key = tuple(assignment[attribute] for attribute in shared)
                    for other_row, other_mult in index.lookup(key).items():
                        merged = dict(assignment)
                        merged.update(zip(neighbour_schema, other_row))
                        expanded.append((merged, mult * other_mult))
                assignments = expanded
        return assignments

    def expand_columnar(
        self,
        relation_name: str,
        delta_store: ColumnStore,
        attributes: Sequence[str],
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """The join delta of a whole delta store, as float columns.

        Walks the same edges as :meth:`expand`, but joins the delta against
        each neighbouring relation in key-code space: the neighbour's rows
        come CSR-grouped from :func:`~repro.ivm.base.bucket_source` (the full
        cached column store when fresh, the maintained edge-index buckets of
        the delta's keys otherwise), and the expansion is one ``np.repeat``
        gather per hop.  Returns the requested ``attributes`` decoded to
        float64 over the expanded rows plus the expanded signed
        multiplicities.  Callers expand once per delta group and reuse the
        returned columns for every aggregate of their batch.
        """
        # Per visited relation: (its store, expanded row index into the store).
        sources: Dict[str, Tuple[ColumnStore, np.ndarray]] = {
            relation_name: (
                delta_store,
                np.arange(delta_store.row_count, dtype=np.int64),
            )
        }
        multiplicities = delta_store.multiplicities.copy()
        visited = {relation_name}
        frontier = [relation_name]
        while frontier:
            current = frontier.pop()
            current_store = sources[current][0]
            for neighbour_name, shared in self._adjacency[current]:
                if neighbour_name in visited:
                    continue
                visited.add(neighbour_name)
                frontier.append(neighbour_name)
                current_codes, current_distinct = current_store.codes_for(shared)
                neighbour_store, key_codes, offsets, order = bucket_source(
                    self.database.relation(neighbour_name),
                    self._ensure_index(neighbour_name, shared),
                    current_distinct,
                )
                current_rows = sources[current][1]
                item_codes = key_codes[current_codes[current_rows]]
                item_index, member_rows = expand_matches(item_codes, offsets, order)
                multiplicities = (
                    multiplicities[item_index]
                    * neighbour_store.multiplicities[member_rows]
                )
                sources = {
                    name: (store, rows[item_index])
                    for name, (store, rows) in sources.items()
                }
                sources[neighbour_name] = (neighbour_store, member_rows)

        columns: Dict[str, np.ndarray] = {}
        for attribute in attributes:
            if attribute in columns:
                continue
            for name, (store, rows) in sources.items():
                if attribute in store.schema:
                    column = store.float_column(attribute)
                    if column is None:
                        raise ValueError(
                            f"attribute {attribute!r} of relation {name!r} is not numeric"
                        )
                    columns[attribute] = column[rows]
                    break
            else:
                raise ValueError(f"attribute {attribute!r} does not occur in the join")
        return columns, multiplicities
