"""Incremental view maintenance (Figure 4, right).

Three maintenance strategies for the covariance matrix of a feature-extraction
join under tuple inserts and deletes:

* :class:`FirstOrderIVM` — classical delta processing: every aggregate of the
  batch maintains itself by joining the delta tuple against the base relations;
* :class:`HigherOrderIVM` — delta processing with materialised intermediate
  views: the delta join is computed once per update against partial joins, but
  each aggregate still updates itself separately;
* :class:`FIVM` — factorised IVM: one view tree whose payloads live in the
  covariance ring, so a single propagation along a leaf-to-root path maintains
  the entire aggregate batch.

All three strategies share one batched update path:
:meth:`CovarianceMaintainer.apply_batch` treats a batch as a delta relation —
multiplicities are netted per tuple, the batch is grouped per relation, and
each group is propagated through the columnar machinery
(:class:`~repro.ivm.payload_store.PayloadStore` views,
:class:`~repro.rings.covariance.CovarianceBlock` ring blocks, and the CSR
join-key helpers of :mod:`repro.engine.deltas`) in one vectorised pass.
Single updates fall back to the per-tuple path.
"""

from repro.ivm.base import Update, CovarianceMaintainer, JoinIndex
from repro.ivm.first_order import FirstOrderIVM
from repro.ivm.higher_order import HigherOrderIVM
from repro.ivm.fivm import FIVM
from repro.ivm.payload_store import PayloadStore

__all__ = [
    "Update",
    "CovarianceMaintainer",
    "JoinIndex",
    "FirstOrderIVM",
    "HigherOrderIVM",
    "FIVM",
    "PayloadStore",
]
