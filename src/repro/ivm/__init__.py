"""Incremental view maintenance (Figure 4, right).

Three maintenance strategies for the covariance matrix of a feature-extraction
join under tuple inserts and deletes:

* :class:`FirstOrderIVM` — classical delta processing: every aggregate of the
  batch maintains itself by joining the delta tuple against the base relations;
* :class:`HigherOrderIVM` — delta processing with materialised intermediate
  views: the delta join is computed once per update against partial joins, but
  each aggregate still updates itself separately;
* :class:`FIVM` — factorised IVM: one view tree whose payloads live in the
  covariance ring, so a single propagation along a leaf-to-root path maintains
  the entire aggregate batch.
"""

from repro.ivm.base import Update, CovarianceMaintainer
from repro.ivm.first_order import FirstOrderIVM
from repro.ivm.higher_order import HigherOrderIVM
from repro.ivm.fivm import FIVM

__all__ = [
    "Update",
    "CovarianceMaintainer",
    "FirstOrderIVM",
    "HigherOrderIVM",
    "FIVM",
]
