"""Higher-order IVM: delta processing with materialised intermediate views.

Following the DBToaster-style higher-order approach, the maintainer keeps a
materialised (tuple-level) view of the feature-extraction join and updates it
incrementally: every base-relation update is expanded into its join delta
*once* (against maintained per-edge indexes), the delta is appended to the
materialised view, and then every aggregate of the covariance batch updates
itself by scanning the delta.

Compared to first-order IVM the delta join is shared across the batch;
compared to F-IVM the intermediate state is tuple-level (as large as the join)
and the per-aggregate maintenance is not shared, which is exactly the
trade-off Figure 4 (right) illustrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.database import Database
from repro.ivm.base import CovarianceMaintainer, Update
from repro.ivm.delta_join import DeltaJoiner
from repro.query.conjunctive import ConjunctiveQuery
from repro.rings.covariance import CovariancePayload


class HigherOrderIVM(CovarianceMaintainer):
    """Shared delta join + materialised join view, per-aggregate updates."""

    supports_batch_deltas = True

    def __init__(
        self,
        schema_database: Database,
        query: ConjunctiveQuery,
        features: Sequence[str],
        root_relation: Optional[str] = None,
        root_strategy: str = "cost",
    ) -> None:
        super().__init__(schema_database, query, features, root_relation, root_strategy)
        self._joiner = DeltaJoiner(self.database, self.join_tree)
        dimension = len(self.features)
        self._count = 0.0
        self._sums = np.zeros(dimension)
        self._moments = np.zeros((dimension, dimension))
        # The materialised intermediate view: feature projections of the join.
        self._materialized_join: Dict[Tuple, int] = {}

    # -- maintenance ---------------------------------------------------------------------------

    def _apply_update(self, update: Update) -> None:
        # One shared delta-join expansion per update (the higher-order benefit)...
        delta_rows = self._joiner.expand(update.relation_name, update.row, update.multiplicity)

        # ...maintain the materialised view...
        for assignment, multiplicity in delta_rows:
            key = tuple(assignment[feature] for feature in self.features)
            updated = self._materialized_join.get(key, 0) + multiplicity
            if updated == 0:
                self._materialized_join.pop(key, None)
            else:
                self._materialized_join[key] = updated

        # ...but each aggregate of the batch still scans the delta separately.
        delta_count = 0.0
        for _assignment, multiplicity in delta_rows:
            delta_count += multiplicity
        self._count += delta_count

        dimension = len(self.features)
        for position, feature in enumerate(self.features):
            delta_sum = 0.0
            for assignment, multiplicity in delta_rows:
                delta_sum += multiplicity * float(assignment[feature])  # type: ignore[arg-type]
            self._sums[position] += delta_sum

        for left in range(dimension):
            for right in range(left, dimension):
                left_feature = self.features[left]
                right_feature = self.features[right]
                delta_moment = 0.0
                for assignment, multiplicity in delta_rows:
                    delta_moment += (
                        multiplicity
                        * float(assignment[left_feature])  # type: ignore[arg-type]
                        * float(assignment[right_feature])  # type: ignore[arg-type]
                    )
                self._moments[left, right] += delta_moment
                if left != right:
                    self._moments[right, left] += delta_moment

        self._joiner.register_update(update.relation_name, update.row, update.multiplicity)

    def _apply_delta_group(self, relation_name, rows, multiplicities) -> None:
        # One shared vectorised expansion for the whole group (the
        # higher-order benefit)...
        delta_store = self._delta_store(relation_name, rows, multiplicities)
        columns, mults = self._joiner.expand_columnar(
            relation_name, delta_store, tuple(self.features)
        )
        if mults.size == 0:
            return

        # ...maintain the materialised view (grouped once, scanned once)...
        if self.features:
            stacked = np.stack([columns[feature] for feature in self.features], axis=1)
            uniques, inverse = np.unique(stacked, axis=0, return_inverse=True)
            totals = np.bincount(
                inverse.reshape(-1), weights=mults, minlength=uniques.shape[0]
            )
            distinct_keys = [tuple(values) for values in uniques.tolist()]
        else:
            totals = np.asarray([mults.sum()])
            distinct_keys = [()]
        for key, total in zip(distinct_keys, totals.tolist()):
            delta = int(round(total))
            if delta == 0:
                continue
            updated = self._materialized_join.get(key, 0) + delta
            if updated == 0:
                self._materialized_join.pop(key, None)
            else:
                self._materialized_join[key] = updated

        # ...but each aggregate of the batch still scans the delta separately.
        dimension = len(self.features)
        self._count += float(mults.sum())
        for position, feature in enumerate(self.features):
            self._sums[position] += float(columns[feature] @ mults)
        for left in range(dimension):
            for right in range(left, dimension):
                left_feature = self.features[left]
                right_feature = self.features[right]
                delta_moment = float(
                    np.sum(columns[left_feature] * columns[right_feature] * mults)
                )
                self._moments[left, right] += delta_moment
                if left != right:
                    self._moments[right, left] += delta_moment

    def _after_delta_group(self, relation_name, rows, multiplicities) -> None:
        self._joiner.register_batch(relation_name, rows, multiplicities)

    # -- results ----------------------------------------------------------------------------------

    def statistics(self) -> CovariancePayload:
        return CovariancePayload(self._count, self._sums.copy(), self._moments.copy())

    def materialized_view_size(self) -> int:
        """Number of distinct feature tuples held by the materialised view."""
        return len(self._materialized_join)
