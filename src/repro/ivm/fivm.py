"""F-IVM: factorised incremental view maintenance with ring payloads.

The maintainer keeps one view per join-tree node, mapping the node's join key
(the attributes shared with its parent) to a payload in the covariance ring.
A base-relation update touches only the views on the leaf-to-root path of the
updated relation: the delta payload is computed from the relation's lifted
tuple and the children's current payloads, then propagated upwards.  Because
the payload carries the entire covariance-matrix batch, one propagation
maintains every aggregate at once — the cross-aggregate sharing responsible
for the throughput gap in Figure 4 (right).

The views are columnar :class:`~repro.ivm.payload_store.PayloadStore`\\ s
(key dictionary + stacked count/sums/quadratic arrays), so the maintainer has
two equivalent code paths over one state:

- **per-tuple** (``apply``): the seed's leaf-to-root walk, probing and
  updating single slots;
- **batched** (``apply_batch``): a whole per-relation update group is lifted
  into one :class:`~repro.rings.covariance.CovarianceBlock`, joined against
  the child views by key codes, and propagated to the root through the
  per-parent :class:`~repro.data.colstore.DeltaColumnStore` mirrors —
  append-only columnar encodings whose per-key row buckets play the role of
  the executor's CSR tables, kept current incrementally so a hop never pays
  an O(rows) re-encode.  The same factorised delta rule, with every ring
  operation vectorised over the group.

The batched path is *fused* across relations: instead of one leaf-to-root
propagation per touched relation, ``apply_batch`` runs a single
**multi-delta pass** over the join tree (``_apply_multi_delta``).  The pass
walks the tree one level at a time, deepest first; at every node it merges
the deltas arriving from the node's children with the node's own update
group (:func:`repro.engine.deltas.merge_keyed_deltas`), adds the merged
delta to the node's view, and performs *one* hop towards the parent.  The
fixed per-hop costs — key-code translation, bucket CSR assembly, sibling
slot-map lookups, payload gathers — are thereby paid once per *node*, not
once per (relation, ancestor) pair, which is what dominated small batches.

Correctness of the fusion follows from telescoping the product delta: with
children processed in tree order, a child's hop multiplies the views of
earlier siblings *after* their deltas landed and of later siblings *before*
theirs, and a node's own group is lifted against fully-updated child views —
exactly the expansion of ``new product − old product``, so one traversal
lands on the per-relation result.  Because two same-level node groups under
different parents touch disjoint state, the pass can dispatch them onto the
shared :class:`~repro.engine.executor.SubtreeScheduler` thread pool
(``parallel_deltas=True``); the numpy-heavy hop kernels release the GIL, and
the fixed group order keeps the result bit-identical to the sequential pass.
"""

from __future__ import annotations

import time

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.colstore import DeltaColumnStore
from repro.data.database import Database
from repro.engine.deltas import merge_keyed_deltas, subtree_schedule
from repro.engine.executor import SubtreeScheduler
from repro.ivm.base import CovarianceMaintainer, Update
from repro.ivm.payload_store import PayloadStore
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.join_tree import JoinTreeNode
from repro.rings.covariance import CovarianceBlock, CovariancePayload, PayloadScratch


class _SlotMap:
    """Mirror key code -> payload-store slot, maintained incrementally.

    Store slots never move once assigned (keys are never evicted), so a
    resolved entry stays valid forever; only the ``-1`` misses are re-probed,
    and only when the target view has gained keys since the last lookup.
    """

    __slots__ = ("view", "mapping", "size", "view_len")

    def __init__(self, view: "PayloadStore") -> None:
        self.view = view
        self.mapping = np.full(16, -1, dtype=np.int64)
        self.size = 0
        self.view_len = -1

    def lookup(self, key_list: List[Tuple]) -> np.ndarray:
        view = self.view
        needed = len(key_list)
        if needed > self.size:
            if needed > self.mapping.shape[0]:
                capacity = self.mapping.shape[0]
                while capacity < needed:
                    capacity *= 2
                grown = np.full(capacity, -1, dtype=np.int64)
                grown[: self.size] = self.mapping[: self.size]
                self.mapping = grown
            self.mapping[self.size : needed] = view.slots_for(key_list[self.size :])
            self.size = needed
        if len(view) != self.view_len:
            missing = np.nonzero(self.mapping[: self.size] == -1)[0]
            if missing.size:
                self.mapping[missing] = view.slots_for(
                    [key_list[position] for position in missing.tolist()]
                )
            self.view_len = len(view)
        return self.mapping[: self.size]


def _compact_codes(codes: np.ndarray, space: int) -> Tuple[np.ndarray, np.ndarray]:
    """Renumber ``codes`` densely over the values actually present.

    Returns ``(compact, present)``: ``present`` lists the distinct original
    codes in increasing order and ``compact`` maps every input to its index
    in ``present`` — a bincount-based replacement for ``np.unique`` that
    avoids a sort when the code space is known and small.
    """
    counts = np.bincount(codes, minlength=space)
    present = np.nonzero(counts)[0]
    mapping = np.full(space, -1, dtype=np.int64)
    mapping[present] = np.arange(present.size, dtype=np.int64)
    return mapping[codes], present


class FIVM(CovarianceMaintainer):
    """Factorised IVM over a view tree with covariance-ring payloads."""

    supports_batch_deltas = True
    supports_fused_deltas = True

    def __init__(
        self,
        schema_database: Database,
        query: ConjunctiveQuery,
        features: Sequence[str],
        root_relation: Optional[str] = None,
        root_strategy: str = "largest",
        fused_deltas: bool = True,
        parallel_deltas: bool = False,
    ) -> None:
        """``root_strategy`` defaults to ``"largest"`` (root at the relation
        with the most representative rows): propagation cost is path length
        weighted by update mass, and streams drawn from the data hit the
        fact table most — rooting there makes the bulk of all deltas
        root-local.  ``fused_deltas`` selects the one-pass multi-delta
        propagation for batches (off: one propagation per touched relation,
        the PR-3 path, kept for ablation and equivalence testing);
        ``parallel_deltas`` additionally dispatches independent same-level
        subtree groups of the fused pass onto the shared worker pool —
        results are bit-identical either way.
        """
        super().__init__(schema_database, query, features, root_relation, root_strategy)
        self.supports_fused_deltas = bool(fused_deltas)
        self.parallel_deltas = bool(parallel_deltas)
        # One payload view per node: join key -> covariance payload of the subtree.
        # Each view's payloads can only involve the features designated inside
        # its subtree; recording that support lets single-feature views (e.g.
        # a price-only dimension) multiply through thin column updates.
        self._views: Dict[str, PayloadStore] = {}
        for node in self.join_tree.nodes():
            view = PayloadStore(len(self.features))
            view.support = tuple(
                sorted(
                    self._feature_positions[feature]
                    for child in node.subtree_nodes()
                    for feature in self.features_of(child.relation_name)
                )
            )
            self._views[node.relation_name] = view
        # Per node: its sorted connection attributes and their positions.
        self._conn_attrs: Dict[str, Tuple[str, ...]] = {}
        self._conn_positions: Dict[str, List[int]] = {}
        for node in self.join_tree.nodes():
            relation = self.database.relation(node.relation_name)
            conn = tuple(sorted(node.connection_attributes()))
            self._conn_attrs[node.relation_name] = conn
            self._conn_positions[node.relation_name] = [
                relation.schema.index_of(attribute) for attribute in conn
            ]
        # Positions of each child's connection attributes inside the parent's schema.
        self._child_key_positions: Dict[Tuple[str, str], List[int]] = {}
        for node in self.join_tree.nodes():
            relation = self.database.relation(node.relation_name)
            for child in node.children:
                conn = sorted(child.connection_attributes())
                self._child_key_positions[(node.relation_name, child.relation_name)] = [
                    relation.schema.index_of(attribute) for attribute in conn
                ]
        # The batched path's columnar mirrors: one append-only delta store per
        # *parent* relation (the propagation only ever joins against parents;
        # leaves have no readers), with the designated features and every key
        # the propagation joins on (the node's own connection key plus each
        # child's) registered up front.  Both update paths append to them, so
        # a batch never pays an O(rows) re-encode of a mutated relation.
        self._mirrors: Dict[str, DeltaColumnStore] = {}
        for node in self.join_tree.nodes():
            if not node.children:
                continue
            relation = self.database.relation(node.relation_name)
            mirror = DeltaColumnStore(relation.name, relation.schema)
            for feature in self.features_of(node.relation_name):
                mirror.register_float(feature)
            # The node's own connection key only ever groups contributions;
            # each child's key is joined against, so it tracks row buckets.
            # The root's empty connection key groups everything into one
            # entry, which the hop handles directly — no encoding needed.
            if self._conn_attrs[node.relation_name]:
                mirror.register_key(
                    self._conn_attrs[node.relation_name], track_buckets=False
                )
            for child in node.children:
                mirror.register_key(self._conn_attrs[child.relation_name])
            self._mirrors[node.relation_name] = mirror
        # (parent, sibling) -> cached mirror-key-code -> sibling-view-slot map.
        self._slot_maps: Dict[Tuple[str, str], _SlotMap] = {}
        # The per-tuple path's fused ring workspace (see PayloadScratch).
        self._scratch = PayloadScratch(len(self.features))
        # The fused pass's traversal plan: tree levels deepest-first, each a
        # list of per-parent node groups (the unit of parallel dispatch).
        self._schedule = subtree_schedule(self.join_tree)
        # Per relation: the node names on its leaf-to-root path, and the
        # memoised per-touched-set mini-schedules derived from them (a batch
        # only ever activates the union of its touched relations' paths, so
        # the pass iterates a pruned plan instead of the whole tree).
        self._paths: Dict[str, List[str]] = {}
        for node in self.join_tree.nodes():
            path: List[str] = []
            current: Optional[JoinTreeNode] = node
            while current is not None:
                path.append(current.relation_name)
                current = current.parent
            self._paths[node.relation_name] = path
        self._plan_cache: Dict[
            frozenset, Tuple[List[List[List[JoinTreeNode]]], Tuple[str, ...]]
        ] = {}

    # -- helpers ------------------------------------------------------------------------------

    def _conn_key(self, relation_name: str, row: Tuple) -> Tuple:
        return tuple(row[position] for position in self._conn_positions[relation_name])

    def _child_key(self, parent_name: str, child_name: str, row: Tuple) -> Tuple:
        positions = self._child_key_positions[(parent_name, child_name)]
        return tuple(row[position] for position in positions)

    # -- per-tuple maintenance ------------------------------------------------------------------

    def _apply_update(self, update: Update) -> None:
        """One signed tuple update, array-native end to end.

        The update's own delta payload — ``scale(lift(row), m)`` times the
        children's view payloads at the row's child keys — is computed in the
        maintainer's :class:`~repro.rings.covariance.PayloadScratch` (no
        intermediate payload objects), added into the node's view, and then
        pushed to the root through the *same* vectorised :meth:`_hop` the
        batched path uses: a one-row block joined against the parent's
        columnar mirror.  The seed's per-row walk over parent-relation hash
        indexes is gone; the mirrors are the only propagation state.
        """
        name = update.relation_name
        node = self.join_tree.node(name)
        row = update.row
        scratch = self._scratch
        scratch.reset_lift(
            float(update.multiplicity),
            [(target, float(row[source])) for source, target in self._lift_plans[name]],
        )
        alive = True
        for child in node.children:
            positions = self._child_key_positions[(name, child.relation_name)]
            if len(positions) == 1:
                key = (row[positions[0]],)
            else:
                key = tuple(row[position] for position in positions)
            view = self._views[child.relation_name]
            slot = view.slot_of(key)
            if slot < 0:
                alive = False
                break
            view.multiply_scratch(scratch, slot)
        if alive:
            conn_key = self._conn_key(name, row)
            self._views[name].add_scratch(conn_key, scratch)
            if node.parent is not None:
                keys: List[Tuple] = [conn_key]
                # The hop only reads its input block (derived blocks are
                # freshly gathered), so the scratch's preallocated aliasing
                # view replaces the three per-update array copies block()
                # paid here before PR 8.
                block = scratch.block_view()
                while True:
                    hop = self._hop(node, keys, block)
                    if hop is None:
                        break
                    keys, block = hop
                    node = node.parent
                    self._views[node.relation_name].scatter_add(keys, block)
                    if node.parent is None:
                        break

        # Keep the columnar mirror in sync with the base-relation change.
        mirror = self._mirrors.get(name)
        if mirror is not None:
            mirror.append_rows((row,), (update.multiplicity,))

    # -- batched maintenance --------------------------------------------------------------------

    def _group_delta(
        self, node: JoinTreeNode, rows: List[Tuple], multiplicities: np.ndarray
    ) -> Optional[Tuple[List[Tuple], CovarianceBlock]]:
        """One update group's delta at its own node: ``(keys, block)`` or None.

        The group is lifted into one block, joined against the (current)
        child views, and grouped by the node's connection key — the starting
        delta both the per-relation and the fused propagation push upwards.
        The rows are transposed once (``zip(*rows)``) so feature columns and
        key probes read whole C-level columns instead of indexing every row
        tuple per attribute.
        """
        relation_name = node.relation_name
        columns = list(zip(*rows))

        # Lift the whole group in one block (scaled by its multiplicities).
        plan = self._lift_plans[relation_name]
        features = np.zeros((len(rows), len(self.features)))
        for source, target in plan:
            features[:, target] = np.asarray(columns[source], dtype=np.float64)
        block = CovarianceBlock.lift(
            features, multiplicities, [target for _source, target in plan]
        )

        # Join the lifted delta against the children's views (one slot probe
        # per row); rows whose key misses any child view produce no delta.
        alive = np.arange(len(rows), dtype=np.int64)
        gathers: List[Tuple[PayloadStore, np.ndarray]] = []
        for child in node.children:
            positions = self._child_key_positions[(relation_name, child.relation_name)]
            view = self._views[child.relation_name]
            if len(positions) == 1:
                row_keys = [(value,) for value in columns[positions[0]]]
            else:
                row_keys = list(zip(*(columns[position] for position in positions)))
            slots = view.slots_for(row_keys)
            live = slots >= 0
            if not live.all():
                alive = alive[live[alive]]
            gathers.append((view, slots))
        if alive.size == 0:
            return None
        if alive.size < len(rows):
            block = block.take(alive)
        conn_positions = self._conn_positions[relation_name]
        if not conn_positions:
            # The root's empty connection key: one target group.  The last
            # child multiply fuses with the sum-to-one reduction, so the
            # chain never materialises a full product stack for the root.
            for view, slots in gathers[:-1]:
                block = view.multiply_into(block, slots[alive])
            if gathers:
                view, slots = gathers[-1]
                return [()], view.multiply_into_total(block, slots[alive])
            return [()], block.total_block()
        for view, slots in gathers:
            block = view.multiply_into(block, slots[alive])

        # Group the surviving delta rows by the node's connection key.
        scalar = len(conn_positions) == 1
        if scalar:
            probes = columns[conn_positions[0]]
        else:
            probes = list(zip(*(columns[position] for position in conn_positions)))
        if alive.size < len(rows):
            probes = [probes[position] for position in alive.tolist()]
        key_index: Dict[object, int] = {}
        delta_keys: List[Tuple] = []
        codes = np.empty(alive.size, dtype=np.int64)
        for output, probe in enumerate(probes):
            code = key_index.get(probe)
            if code is None:
                code = len(delta_keys)
                key_index[probe] = code
                delta_keys.append((probe,) if scalar else probe)
            codes[output] = code
        return delta_keys, block.segment_sum(codes, len(delta_keys))

    def _apply_delta_group(
        self, relation_name: str, rows: List[Tuple], multiplicities: np.ndarray
    ) -> None:
        """Per-relation propagation: one group's delta pushed to the root."""
        node = self.join_tree.node(relation_name)
        delta = self._group_delta(node, rows, multiplicities)
        if delta is None:
            return
        keys, block = delta
        while True:
            self._views[node.relation_name].scatter_add(keys, block)
            if node.parent is None:
                return
            hop = self._hop(node, keys, block)
            if hop is None:
                return
            keys, block = hop
            node = node.parent

    def _batch_schedule(
        self, touched
    ) -> Tuple[List[List[List[JoinTreeNode]]], Tuple[str, ...]]:
        """The pruned traversal plan for one batch's touched relations.

        Only nodes on a touched relation's leaf-to-root path can carry a
        delta, so the full level schedule is filtered down to them —
        preserving level order and within-group tree order, which keeps the
        pruned pass bit-identical to the full one.  Plans are memoised per
        touched-relation set (streams repeat batch shapes).
        """
        key = frozenset(touched)
        cached = self._plan_cache.get(key)
        if cached is None:
            active: set = set()
            for name in key:
                active.update(self._paths[name])
            plan: List[List[List[JoinTreeNode]]] = []
            for level in self._schedule:
                filtered = [
                    [node for node in group if node.relation_name in active]
                    for group in level
                ]
                filtered = [group for group in filtered if group]
                if filtered:
                    plan.append(filtered)
            if len(self._plan_cache) >= 64:
                self._plan_cache.clear()
            cached = (plan, tuple(sorted(active)))
            self._plan_cache[key] = cached
        return cached

    def _apply_multi_delta(
        self, groups: List[Tuple[str, List[Tuple], np.ndarray]]
    ) -> None:
        """The fused pass: every touched relation's delta in one traversal.

        The schedule walks the tree deepest level first, in two phases per
        level.  Phase A computes the *own-group deltas* of the level's nodes
        — each reads only the node's (already final) child views, so the
        computations are mutually independent and, with ``parallel_deltas``,
        run concurrently on the shared subtree pool.  Phase B then merges
        each node's child contributions with its own delta (children first,
        in tree order, then the own group — a fixed order, so the
        floating-point result is reproducible), adds the merged delta to the
        node's view, and hops it to the parent once; the per-parent groups
        of a level touch disjoint state and also dispatch concurrently,
        while *within* a group the tree order is preserved (a node's delta
        must land in its view before a later sibling's hop reads it).  Every
        pending list is written by exactly one group and every own delta is
        order-independent, so the parallel schedule is bit-identical to the
        sequential one.
        """
        # The fused pass mutates payload stores and mirrors with no internal
        # locking — it must only ever run under the single-writer gate that
        # apply()/apply_batch() hold (see CovarianceMaintainer).
        assert self._writer_gate._is_owned(), (
            "fused multi-delta pass entered without the writer gate"
        )
        started = time.perf_counter_ns()
        grouped: Dict[str, Tuple[List[Tuple], np.ndarray]] = {
            name: (rows, multiplicities) for name, rows, multiplicities in groups
        }
        schedule, active = self._batch_schedule(grouped)
        pending: Dict[str, List[Tuple[List[Tuple], CovarianceBlock]]] = {
            name: [] for name in active
        }
        own_deltas: Dict[str, Optional[Tuple[List[Tuple], CovarianceBlock]]] = {}

        def compute_own(node: JoinTreeNode) -> None:
            rows, multiplicities = grouped[node.relation_name]
            own_deltas[node.relation_name] = self._group_delta(
                node, rows, multiplicities
            )

        def process_group(nodes: List[JoinTreeNode]) -> None:
            for node in nodes:
                name = node.relation_name
                contributions = pending[name]
                own = own_deltas.get(name)
                if own is not None:
                    contributions.append(own)
                if not contributions:
                    continue
                keys, block = merge_keyed_deltas(
                    contributions, CovarianceBlock.concatenate
                )
                self._views[name].scatter_add(keys, block)
                if node.parent is None:
                    continue
                hop = self._hop(node, keys, block)
                if hop is not None:
                    pending[node.parent.relation_name].append(hop)

        parallel = self.parallel_deltas
        for level in schedule:
            own_nodes = [
                node
                for group in level
                for node in group
                if node.relation_name in grouped
            ]
            if parallel and len(own_nodes) > 1:
                SubtreeScheduler.run_groups(
                    [lambda node=node: compute_own(node) for node in own_nodes]
                )
            else:
                for node in own_nodes:
                    compute_own(node)
            runnable = [
                group
                for group in level
                if any(
                    pending[node.relation_name]
                    or own_deltas.get(node.relation_name) is not None
                    for node in group
                )
            ]
            if not runnable:
                continue
            if parallel and len(runnable) > 1:
                SubtreeScheduler.run_groups(
                    [lambda group=group: process_group(group) for group in runnable]
                )
            else:
                for group in runnable:
                    process_group(group)
        stats = self.executor_stats
        stats["delta_passes"] = stats.get("delta_passes", 0) + 1
        stats["delta_pass_ns"] = (
            stats.get("delta_pass_ns", 0) + time.perf_counter_ns() - started
        )

    def _multiply_mirror_lift(
        self,
        block: CovarianceBlock,
        relation_name: str,
        mirror: DeltaColumnStore,
        positions: np.ndarray,
    ) -> CovarianceBlock:
        """``block[i] * scale(lift(entry i), multiplicity of entry i)``.

        Relations with no designated features lift to scaled ones, so the
        whole multiply collapses to a scale.  The fused sparse-lift product
        wins whenever the designated set is small (its work is
        ``d_local^2`` thin column updates instead of dense outer products)
        or the matched set is large; only small blocks of a feature-heavy
        relation fall back to materialising the lifted block, where the
        general multiply's few whole-array operations beat the fused path's
        many small ones.
        """
        multiplicities = mirror.multiplicities[positions]
        local_features = self.features_of(relation_name)
        if not local_features:
            return block.scale(multiplicities)
        feature_positions = [
            self._feature_positions[feature] for feature in local_features
        ]
        features = np.zeros((positions.size, len(self.features)))
        for feature, target in zip(local_features, feature_positions):
            features[:, target] = mirror.float_column(feature)[positions]
        if len(feature_positions) <= 2 or positions.size >= 64:
            return block.multiply_lifted(features, multiplicities, feature_positions)
        return block.multiply(
            CovarianceBlock.lift(features, multiplicities, feature_positions)
        )

    def _hop(
        self, node: JoinTreeNode, keys: List[Tuple], block: CovarianceBlock
    ) -> Optional[Tuple[List[Tuple], CovarianceBlock]]:
        """One propagation hop: ``node``'s delta expressed at its parent.

        The hop joins the delta keys against the parent relation's columnar
        mirror: the mirror's per-key buckets (maintained incrementally, so no
        re-encode after mutations) expand the delta to the matched parent
        entries via one ``np.repeat``, the matched entries are lifted in one
        block, the sibling views are gathered by key code, and the result is
        segment-summed by the parent's own connection key — the per-tuple
        delta rule with every step over whole arrays.  Returns the parent's
        ``(keys, block)`` delta, or None when nothing joins.
        """
        parent = node.parent
        mirror = self._mirrors[parent.relation_name]
        offsets, positions = mirror.buckets_for(
            self._conn_attrs[node.relation_name], keys
        )
        if positions.size == 0:
            return None
        item_index = np.repeat(
            np.arange(len(keys), dtype=np.int64), offsets[1:] - offsets[:-1]
        )
        contribution = self._multiply_mirror_lift(
            block.take(item_index), parent.relation_name, mirror, positions
        )

        # Multiply in the other children's payloads at the matched entries.
        alive = np.arange(positions.size, dtype=np.int64)
        gathers: List[Tuple[PayloadStore, np.ndarray]] = []
        for sibling in parent.children:
            if sibling is node:
                continue
            codes, key_list = mirror.key_codes(
                self._conn_attrs[sibling.relation_name]
            )
            view = self._views[sibling.relation_name]
            map_key = (parent.relation_name, sibling.relation_name)
            slot_map = self._slot_maps.get(map_key)
            if slot_map is None:
                slot_map = _SlotMap(view)
                self._slot_maps[map_key] = slot_map
            slots = slot_map.lookup(key_list)[codes[positions]]
            live = slots >= 0
            if not live.all():
                alive = alive[live[alive]]
            gathers.append((view, slots))
        if alive.size == 0:
            return None
        if alive.size < positions.size:
            contribution = contribution.take(alive)
            positions = positions[alive]

        # When the whole delta collapses onto a single parent key (the
        # root's empty connection key — most hops under update-mass rooting
        # — or a one-key mirror), the final sibling multiply fuses with the
        # sum-to-one reduction: every ring term becomes a dot product, no
        # per-entry product stack is materialised.
        parent_conn = self._conn_attrs[parent.relation_name]
        single_key: Optional[Tuple] = None
        conn_codes = conn_keys = None
        if not parent_conn:
            single_key = ()
        else:
            conn_codes, conn_keys = mirror.key_codes(parent_conn)
            if len(conn_keys) == 1:
                single_key = conn_keys[0]
        if single_key is not None:
            for view, slots in gathers[:-1]:
                contribution = view.multiply_into(contribution, slots[alive])
            if gathers:
                view, slots = gathers[-1]
                return [single_key], view.multiply_into_total(
                    contribution, slots[alive]
                )
            return [single_key], contribution.total_block()

        for view, slots in gathers:
            contribution = view.multiply_into(contribution, slots[alive])
        compact, present = _compact_codes(conn_codes[positions], len(conn_keys))
        return (
            [conn_keys[code] for code in present.tolist()],
            contribution.segment_sum(compact, present.size),
        )

    def _after_delta_group(self, relation_name, rows, multiplicities) -> None:
        mirror = self._mirrors.get(relation_name)
        if mirror is not None:
            mirror.append_rows(rows, multiplicities)

    # -- results -----------------------------------------------------------------------------------

    def statistics(self) -> CovariancePayload:
        payload = self._views[self.join_tree.root.relation_name].get(())
        return payload if payload is not None else self.ring.zero()

    def view_sizes(self) -> Dict[str, int]:
        """Number of keys per maintained payload view (they stay small)."""
        return {name: len(view) for name, view in self._views.items()}
